//! Umbrella crate for the SmartStore (SC '09) reproduction.
//!
//! Re-exports every subsystem crate under one roof so the examples in
//! `examples/` and the integration tests in `tests/` can use a single
//! dependency. Library users should normally depend on the individual
//! crates (`smartstore`, `smartstore-rtree`, …) directly.

pub use smartstore;
pub use smartstore_bloom as bloom;
pub use smartstore_bptree as bptree;
pub use smartstore_linalg as linalg;
pub use smartstore_net as net;
pub use smartstore_persist as persist;
pub use smartstore_rtree as rtree;
pub use smartstore_service as service;
pub use smartstore_simnet as simnet;
pub use smartstore_trace as trace;

pub use smartstore_persist::SystemPersist;
