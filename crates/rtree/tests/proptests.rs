//! Property-based tests: the R-tree must agree with brute-force linear
//! scans on every query, under arbitrary interleavings of inserts and
//! deletes.

use proptest::prelude::*;
use smartstore_rtree::{RTree, RTreeConfig, Rect};

fn pt(p: &[f64]) -> Rect {
    Rect::point(p)
}

/// Coordinates drawn from a small grid so duplicates and boundary hits
/// are common (the adversarial cases for tree pruning).
fn coord() -> impl Strategy<Value = f64> {
    (0i32..20).prop_map(|v| v as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_matches_linear_scan(
        points in prop::collection::vec((coord(), coord()), 1..200),
        qx0 in coord(), qx1 in coord(), qy0 in coord(), qy1 in coord(),
    ) {
        let mut tree = RTree::new(2, RTreeConfig::new(8, 3));
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(pt(&[x, y]), i);
        }
        tree.check_invariants().unwrap();
        let (lo_x, hi_x) = (qx0.min(qx1), qx0.max(qx1));
        let (lo_y, hi_y) = (qy0.min(qy1), qy0.max(qy1));
        let q = Rect::new(vec![lo_x, lo_y], vec![hi_x, hi_y]);
        let mut got: Vec<usize> = tree.range(&q).into_iter().copied().collect();
        got.sort();
        let mut want: Vec<usize> = points.iter().enumerate()
            .filter(|(_, &(x, y))| lo_x <= x && x <= hi_x && lo_y <= y && y <= hi_y)
            .map(|(i, _)| i)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force(
        points in prop::collection::vec((coord(), coord()), 1..150),
        qx in coord(), qy in coord(),
        k in 1usize..10,
    ) {
        let mut tree = RTree::new(2, RTreeConfig::new(8, 3));
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(pt(&[x, y]), i);
        }
        let got = tree.knn(&[qx, qy], k);
        // Brute force distances.
        let mut dists: Vec<f64> = points.iter()
            .map(|&(x, y)| (x - qx).powi(2) + (y - qy).powi(2))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect_k = k.min(points.len());
        prop_assert_eq!(got.len(), expect_k);
        // Distance multiset must match (ids may differ under ties).
        for (i, &(_, d)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9,
                "knn dist {} at rank {} != brute force {}", d, i, dists[i]);
        }
    }

    #[test]
    fn insert_delete_interleaving_preserves_invariants(
        ops in prop::collection::vec((any::<bool>(), coord(), coord()), 1..300),
    ) {
        let mut tree = RTree::new(2, RTreeConfig::new(6, 2));
        let mut live: Vec<(f64, f64, usize)> = Vec::new();
        let mut next_id = 0usize;
        for (is_insert, x, y) in ops {
            if is_insert || live.is_empty() {
                tree.insert(pt(&[x, y]), next_id);
                live.push((x, y, next_id));
                next_id += 1;
            } else {
                let (dx, dy, id) = live.swap_remove(live.len() / 2);
                let removed = tree.delete(&pt(&[dx, dy]), &id);
                prop_assert_eq!(removed, Some(id));
            }
            tree.check_invariants().unwrap();
            prop_assert_eq!(tree.len(), live.len());
        }
        // Every surviving item is findable.
        for &(x, y, id) in &live {
            let hits = tree.range(&pt(&[x, y]));
            prop_assert!(hits.contains(&&id));
        }
    }

    #[test]
    fn bulk_load_equals_insertion_results(
        points in prop::collection::vec((coord(), coord()), 0..200),
        qx0 in coord(), qx1 in coord(), qy0 in coord(), qy1 in coord(),
    ) {
        let items: Vec<(Rect, usize)> = points.iter().enumerate()
            .map(|(i, &(x, y))| (pt(&[x, y]), i)).collect();
        let bulk = smartstore_rtree::bulk::str_bulk_load(2, RTreeConfig::new(8, 3), items);
        let mut incr = RTree::new(2, RTreeConfig::new(8, 3));
        for (i, &(x, y)) in points.iter().enumerate() {
            incr.insert(pt(&[x, y]), i);
        }
        let q = Rect::new(
            vec![qx0.min(qx1), qy0.min(qy1)],
            vec![qx0.max(qx1), qy0.max(qy1)],
        );
        let mut a: Vec<usize> = bulk.range(&q).into_iter().copied().collect();
        let mut b: Vec<usize> = incr.range(&q).into_iter().copied().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn root_mbr_contains_every_point(
        points in prop::collection::vec((coord(), coord()), 1..100),
    ) {
        let mut tree = RTree::new(2, RTreeConfig::default());
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(pt(&[x, y]), i);
        }
        let mbr = tree.root_mbr().unwrap();
        for &(x, y) in &points {
            prop_assert!(mbr.contains_point(&[x, y]));
        }
    }
}

// ---------------------------------------------------------------------------
// `total_cmp` migration parity.
//
// The tree's comparators moved from `partial_cmp(..).unwrap()` (panics
// on NaN, treats -0.0 == +0.0) to `f64::total_cmp` (total order, never
// panics). Squared distances are sums of squares — always finite and
// non-negative for finite inputs — and on that domain the two
// comparators are *identical*, so every pre-migration answer is
// preserved bit for bit. These properties pin that equivalence down.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On finite, non-negative keys the new comparator sorts exactly
    /// like the old one: same permutation, bitwise-equal sequences.
    #[test]
    fn total_cmp_sorts_finite_distances_like_partial_cmp(
        dists in prop::collection::vec((0u32..1_000_000).prop_map(|v| v as f64 / 64.0), 0..200),
    ) {
        let mut new_order = dists.clone();
        new_order.sort_by(|a, b| a.total_cmp(b));
        let mut old_order = dists;
        #[allow(clippy::disallowed_methods)]
        old_order.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let new_bits: Vec<u64> = new_order.iter().map(|d| d.to_bits()).collect();
        let old_bits: Vec<u64> = old_order.iter().map(|d| d.to_bits()).collect();
        prop_assert_eq!(new_bits, old_bits);
    }

    /// End-to-end: the tree's kNN distances are bitwise identical to a
    /// brute-force reference ranked with the *old* comparator.
    #[test]
    fn knn_bit_identical_to_partial_cmp_reference(
        points in prop::collection::vec((coord(), coord()), 1..150),
        qx in coord(), qy in coord(),
        k in 1usize..10,
    ) {
        let mut tree = RTree::new(2, RTreeConfig::new(8, 3));
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(pt(&[x, y]), i);
        }
        let got = tree.knn(&[qx, qy], k);
        let mut reference: Vec<f64> = points.iter()
            .map(|&(x, y)| (x - qx).powi(2) + (y - qy).powi(2))
            .collect();
        #[allow(clippy::disallowed_methods)]
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &(_, d)) in got.iter().enumerate() {
            prop_assert_eq!(d.to_bits(), reference[i].to_bits(),
                "rank {} distance differs from pre-migration reference", i);
        }
    }
}
