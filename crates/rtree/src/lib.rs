//! Classic Guttman R-tree (SIGMOD '84), the spatial substrate of
//! SmartStore.
//!
//! SmartStore uses R-tree machinery in two places:
//!
//! * the **semantic R-tree** (the paper's contribution) reuses the
//!   Minimum Bounding Rectangle algebra and the split/merge algorithms
//!   ("The operations of splitting and merging nodes in semantic R-tree
//!   follow the classical algorithms in R-tree", §4.1);
//! * the **non-semantic R-tree baseline** of §5.1 indexes every file by
//!   its raw multi-dimensional attributes in a single centralized R-tree.
//!
//! The implementation is arena-based (nodes live in a `Vec`, children are
//! indices) with runtime dimensionality, quadratic split, `CondenseTree`
//! deletion, iterative range search, best-first k-nearest-neighbour
//! search, and Sort-Tile-Recursive bulk loading.

pub mod bulk;
pub mod rect;
pub mod tree;

pub use rect::Rect;
pub use tree::{RTree, RTreeConfig, RTreeStats};
