//! Minimum Bounding Rectangles (MBRs) with runtime dimensionality.
//!
//! The paper: "An MBR represents the minimal approximation of the
//! enclosed data set by using multi-dimensional intervals of the
//! attribute space, showing the lower and the upper bounds of each
//! dimension" (§2.2). Every semantic R-tree node carries one.

/// An axis-aligned box in D-dimensional attribute space.
///
/// Degenerate boxes (a point) are valid; `lo[i] == hi[i]` is allowed,
/// `lo[i] > hi[i]` is not.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from per-dimension bounds.
    ///
    /// # Panics
    /// If lengths differ, bounds are inverted, or any bound is NaN.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "Rect::new: dimension mismatch");
        for (i, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(
                !l.is_nan() && !h.is_nan(),
                "Rect::new: NaN bound in dim {i}"
            );
            assert!(l <= h, "Rect::new: inverted bounds in dim {i}: {l} > {h}");
        }
        Self { lo, hi }
    }

    /// A degenerate rectangle containing exactly `point`.
    pub fn point(point: &[f64]) -> Self {
        Self::new(point.to_vec(), point.to_vec())
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Hyper-volume (product of side lengths). Zero for degenerate boxes.
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).product()
    }

    /// Sum of side lengths (the "margin", used by some split heuristics).
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).sum()
    }

    /// Geometric center.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// True if the two rectangles overlap (closed intervals — touching
    /// boundaries count as intersecting).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&l, &h), (&ol, &oh))| l <= oh && ol <= h)
    }

    /// True if `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&l, &h), (&ol, &oh))| l <= ol && oh <= h)
    }

    /// True if the point lies within the rectangle (boundaries included).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), p.len());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((&l, &h), &x)| l <= x && x <= h)
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.min(b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.max(b))
            .collect();
        Rect { lo, hi }
    }

    /// Grows `self` in place to cover `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Area increase needed to absorb `other` (Guttman's ChooseLeaf
    /// criterion).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared minimum distance from `point` to this rectangle (0 if the
    /// point is inside). This is the `MINDIST` lower bound of
    /// Roussopoulos et al., used by best-first k-NN search.
    pub fn min_sq_dist(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), point.len());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(point)
            .map(|((&l, &h), &x)| {
                let d = if x < l {
                    l - x
                } else if x > h {
                    x - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// MBR of a non-empty set of rectangles.
    ///
    /// # Panics
    /// If `rects` is empty.
    pub fn union_all<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Rect {
        let mut it = rects.into_iter();
        let mut acc = it.next().expect("union_all: empty input").clone();
        for r in it {
            acc.union_in_place(r);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_and_margin() {
        let r = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(r.center(), vec![1.0, 1.5]);
    }

    #[test]
    fn point_rect_has_zero_area() {
        let r = Rect::point(&[1.0, 2.0, 3.0]);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn intersection_cases() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 3.0]);
        let c = r2([2.0, 2.0], [4.0, 4.0]); // touches a at a corner
        let d = r2([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
        assert!(b.intersects(&a));
    }

    #[test]
    fn containment() {
        let outer = r2([0.0, 0.0], [10.0, 10.0]);
        let inner = r2([1.0, 1.0], [2.0, 2.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&[10.0, 10.0]));
        assert!(!outer.contains_point(&[10.0, 10.1]));
    }

    #[test]
    fn union_covers_both() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r2([0.0, -1.0], [3.0, 1.0]));
    }

    #[test]
    fn enlargement_zero_for_contained() {
        let a = r2([0.0, 0.0], [4.0, 4.0]);
        let b = r2([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn min_sq_dist_inside_is_zero() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.min_sq_dist(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_sq_dist(&[2.0, 2.0]), 0.0);
    }

    #[test]
    fn min_sq_dist_outside_matches_geometry() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        // Point (5, 6): dx = 3, dy = 4 ⇒ squared distance 25.
        assert_eq!(a.min_sq_dist(&[5.0, 6.0]), 25.0);
        // Point aligned with one axis.
        assert_eq!(a.min_sq_dist(&[1.0, 5.0]), 9.0);
    }

    #[test]
    fn union_all_of_three() {
        let rects = vec![
            r2([0.0, 0.0], [1.0, 1.0]),
            r2([-1.0, 2.0], [0.0, 3.0]),
            r2([4.0, 0.5], [5.0, 0.6]),
        ];
        let u = Rect::union_all(&rects);
        assert_eq!(u, r2([-1.0, 0.0], [5.0, 3.0]));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    #[should_panic]
    fn union_all_empty_panics() {
        Rect::union_all(&[]);
    }
}
