//! Dynamic R-tree: insert, quadratic split, delete with CondenseTree,
//! range search, and best-first k-nearest-neighbour search.

use crate::rect::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Fan-out configuration.
///
/// The paper (§4.1): "A node will be split when the number of child nodes
/// of a parent node is larger than a predetermined threshold M. … a node
/// is merged with its adjacent neighbor when the number of child nodes …
/// is smaller than another predetermined threshold m", with `m ≤ M/2`.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries per node (M).
    pub max_entries: usize,
    /// Minimum entries per node (m ≤ M/2).
    pub min_entries: usize,
}

impl RTreeConfig {
    /// Creates a configuration, validating `2 ≤ m ≤ M/2`.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "RTreeConfig: M must be at least 4");
        assert!(
            (2..=max_entries / 2).contains(&min_entries),
            "RTreeConfig: require 2 <= m <= M/2 (m={min_entries}, M={max_entries})"
        );
        Self {
            max_entries,
            min_entries,
        }
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            max_entries: 16,
            min_entries: 6,
        }
    }
}

#[derive(Clone, Debug)]
enum Entry<T> {
    /// Internal entry pointing at a child node.
    Child { rect: Rect, node: usize },
    /// Leaf entry holding a payload.
    Item { rect: Rect, item: T },
}

impl<T> Entry<T> {
    fn rect(&self) -> &Rect {
        match self {
            Entry::Child { rect, .. } | Entry::Item { rect, .. } => rect,
        }
    }
}

#[derive(Clone, Debug)]
struct Node<T> {
    /// 0 for leaves; parents of leaves are level 1, etc.
    level: u32,
    entries: Vec<Entry<T>>,
}

impl<T> Node<T> {
    fn mbr(&self) -> Option<Rect> {
        let mut it = self.entries.iter();
        let mut acc = it.next()?.rect().clone();
        for e in it {
            acc.union_in_place(e.rect());
        }
        Some(acc)
    }
}

/// Structural statistics, used by the space-overhead experiment (Fig. 7).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RTreeStats {
    /// Total nodes (internal + leaf).
    pub node_count: usize,
    /// Leaf nodes only.
    pub leaf_count: usize,
    /// Tree height (1 = a single leaf root).
    pub height: usize,
    /// Stored items.
    pub len: usize,
}

/// A dynamic R-tree over payloads of type `T` with runtime dimensionality.
#[derive(Clone, Debug)]
pub struct RTree<T> {
    dim: usize,
    cfg: RTreeConfig,
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl<T> RTree<T> {
    /// Creates an empty tree for `dim`-dimensional rectangles.
    pub fn new(dim: usize, cfg: RTreeConfig) -> Self {
        assert!(dim > 0, "RTree: dimension must be positive");
        let root = 0;
        Self {
            dim,
            cfg,
            nodes: vec![Node {
                level: 0,
                entries: Vec::new(),
            }],
            free: Vec::new(),
            root,
            len: 0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of indexed rectangles.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Fan-out configuration.
    pub fn config(&self) -> RTreeConfig {
        self.cfg
    }

    /// MBR of the whole tree, or `None` when empty.
    pub fn root_mbr(&self) -> Option<Rect> {
        self.nodes[self.root].mbr()
    }

    /// Structural statistics.
    pub fn stats(&self) -> RTreeStats {
        let mut node_count = 0;
        let mut leaf_count = 0;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            node_count += 1;
            let node = &self.nodes[n];
            if node.level == 0 {
                leaf_count += 1;
            } else {
                for e in &node.entries {
                    if let Entry::Child { node, .. } = e {
                        stack.push(*node);
                    }
                }
            }
        }
        RTreeStats {
            node_count,
            leaf_count,
            height: self.nodes[self.root].level as usize + 1,
            len: self.len,
        }
    }

    fn alloc(&mut self, node: Node<T>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Inserts an item with its bounding rectangle.
    ///
    /// # Panics
    /// If `rect.dim() != self.dim()`.
    pub fn insert(&mut self, rect: Rect, item: T) {
        assert_eq!(rect.dim(), self.dim, "RTree::insert: dimension mismatch");
        self.insert_entry(Entry::Item { rect, item }, 0);
        self.len += 1;
    }

    /// Inserts an entry at the given level (0 = leaf). Used both by
    /// public insertion and by CondenseTree re-insertion.
    fn insert_entry(&mut self, entry: Entry<T>, level: u32) {
        // Descend from the root picking least-enlargement children until
        // reaching `level`.
        let mut path = Vec::new();
        let mut current = self.root;
        while self.nodes[current].level > level {
            let rect = entry.rect();
            let chosen = self.choose_subtree(current, rect);
            path.push(current);
            current = chosen;
        }
        self.nodes[current].entries.push(entry);

        // Split overflowing nodes bottom-up, updating MBRs along the path.
        let mut split_of: Option<(usize, Rect, Rect)> = None; // (new node, old mbr, new mbr)
        if self.nodes[current].entries.len() > self.cfg.max_entries {
            split_of = Some(self.split(current));
        }
        let mut child = current;
        while let Some(parent) = path.pop() {
            // Refresh the rect of `child` inside `parent`.
            let child_mbr = self.nodes[child].mbr().expect("non-empty child");
            for e in &mut self.nodes[parent].entries {
                if let Entry::Child { node, rect } = e {
                    if *node == child {
                        *rect = child_mbr.clone();
                        break;
                    }
                }
            }
            if let Some((new_node, _old_mbr, new_mbr)) = split_of.take() {
                self.nodes[parent].entries.push(Entry::Child {
                    rect: new_mbr,
                    node: new_node,
                });
                if self.nodes[parent].entries.len() > self.cfg.max_entries {
                    split_of = Some(self.split(parent));
                }
            }
            child = parent;
        }
        // Root split: grow the tree by one level.
        if let Some((new_node, old_mbr, new_mbr)) = split_of {
            let old_root = self.root;
            let level = self.nodes[old_root].level + 1;
            let new_root = self.alloc(Node {
                level,
                entries: vec![
                    Entry::Child {
                        rect: old_mbr,
                        node: old_root,
                    },
                    Entry::Child {
                        rect: new_mbr,
                        node: new_node,
                    },
                ],
            });
            self.root = new_root;
        }
    }

    /// Guttman ChooseLeaf step: child needing least enlargement, ties
    /// broken by smaller area.
    fn choose_subtree(&self, node: usize, rect: &Rect) -> usize {
        let mut best: Option<(usize, f64, f64)> = None;
        for e in &self.nodes[node].entries {
            if let Entry::Child {
                rect: crect,
                node: child,
            } = e
            {
                let enl = crect.enlargement(rect);
                let area = crect.area();
                let better = match &best {
                    None => true,
                    Some((_, be, ba)) => enl < *be || (enl == *be && area < *ba),
                };
                if better {
                    best = Some((*child, enl, area));
                }
            }
        }
        best.expect("choose_subtree: internal node with no children")
            .0
    }

    /// Quadratic split (Guttman §3.5.2). Returns
    /// `(new_node_index, mbr_of_split_node, mbr_of_new_node)`.
    fn split(&mut self, node: usize) -> (usize, Rect, Rect) {
        let level = self.nodes[node].level;
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let n = entries.len();
        debug_assert!(n > self.cfg.max_entries);

        // PickSeeds: pair wasting the most area when combined.
        let mut seed_a = 0;
        let mut seed_b = 1;
        let mut worst = f64::NEG_INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let ri = entries[i].rect();
                let rj = entries[j].rect();
                let waste = ri.union(rj).area() - ri.area() - rj.area();
                if waste > worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }

        let mut group_a: Vec<Entry<T>> = Vec::with_capacity(n);
        let mut group_b: Vec<Entry<T>> = Vec::with_capacity(n);
        let mut mbr_a = entries[seed_a].rect().clone();
        let mut mbr_b = entries[seed_b].rect().clone();
        let mut rest: Vec<Entry<T>> = Vec::with_capacity(n - 2);
        for (i, e) in entries.into_iter().enumerate() {
            if i == seed_a {
                group_a.push(e);
            } else if i == seed_b {
                group_b.push(e);
            } else {
                rest.push(e);
            }
        }

        // PickNext: assign the entry with the strongest preference first.
        while !rest.is_empty() {
            let remaining = rest.len();
            let min = self.cfg.min_entries;
            // Force assignment if one group must take all the rest to
            // reach the minimum.
            if group_a.len() + remaining == min {
                for e in rest.drain(..) {
                    mbr_a.union_in_place(e.rect());
                    group_a.push(e);
                }
                break;
            }
            if group_b.len() + remaining == min {
                for e in rest.drain(..) {
                    mbr_b.union_in_place(e.rect());
                    group_b.push(e);
                }
                break;
            }
            let mut pick = 0;
            let mut pick_diff = f64::NEG_INFINITY;
            for (i, e) in rest.iter().enumerate() {
                let da = mbr_a.enlargement(e.rect());
                let db = mbr_b.enlargement(e.rect());
                let diff = (da - db).abs();
                if diff > pick_diff {
                    pick_diff = diff;
                    pick = i;
                }
            }
            let e = rest.swap_remove(pick);
            let da = mbr_a.enlargement(e.rect());
            let db = mbr_b.enlargement(e.rect());
            let to_a = match da.total_cmp(&db) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    // Tie-break: smaller area, then fewer entries.
                    (mbr_a.area(), group_a.len()) <= (mbr_b.area(), group_b.len())
                }
            };
            if to_a {
                mbr_a.union_in_place(e.rect());
                group_a.push(e);
            } else {
                mbr_b.union_in_place(e.rect());
                group_b.push(e);
            }
        }

        self.nodes[node].entries = group_a;
        let new_node = self.alloc(Node {
            level,
            entries: group_b,
        });
        (new_node, mbr_a, mbr_b)
    }

    /// Collects references to all items whose rectangles intersect
    /// `query`.
    pub fn range(&self, query: &Rect) -> Vec<&T> {
        self.range_with_stats(query).0
    }

    /// Range search that also reports the number of nodes visited — the
    /// unit of work the latency cost model charges for.
    pub fn range_with_stats(&self, query: &Rect) -> (Vec<&T>, usize) {
        assert_eq!(query.dim(), self.dim, "RTree::range: dimension mismatch");
        let mut out = Vec::new();
        let mut visited = 0;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            visited += 1;
            for e in &self.nodes[n].entries {
                match e {
                    Entry::Child { rect, node } => {
                        if rect.intersects(query) {
                            stack.push(*node);
                        }
                    }
                    Entry::Item { rect, item } => {
                        if rect.intersects(query) {
                            out.push(item);
                        }
                    }
                }
            }
        }
        (out, visited)
    }

    /// k-nearest-neighbour search around `point` by MBR center distance
    /// lower bound (best-first / branch-and-bound). Returns up to `k`
    /// items with their squared distances, nearest first.
    pub fn knn(&self, point: &[f64], k: usize) -> Vec<(&T, f64)> {
        self.knn_with_stats(point, k).0
    }

    /// k-NN that also reports nodes visited.
    pub fn knn_with_stats(&self, point: &[f64], k: usize) -> (Vec<(&T, f64)>, usize) {
        assert_eq!(point.len(), self.dim, "RTree::knn: dimension mismatch");
        #[derive(PartialEq)]
        enum Cand {
            Node(usize),
            Item(usize, usize), // (node, entry index)
        }
        struct HeapEntry {
            dist: f64,
            cand: Cand,
        }
        impl PartialEq for HeapEntry {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for HeapEntry {}
        impl PartialOrd for HeapEntry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapEntry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap by distance.
                other.dist.total_cmp(&self.dist)
            }
        }

        let mut out: Vec<(&T, f64)> = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return (out, 0);
        }
        let mut visited = 0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            cand: Cand::Node(self.root),
        });
        while let Some(HeapEntry { dist, cand }) = heap.pop() {
            if out.len() == k && dist > out.last().map_or(f64::INFINITY, |&(_, d)| d) {
                break;
            }
            match cand {
                Cand::Node(n) => {
                    visited += 1;
                    for (i, e) in self.nodes[n].entries.iter().enumerate() {
                        let d = e.rect().min_sq_dist(point);
                        match e {
                            Entry::Child { node, .. } => heap.push(HeapEntry {
                                dist: d,
                                cand: Cand::Node(*node),
                            }),
                            Entry::Item { .. } => heap.push(HeapEntry {
                                dist: d,
                                cand: Cand::Item(n, i),
                            }),
                        }
                    }
                }
                Cand::Item(n, i) => {
                    if let Entry::Item { item, .. } = &self.nodes[n].entries[i] {
                        if out.len() < k {
                            out.push((item, dist));
                            out.sort_by(|a, b| a.1.total_cmp(&b.1));
                        } else if dist < out.last().unwrap().1 {
                            out.pop();
                            out.push((item, dist));
                            out.sort_by(|a, b| a.1.total_cmp(&b.1));
                        }
                    }
                }
            }
        }
        (out, visited)
    }

    /// Iterates over all `(rect, item)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        let mut stack = vec![self.root];
        let mut leaves = Vec::new();
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.level == 0 {
                leaves.push(n);
            } else {
                for e in &node.entries {
                    if let Entry::Child { node, .. } = e {
                        stack.push(*node);
                    }
                }
            }
        }
        leaves.into_iter().flat_map(move |n| {
            self.nodes[n].entries.iter().filter_map(|e| match e {
                Entry::Item { rect, item } => Some((rect, item)),
                Entry::Child { .. } => None,
            })
        })
    }

    /// Validates structural invariants (entry counts, MBR containment,
    /// level consistency). Intended for tests; O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        let mut stack = vec![(self.root, None::<Rect>)];
        while let Some((n, parent_rect)) = stack.pop() {
            let node = &self.nodes[n];
            if n != self.root && node.entries.len() < self.cfg.min_entries {
                return Err(format!(
                    "node {n} underflow: {} < {}",
                    node.entries.len(),
                    self.cfg.min_entries
                ));
            }
            if node.entries.len() > self.cfg.max_entries {
                return Err(format!(
                    "node {n} overflow: {} > {}",
                    node.entries.len(),
                    self.cfg.max_entries
                ));
            }
            if let (Some(pr), Some(mbr)) = (&parent_rect, node.mbr()) {
                if !pr.contains_rect(&mbr) {
                    return Err(format!("node {n}: parent rect does not contain MBR"));
                }
            }
            for e in &node.entries {
                match e {
                    Entry::Child { rect, node: child } => {
                        if node.level == 0 {
                            return Err(format!("leaf {n} has child entry"));
                        }
                        if self.nodes[*child].level + 1 != node.level {
                            return Err(format!("node {n}: child level mismatch"));
                        }
                        stack.push((*child, Some(rect.clone())));
                    }
                    Entry::Item { .. } => {
                        if node.level != 0 {
                            return Err(format!("internal node {n} has item entry"));
                        }
                        seen += 1;
                    }
                }
            }
        }
        if seen != self.len {
            return Err(format!(
                "len mismatch: counted {seen}, recorded {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<T: PartialEq> RTree<T> {
    /// Removes one item equal to `item` whose stored rectangle intersects
    /// `rect`. Returns the removed payload, or `None` if not found.
    ///
    /// Implements Guttman's `Delete` + `CondenseTree`: underflowing nodes
    /// along the path are dissolved and their entries re-inserted at
    /// their original level.
    pub fn delete(&mut self, rect: &Rect, item: &T) -> Option<T> {
        assert_eq!(rect.dim(), self.dim, "RTree::delete: dimension mismatch");
        // FindLeaf: DFS over nodes whose rect intersects.
        let mut path = Vec::new();
        let found = self.find_leaf(self.root, rect, item, &mut path)?;
        let (leaf, entry_idx) = found;
        let removed = match self.nodes[leaf].entries.swap_remove(entry_idx) {
            Entry::Item { item, .. } => item,
            Entry::Child { .. } => unreachable!("find_leaf returned a child entry"),
        };
        self.len -= 1;
        self.condense(path);
        Some(removed)
    }

    /// DFS locating the leaf and entry index holding `item`; fills `path`
    /// with the node indices from root to the leaf (leaf included).
    fn find_leaf(
        &self,
        node: usize,
        rect: &Rect,
        item: &T,
        path: &mut Vec<usize>,
    ) -> Option<(usize, usize)> {
        path.push(node);
        let n = &self.nodes[node];
        if n.level == 0 {
            for (i, e) in n.entries.iter().enumerate() {
                if let Entry::Item { rect: r, item: it } = e {
                    if it == item && r.intersects(rect) {
                        return Some((node, i));
                    }
                }
            }
        } else {
            for e in &n.entries {
                if let Entry::Child {
                    rect: r,
                    node: child,
                } = e
                {
                    if r.intersects(rect) {
                        if let Some(found) = self.find_leaf(*child, rect, item, path) {
                            return Some(found);
                        }
                    }
                }
            }
        }
        path.pop();
        None
    }

    /// CondenseTree: dissolve underflowing nodes on the root-to-leaf
    /// path, re-insert orphaned entries, and shrink the root if needed.
    fn condense(&mut self, mut path: Vec<usize>) {
        let mut orphans: Vec<(Entry<T>, u32)> = Vec::new();
        while path.len() > 1 {
            let node = path.pop().unwrap();
            let parent = *path.last().unwrap();
            let underflow = self.nodes[node].entries.len() < self.cfg.min_entries;
            if underflow {
                // Remove from parent and orphan all entries.
                self.nodes[parent]
                    .entries
                    .retain(|e| !matches!(e, Entry::Child { node: c, .. } if *c == node));
                let level = self.nodes[node].level;
                for e in std::mem::take(&mut self.nodes[node].entries) {
                    orphans.push((e, level));
                }
                self.free.push(node);
            } else {
                // Tighten the parent's rect for this child.
                if let Some(mbr) = self.nodes[node].mbr() {
                    for e in &mut self.nodes[parent].entries {
                        if let Entry::Child { node: c, rect } = e {
                            if *c == node {
                                *rect = mbr.clone();
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Shrink the root while it is an internal node with one child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].entries.len() == 1 {
            let old_root = self.root;
            if let Entry::Child { node, .. } = &self.nodes[old_root].entries[0] {
                self.root = *node;
                self.nodes[old_root].entries.clear();
                self.free.push(old_root);
            }
        }
        // An empty internal root (all children dissolved) degenerates to
        // an empty leaf.
        if self.nodes[self.root].entries.is_empty() {
            self.nodes[self.root].level = 0;
        }
        // Re-insert orphans at their original level.
        for (entry, level) in orphans {
            match entry {
                Entry::Item { rect, item } => {
                    self.insert_entry(Entry::Item { rect, item }, 0);
                }
                e @ Entry::Child { .. } => {
                    // A child of a dissolved node at level L re-parents
                    // into a node at exactly level L. If the tree shrank
                    // below that level, the subtree's items must be
                    // re-inserted individually instead.
                    if self.nodes[self.root].level >= level {
                        self.insert_entry(e, level);
                    } else if let Entry::Child { node, .. } = e {
                        self.reinsert_subtree(node);
                    }
                }
            }
        }
    }

    /// Recursively re-inserts every item stored under `node`.
    fn reinsert_subtree(&mut self, node: usize) {
        let entries = std::mem::take(&mut self.nodes[node].entries);
        self.free.push(node);
        for e in entries {
            match e {
                Entry::Item { rect, item } => {
                    self.insert_entry(Entry::Item { rect, item }, 0);
                }
                Entry::Child { node, .. } => self.reinsert_subtree(node),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::point(&[x, y])
    }

    fn grid_tree(n: usize) -> RTree<usize> {
        let mut t = RTree::new(2, RTreeConfig::new(8, 3));
        let mut id = 0;
        for x in 0..n {
            for y in 0..n {
                t.insert(pt(x as f64, y as f64), id);
                id += 1;
            }
        }
        t
    }

    #[test]
    fn insert_and_len() {
        let t = grid_tree(10);
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_query_matches_grid() {
        let t = grid_tree(10);
        let q = Rect::new(vec![2.0, 2.0], vec![4.0, 4.0]);
        let mut hits = t.range(&q);
        hits.sort();
        // 3x3 block of grid points.
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn range_query_empty_region() {
        let t = grid_tree(5);
        let q = Rect::new(vec![100.0, 100.0], vec![101.0, 101.0]);
        assert!(t.range(&q).is_empty());
    }

    #[test]
    fn knn_returns_nearest() {
        let t = grid_tree(10);
        let res = t.knn(&[0.2, 0.2], 1);
        assert_eq!(res.len(), 1);
        assert_eq!(*res[0].0, 0, "nearest to origin corner is item 0");
        let res4 = t.knn(&[0.5, 0.5], 4);
        assert_eq!(res4.len(), 4);
        let ids: Vec<usize> = res4.iter().map(|&(i, _)| *i).collect();
        // the four corners of the unit cell: (0,0)=0, (0,1)=1, (1,0)=10, (1,1)=11
        for want in [0, 1, 10, 11] {
            assert!(ids.contains(&want), "missing {want} in {ids:?}");
        }
    }

    #[test]
    fn knn_distances_sorted_ascending() {
        let t = grid_tree(8);
        let res = t.knn(&[3.3, 3.3], 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn knn_k_larger_than_len() {
        let t = grid_tree(2);
        assert_eq!(t.knn(&[0.0, 0.0], 100).len(), 4);
    }

    #[test]
    fn knn_on_empty_tree() {
        let t: RTree<u32> = RTree::new(2, RTreeConfig::default());
        assert!(t.knn(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn delete_removes_and_keeps_invariants() {
        let mut t = grid_tree(10);
        for x in 0..10 {
            for y in 0..10 {
                let id = x * 10 + y;
                if (x + y) % 2 == 0 {
                    let removed = t.delete(&pt(x as f64, y as f64), &id);
                    assert_eq!(removed, Some(id));
                    t.check_invariants().unwrap();
                }
            }
        }
        assert_eq!(t.len(), 50);
        // Remaining items still findable.
        let q = Rect::new(vec![0.0, 0.0], vec![9.0, 9.0]);
        assert_eq!(t.range(&q).len(), 50);
    }

    #[test]
    fn delete_missing_returns_none() {
        let mut t = grid_tree(3);
        assert_eq!(t.delete(&pt(50.0, 50.0), &12345), None);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn delete_everything_empties_tree() {
        let mut t = grid_tree(5);
        for x in 0..5 {
            for y in 0..5 {
                assert!(t.delete(&pt(x as f64, y as f64), &(x * 5 + y)).is_some());
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        // Tree remains usable.
        t.insert(pt(1.0, 1.0), 999);
        assert_eq!(t.len(), 1);
        assert_eq!(t.range(&pt(1.0, 1.0)).len(), 1);
    }

    #[test]
    fn root_mbr_covers_all_points() {
        let t = grid_tree(6);
        let mbr = t.root_mbr().unwrap();
        assert!(mbr.contains_point(&[0.0, 0.0]));
        assert!(mbr.contains_point(&[5.0, 5.0]));
    }

    #[test]
    fn stats_reflect_structure() {
        let t = grid_tree(10);
        let s = t.stats();
        assert_eq!(s.len, 100);
        assert!(s.height >= 2, "100 items with M=8 must have height >= 2");
        assert!(s.leaf_count >= 100 / 8);
        assert!(s.node_count > s.leaf_count);
    }

    #[test]
    fn iter_yields_all_items() {
        let t = grid_tree(7);
        let mut ids: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        ids.sort();
        assert_eq!(ids, (0..49).collect::<Vec<_>>());
    }

    #[test]
    fn rect_items_supported() {
        // Non-degenerate rectangles as payload bounds.
        let mut t = RTree::new(2, RTreeConfig::new(4, 2));
        t.insert(Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]), "a");
        t.insert(Rect::new(vec![1.0, 1.0], vec![3.0, 3.0]), "b");
        t.insert(Rect::new(vec![10.0, 10.0], vec![11.0, 11.0]), "c");
        let q = Rect::new(vec![1.5, 1.5], vec![1.6, 1.6]);
        let mut hits = t.range(&q);
        hits.sort();
        assert_eq!(hits, vec![&"a", &"b"]);
    }

    #[test]
    fn duplicate_points_all_stored_and_deletable() {
        let mut t = RTree::new(1, RTreeConfig::new(4, 2));
        for i in 0..10 {
            t.insert(Rect::point(&[1.0]), i);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.range(&Rect::point(&[1.0])).len(), 10);
        for i in 0..10 {
            assert_eq!(t.delete(&Rect::point(&[1.0]), &i), Some(i));
        }
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut t: RTree<u32> = RTree::new(2, RTreeConfig::default());
        t.insert(Rect::point(&[1.0]), 1);
    }

    #[test]
    fn high_dimensional_tree() {
        let mut t = RTree::new(8, RTreeConfig::new(10, 4));
        for i in 0..200 {
            let p: Vec<f64> = (0..8).map(|d| ((i * (d + 3)) % 17) as f64).collect();
            t.insert(Rect::point(&p), i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
        let whole = Rect::new(vec![0.0; 8], vec![17.0; 8]);
        assert_eq!(t.range(&whole).len(), 200);
    }
}
