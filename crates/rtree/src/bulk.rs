//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building an R-tree by repeated insertion produces poorly packed nodes;
//! STR (Leutenegger et al., ICDE '97) sorts items into tiles and packs
//! full leaves, producing near-100% node utilization. The non-semantic
//! R-tree baseline loads each trace with this builder so the baseline is
//! not handicapped by insertion order.

use crate::rect::Rect;
use crate::tree::{RTree, RTreeConfig};

/// Bulk-loads `items` into a new R-tree using STR packing.
///
/// Each input is `(rect, payload)`. For zero items an empty tree is
/// returned. The resulting tree satisfies the same invariants as one
/// built by insertion and supports all dynamic operations afterwards.
pub fn str_bulk_load<T>(dim: usize, cfg: RTreeConfig, items: Vec<(Rect, T)>) -> RTree<T> {
    let mut tree = RTree::new(dim, cfg);
    if items.is_empty() {
        return tree;
    }
    for (rect, item) in &items {
        assert_eq!(rect.dim(), dim, "str_bulk_load: dimension mismatch");
        let _ = item;
    }
    // Recursively tile by center coordinates.
    let capacity = cfg.max_entries;
    let slices = tile(items, dim, 0, capacity);
    // The simple, robust route: insert slice-by-slice. Because each slice
    // is spatially coherent, insertion builds well-packed nodes; this
    // keeps `RTree` internals private while still giving STR's locality
    // benefit.
    for slice in slices {
        for (rect, item) in slice {
            tree.insert(rect, item);
        }
    }
    tree
}

/// Recursively partitions items into spatially coherent runs of at most
/// `capacity` items: sort by the current dimension's center, cut into
/// `s = ceil((n/capacity)^(1/(dim-axis)))` vertical slabs, recurse on the
/// next axis inside each slab.
fn tile<T>(
    mut items: Vec<(Rect, T)>,
    dim: usize,
    axis: usize,
    capacity: usize,
) -> Vec<Vec<(Rect, T)>> {
    let n = items.len();
    if n <= capacity || axis >= dim {
        return vec![items];
    }
    items.sort_by(|a, b| {
        let ca = a.0.center()[axis];
        let cb = b.0.center()[axis];
        ca.total_cmp(&cb)
    });
    let leaves_needed = n.div_ceil(capacity);
    let remaining_axes = (dim - axis) as f64;
    let slabs = (leaves_needed as f64).powf(1.0 / remaining_axes).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut out = Vec::new();
    while !items.is_empty() {
        let take = slab_size.min(items.len());
        let rest = items.split_off(take);
        let slab = std::mem::replace(&mut items, rest);
        out.extend(tile(slab, dim, axis + 1, capacity));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(Rect, usize)> {
        // Deterministic scattered points.
        (0..n)
            .map(|i| {
                let x = ((i * 7919) % 1000) as f64;
                let y = ((i * 104729) % 1000) as f64;
                (Rect::point(&[x, y]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_preserves_all_items() {
        let tree = str_bulk_load(2, RTreeConfig::new(16, 6), points(500));
        assert_eq!(tree.len(), 500);
        tree.check_invariants().unwrap();
        let whole = Rect::new(vec![0.0, 0.0], vec![1000.0, 1000.0]);
        assert_eq!(tree.range(&whole).len(), 500);
    }

    #[test]
    fn bulk_load_empty() {
        let tree: RTree<u32> = str_bulk_load(3, RTreeConfig::default(), vec![]);
        assert!(tree.is_empty());
    }

    #[test]
    fn bulk_load_single_item() {
        let tree = str_bulk_load(
            2,
            RTreeConfig::default(),
            vec![(Rect::point(&[1.0, 2.0]), 7u32)],
        );
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.range(&Rect::point(&[1.0, 2.0])), vec![&7]);
    }

    #[test]
    fn bulk_loaded_tree_answers_range_queries_correctly() {
        let items = points(300);
        let tree = str_bulk_load(2, RTreeConfig::new(12, 4), items.clone());
        let q = Rect::new(vec![100.0, 100.0], vec![400.0, 400.0]);
        let mut got: Vec<usize> = tree.range(&q).into_iter().copied().collect();
        got.sort();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(r, _)| q.contains_point(r.lo()))
            .map(|&(_, i)| i)
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_loaded_tree_supports_dynamic_ops() {
        let mut tree = str_bulk_load(2, RTreeConfig::new(8, 3), points(100));
        tree.insert(Rect::point(&[5000.0, 5000.0]), 10_000);
        assert_eq!(tree.len(), 101);
        let removed = tree.delete(&Rect::point(&[5000.0, 5000.0]), &10_000);
        assert_eq!(removed, Some(10_000));
        tree.check_invariants().unwrap();
    }
}
