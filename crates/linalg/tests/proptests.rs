//! Property tests for the numeric substrate: SVD factorization
//! invariants on arbitrary matrices, LSI self-consistency, K-means
//! partition properties.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartstore_linalg::{jacobi_svd, kmeans, Lsi, LsiConfig, Matrix};

fn small_entries() -> impl Strategy<Value = f64> {
    // Bounded magnitudes keep conditioning sane without losing coverage.
    (-100i32..100).prop_map(|v| v as f64 / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svd_reconstructs_any_matrix(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in any::<u32>(),
    ) {
        // Deterministic fill from the seed so shrinking is stable.
        let mut s = seed as u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) * 10.0 - 5.0
        };
        let a = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
        let svd = jacobi_svd(&a);
        let err = a.sub(&svd.reconstruct()).frobenius_norm();
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(err / scale < 1e-8, "relative reconstruction error {}", err / scale);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative(
        rows in 1usize..8,
        cols in 1usize..8,
        data in prop::collection::vec(small_entries(), 64),
    ) {
        let a = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let svd = jacobi_svd(&a);
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1], "singular values must be descending");
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        // Frobenius norm identity: ‖A‖² = Σ σᵢ².
        let fro2 = a.frobenius_norm().powi(2);
        let sig2: f64 = svd.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sig2).abs() <= 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn truncation_error_is_tail_energy(
        rows in 2usize..8,
        data in prop::collection::vec(small_entries(), 64),
        p in 1usize..4,
    ) {
        let cols = 6usize;
        let a = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let svd = jacobi_svd(&a);
        let t = svd.truncate(p);
        let err2 = a.sub(&t.reconstruct()).frobenius_norm().powi(2);
        let tail2: f64 = svd.sigma.iter().skip(t.rank()).map(|s| s * s).sum();
        prop_assert!(
            (err2 - tail2).abs() <= 1e-6 * (tail2.max(1.0)),
            "Eckart–Young: truncation error {err2} vs tail energy {tail2}"
        );
    }

    #[test]
    fn lsi_similarity_is_symmetric_and_bounded(
        items in prop::collection::vec(
            prop::collection::vec(small_entries(), 4),
            2..30
        ),
    ) {
        let lsi = Lsi::fit_items(&items, LsiConfig { rank: 2, standardize: true });
        for i in 0..items.len() {
            for j in 0..items.len() {
                let s_ij = lsi.similarity(i, j);
                let s_ji = lsi.similarity(j, i);
                prop_assert!((s_ij - s_ji).abs() < 1e-9);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s_ij));
            }
        }
    }

    #[test]
    fn kmeans_is_a_partition_with_valid_labels(
        items in prop::collection::vec(
            prop::collection::vec(small_entries(), 3),
            1..60
        ),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = kmeans(&items, k, 50, &mut rng);
        prop_assert_eq!(r.assignments.len(), items.len());
        let k_eff = k.min(items.len());
        prop_assert_eq!(r.centroids.len(), k_eff);
        for &a in &r.assignments {
            prop_assert!(a < k_eff);
        }
        prop_assert!(r.inertia >= 0.0);
    }

    #[test]
    fn kmeans_inertia_no_worse_than_single_cluster(
        items in prop::collection::vec(
            prop::collection::vec(small_entries(), 2),
            2..50
        ),
        k in 2usize..6,
    ) {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let multi = kmeans(&items, k, 60, &mut rng_a);
        let single = kmeans(&items, 1, 60, &mut rng_b);
        prop_assert!(
            multi.inertia <= single.inertia + 1e-9,
            "k={k} clusters must fit at least as well as one"
        );
    }
}

// ---------------------------------------------------------------------------
// `total_cmp` migration parity.
//
// K-means' assignment step and the LSI argmax moved from
// `partial_cmp(..).unwrap()` to `f64::total_cmp`. On finite keys the
// comparators agree everywhere except -0.0 vs +0.0 (where the old one
// said Equal), and squared distances are never -0.0 — so the winning
// index of every min/max is unchanged. These properties pin that down.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `min_by`/`max_by` pick the same index under both comparators on
    /// finite non-negative keys (the distance domain).
    #[test]
    fn argmin_agrees_between_total_cmp_and_partial_cmp(
        keys in prop::collection::vec((0u32..1_000_000).prop_map(|v| v as f64 / 64.0), 1..100),
    ) {
        let new_min = keys.iter().enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        #[allow(clippy::disallowed_methods)]
        let old_min = keys.iter().enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i);
        prop_assert_eq!(new_min, old_min);
        let new_max = keys.iter().enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        #[allow(clippy::disallowed_methods)]
        let old_max = keys.iter().enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i);
        prop_assert_eq!(new_max, old_max);
    }

    /// K-means is deterministic for a fixed seed and never panics, even
    /// when items contain non-finite coordinates (the case that used to
    /// kill the old comparator).
    #[test]
    fn kmeans_deterministic_and_nan_safe(
        n in 2usize..30,
        k in 1usize..5,
        seed in any::<u64>(),
        poison in any::<bool>(),
    ) {
        let mut items: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i * 13 % 17) as f64, (i * 7 % 11) as f64])
            .collect();
        if poison {
            items[0][0] = f64::NAN;
        }
        let a = kmeans(&items, k, 12, &mut StdRng::seed_from_u64(seed));
        let b = kmeans(&items, k, 12, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(
            a.centroids.iter().flatten().map(|c| c.to_bits()).collect::<Vec<u64>>(),
            b.centroids.iter().flatten().map(|c| c.to_bits()).collect::<Vec<u64>>()
        );
    }
}
