//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The paper (§3.1.1) contrasts its LSI grouping with K-means, noting
//! K-means' sensitivity to initialization and to the choice of K. The
//! benchmark harness uses this implementation for the grouping-quality
//! ablation (LSI vs K-means vs random grouping).

use crate::sq_euclidean;
use rand::Rng;
use rayon::prelude::*;

/// Result of a K-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// `assignments[i]` is the cluster index of item `i`.
    pub assignments: Vec<usize>,
    /// Cluster centroids (`k` vectors of dimension D).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squares — the quantity the paper's
    /// semantic-correlation measure `Σᵢ Σ_{fⱼ∈Gᵢ} (fⱼ − Cᵢ)²` minimizes.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs K-means on `items` (each of equal dimension) with `k` clusters.
///
/// Uses k-means++ seeding for robust initialization and stops when
/// assignments are stable or after `max_iter` iterations. `k` is clamped
/// to `items.len()`; with zero items an empty result is returned.
pub fn kmeans<R: Rng>(items: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut R) -> KMeansResult {
    let n = items.len();
    if n == 0 || k == 0 {
        return KMeansResult {
            assignments: vec![],
            centroids: vec![],
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let dim = items[0].len();
    for it in items {
        assert_eq!(it.len(), dim, "kmeans: ragged item vectors");
    }

    let mut centroids = seed_plus_plus(items, k, rng);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;

    for _ in 0..max_iter {
        iterations += 1;
        // Assignment step: each item's nearest-centroid search is
        // independent, so this O(n·k·d) scan — the K-means hot loop —
        // parallelizes with bit-identical results.
        let best: Vec<usize> = items
            .par_iter()
            .map(|item| nearest_centroid(item, &centroids))
            .collect();
        let mut changed = false;
        for (a, b) in assignments.iter_mut().zip(best) {
            if *a != b {
                *a = b;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, item) in items.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(item) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid to keep k clusters alive.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(&items[a], &centroids[assignments[a]]);
                        let db = sq_euclidean(&items[b], &centroids[assignments[b]]);
                        da.total_cmp(&db)
                    })
                    .unwrap();
                centroids[c] = items[far].clone();
            } else {
                for (cd, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cd = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = items
        .iter()
        .enumerate()
        .map(|(i, it)| sq_euclidean(it, &centroids[assignments[i]]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

fn nearest_centroid(item: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = sq_euclidean(item, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent centroids drawn
/// with probability proportional to squared distance from the nearest
/// already-chosen centroid.
fn seed_plus_plus<R: Rng>(items: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let n = items.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(items[rng.gen_range(0..n)].clone());
    let mut dists: Vec<f64> = items
        .iter()
        .map(|it| sq_euclidean(it, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(items[next].clone());
        for (i, it) in items.iter().enumerate() {
            let d = sq_euclidean(it, centroids.last().unwrap());
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut items = Vec::new();
        for i in 0..10 {
            items.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            items.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        items
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = kmeans(&two_blobs(), 2, 100, &mut rng);
        // All even indices (blob A) share a label; odd indices share the other.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..20 {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn k_clamped_to_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&items, 10, 50, &mut rng);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(&[], 3, 50, &mut rng);
        assert!(r.assignments.is_empty());
        assert!(r.centroids.is_empty());
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&items, 1, 50, &mut rng);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((r.inertia - 8.0).abs() < 1e-9);
    }

    #[test]
    fn identical_points_converge_immediately() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = vec![vec![5.0, 5.0]; 8];
        let r = kmeans(&items, 3, 50, &mut rng);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let r1 = kmeans(&two_blobs(), 2, 100, &mut StdRng::seed_from_u64(42));
        let r2 = kmeans(&two_blobs(), 2, 100, &mut StdRng::seed_from_u64(42));
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }
}
