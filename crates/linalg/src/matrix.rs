//! Row-major dense matrix.
//!
//! The matrix type is intentionally small: it provides exactly the
//! operations the SVD/LSI pipeline needs, stores data contiguously for
//! cache-friendly column sweeps, and panics loudly on shape mismatches
//! (shape errors here are always programming bugs, never data errors).

use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Below this many multiply-adds a matrix product runs sequentially:
/// the parallel dispatch overhead would dominate the arithmetic.
const PAR_MATMUL_FLOPS: usize = 1 << 15;

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Writes `values` into column `c`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (r, &v) in values.iter().enumerate() {
            self[(r, c)] = v;
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic ikj loop order so the innermost loop streams over
    /// contiguous rows of both the output and `other`, and computes
    /// output rows in parallel once the product is big enough to
    /// amortize the dispatch. Each output row is produced by exactly
    /// the sequential per-row computation, so the result is
    /// bit-identical at every thread count.
    ///
    /// # Panics
    /// If `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if out.data.is_empty() {
            return out;
        }
        let fill_row = |i: usize, out_row: &mut [f64]| {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(k)) {
                    *o += a * b;
                }
            }
        };
        if self.rows * self.cols * other.cols < PAR_MATMUL_FLOPS {
            for i in 0..self.rows {
                fill_row(i, out.row_mut(i));
            }
        } else {
            let cols = out.cols;
            out.data
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(i, out_row)| fill_row(i, out_row));
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// If `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn frobenius_norm_of_345() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn col_and_set_col_roundtrip() {
        let mut a = Matrix::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn large_matmul_matches_naive_triple_loop() {
        // 48×48×48 > PAR_MATMUL_FLOPS ⇒ exercises the parallel path;
        // must agree bit-for-bit with the naive product.
        let n = 48;
        let mut seed = 9u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let a = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let c = a.matmul(&b);
        let mut naive = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let av = a[(i, k)];
                for j in 0..n {
                    naive[(i, j)] += av * b[(k, j)];
                }
            }
        }
        assert_eq!(c, naive);
    }

    #[test]
    fn sub_and_scale() {
        let a = Matrix::from_rows(&[vec![2.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let mut c = a.sub(&b);
        c.scale_in_place(2.0);
        assert_eq!(c.as_slice(), &[2.0, 6.0]);
    }
}
