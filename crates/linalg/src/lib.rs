//! Dense linear algebra and Latent Semantic Indexing for SmartStore.
//!
//! SmartStore (SC '09) measures the semantic correlation of file metadata
//! by projecting high-dimensional attribute vectors into a low-rank
//! "semantic subspace" computed with the Singular Value Decomposition,
//! following classical Latent Semantic Indexing (Deerwester et al. 1990).
//!
//! This crate implements the whole numeric substrate from scratch:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the small set of
//!   operations the paper's pipeline needs (products, transpose, norms).
//! * [`svd`] — a one-sided Jacobi SVD ([`svd::jacobi_svd`]) plus the
//!   truncated rank-*p* form used by LSI ([`svd::TruncatedSvd`]).
//! * [`lsi`] — the LSI model: build the attribute×item matrix, factor it,
//!   fold queries into the semantic subspace, and score similarities.
//! * [`mod@kmeans`] — Lloyd's algorithm with k-means++ seeding; the paper
//!   discusses K-means as the alternative grouping tool (§3.1.1), and the
//!   benchmark harness uses it for the grouping ablation.
//! * [`power`] — randomized subspace iteration for the leading singular
//!   triplets, the O(mnp) path for Exabyte-scale reindexing.
//!
//! Everything is deterministic given a caller-supplied RNG, which the
//! repository relies on for reproducible experiments.

pub mod kmeans;
pub mod lsi;
pub mod matrix;
pub mod power;
pub mod svd;

pub use kmeans::{kmeans, KMeansResult};
pub use lsi::{CorrelationMatrix, Lsi, LsiConfig};
pub use matrix::Matrix;
pub use power::{subspace_svd, SubspaceOptions};
pub use svd::{jacobi_svd, Svd, TruncatedSvd};

/// Numeric tolerance used across the crate when comparing floating-point
/// results (e.g. deciding that a Jacobi sweep has converged).
pub const EPS: f64 = 1e-12;

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector has zero norm, which is the right
/// neutral value for correlation scores ("no evidence of correlation").
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: dimension mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= EPS || nb <= EPS {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Squared Euclidean distance between two equal-length vectors.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean: dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let v = [1.0, -2.0, 0.5];
        let w = [-1.0, 2.0, -0.5];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&[1.0, 1.0], &[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_dimensions_panic() {
        cosine_similarity(&[1.0], &[1.0, 2.0]);
    }
}
