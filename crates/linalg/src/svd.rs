//! Singular Value Decomposition via one-sided Jacobi rotations.
//!
//! The one-sided Jacobi method orthogonalizes the columns of `A` by
//! repeatedly applying plane rotations on the right: after convergence,
//! `A·V` has orthogonal columns whose norms are the singular values, so
//! `A = U Σ Vᵀ` with `U` the normalized rotated columns. The method is
//! slower than Golub–Kahan bidiagonalization but is simple, numerically
//! robust, and has no external dependencies — appropriate for the small
//! attribute×item matrices LSI factors (D ≤ ~16 attributes against up to
//! a few thousand items per grouping round).

use crate::matrix::Matrix;

/// Full SVD `A = U Σ Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × r` (columns are orthonormal).
    pub u: Matrix,
    /// Singular values, descending, length `r = min(m, n)`.
    pub sigma: Vec<f64>,
    /// Right singular vectors transposed, `r × n` (rows are orthonormal).
    pub vt: Matrix,
}

impl Svd {
    /// Reconstructs `U Σ Vᵀ` (useful for testing accuracy).
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for r in 0..us.rows() {
            for (c, &s) in self.sigma.iter().enumerate() {
                us[(r, c)] *= s;
            }
        }
        us.matmul(&self.vt)
    }

    /// Truncates to the `p` largest singular values.
    pub fn truncate(&self, p: usize) -> TruncatedSvd {
        let p = p.min(self.sigma.len()).max(1);
        let mut u = Matrix::zeros(self.u.rows(), p);
        for r in 0..self.u.rows() {
            for c in 0..p {
                u[(r, c)] = self.u[(r, c)];
            }
        }
        let mut vt = Matrix::zeros(p, self.vt.cols());
        for r in 0..p {
            for c in 0..self.vt.cols() {
                vt[(r, c)] = self.vt[(r, c)];
            }
        }
        TruncatedSvd {
            u,
            sigma: self.sigma[..p].to_vec(),
            vt,
        }
    }

    /// Numerical rank: number of singular values above
    /// `tol * sigma_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * smax).count()
    }
}

/// Rank-`p` truncated SVD `A ≈ U_p Σ_p Vᵀ_p` — the LSI form
/// (the paper writes `A_p = U_p Σ_p Vᵀ_p`, §3.1.1).
#[derive(Clone, Debug)]
pub struct TruncatedSvd {
    /// `m × p` left factor.
    pub u: Matrix,
    /// `p` retained singular values, descending.
    pub sigma: Vec<f64>,
    /// `p × n` right factor.
    pub vt: Matrix,
}

impl TruncatedSvd {
    /// Retained rank `p`.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs the rank-`p` approximation `U_p Σ_p Vᵀ_p`.
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for r in 0..us.rows() {
            for (c, &s) in self.sigma.iter().enumerate() {
                us[(r, c)] *= s;
            }
        }
        us.matmul(&self.vt)
    }

    /// Folds a query vector `q ∈ R^m` into the semantic subspace:
    /// `q̂ = Σ_p⁻¹ U_pᵀ q` (the scaled projection the paper uses).
    ///
    /// Singular values below `1e-12` contribute zero rather than
    /// exploding the projection.
    pub fn fold_query(&self, q: &[f64]) -> Vec<f64> {
        assert_eq!(q.len(), self.u.rows(), "fold_query: dimension mismatch");
        let p = self.rank();
        let mut out = vec![0.0; p];
        for (c, o) in out.iter_mut().enumerate() {
            let mut dot = 0.0;
            for (r, &qv) in q.iter().enumerate() {
                dot += self.u[(r, c)] * qv;
            }
            let s = self.sigma[c];
            *o = if s > 1e-12 { dot / s } else { 0.0 };
        }
        out
    }

    /// Semantic-space coordinates of item (column) `j`: the `j`-th column
    /// of `Vᵀ` scaled by nothing — `V` rows are already the item
    /// coordinates produced by the factorization.
    pub fn item_coords(&self, j: usize) -> Vec<f64> {
        assert!(j < self.vt.cols(), "item_coords: column out of range");
        (0..self.rank()).map(|r| self.vt[(r, j)]).collect()
    }
}

/// Computes the full SVD of `a` with one-sided Jacobi rotations.
///
/// Works for any shape; internally operates on the transpose when
/// `rows < cols` so the rotated matrix is tall. Singular values are
/// returned in descending order with matching column/row permutations of
/// `U`/`Vᵀ`.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            sigma: vec![],
            vt: Matrix::zeros(0, n),
        };
    }
    if m < n {
        // SVD(Aᵀ) = V Σ Uᵀ, so swap factors back.
        let svd_t = jacobi_svd(&a.transpose());
        return Svd {
            u: svd_t.vt.transpose(),
            sigma: svd_t.sigma,
            vt: svd_t.u.transpose(),
        };
    }

    // Work on a copy: columns of `work` converge to U·Σ.
    let mut work = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 60;
    // Convergence threshold relative to the matrix magnitude.
    let off_tol = 1e-14 * a.frobenius_norm().max(1.0);

    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let mut alpha = 0.0; // ‖a_p‖²
                let mut beta = 0.0; // ‖a_q‖²
                let mut gamma = 0.0; // a_p·a_q
                for r in 0..m {
                    let ap = work[(r, p)];
                    let aq = work[(r, q)];
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if gamma.abs() <= off_tol * (alpha.sqrt() * beta.sqrt()).max(1e-300) {
                    continue;
                }
                rotated = true;
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let ap = work[(r, p)];
                    let aq = work[(r, q)];
                    work[(r, p)] = c * ap - s * aq;
                    work[(r, q)] = s * ap + c * aq;
                }
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = c * vp - s * vq;
                    v[(r, q)] = s * vp + c * vq;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| {
            (0..m)
                .map(|r| work[(r, c)] * work[(r, c)])
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let r = n.min(m);
    let mut u = Matrix::zeros(m, r);
    let mut sigma = Vec::with_capacity(r);
    let mut vt = Matrix::zeros(r, n);
    for (k, &c) in order.iter().take(r).enumerate() {
        let s = norms[c];
        sigma.push(s);
        if s > 1e-300 {
            for row in 0..m {
                u[(row, k)] = work[(row, c)] / s;
            }
        }
        for row in 0..n {
            vt[(k, row)] = v[(row, c)];
        }
    }
    Svd { u, sigma, vt }
}

/// Convenience: truncated SVD of `a` keeping the `p` largest singular
/// values.
pub fn truncated_svd(a: &Matrix, p: usize) -> TruncatedSvd {
    jacobi_svd(a).truncate(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = jacobi_svd(&a);
        assert_close(svd.sigma[0], 3.0, 1e-10);
        assert_close(svd.sigma[1], 2.0, 1e-10);
        assert_close(svd.sigma[2], 1.0, 1e-10);
    }

    #[test]
    fn svd_reconstructs_random_matrix() {
        // Deterministic pseudo-random fill.
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let a = Matrix::from_vec(7, 4, (0..28).map(|_| next()).collect());
        let svd = jacobi_svd(&a);
        let err = a.sub(&svd.reconstruct()).frobenius_norm();
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn svd_wide_matrix_via_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 2.0], vec![0.0, 3.0, 0.0, 0.0]]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.sigma.len(), 2);
        assert_close(svd.sigma[0], 3.0, 1e-10);
        assert_close(svd.sigma[1], (5.0_f64).sqrt(), 1e-10);
        let err = a.sub(&svd.reconstruct()).frobenius_norm();
        assert!(err < 1e-9);
    }

    #[test]
    fn u_columns_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 2.0],
            vec![0.5, 0.5, 0.5],
        ]);
        let svd = jacobi_svd(&a);
        let utu = svd.u.transpose().matmul(&svd.u);
        for i in 0..utu.rows() {
            for j in 0..utu.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(utu[(i, j)], expect, 1e-9);
            }
        }
    }

    #[test]
    fn truncation_error_bounded_by_dropped_singular_values() {
        let a = Matrix::from_rows(&[
            vec![10.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 0.1],
        ]);
        let t = truncated_svd(&a, 2);
        let err = a.sub(&t.reconstruct()).frobenius_norm();
        // Frobenius error of best rank-2 approx == sqrt of sum of dropped σ².
        assert_close(err, 0.1, 1e-9);
    }

    #[test]
    fn fold_query_recovers_item_coordinates() {
        // For a column a_j of A, Σ⁻¹Uᵀa_j = (row j of V) exactly.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let t = truncated_svd(&a, 2);
        let q = a.col(0);
        let folded = t.fold_query(&q);
        let item = t.item_coords(0);
        for (f, i) in folded.iter().zip(item.iter()) {
            assert_close(*f, *i, 1e-9);
        }
    }

    #[test]
    fn zero_matrix_has_zero_singular_values() {
        let a = Matrix::zeros(3, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-9), 0);
    }

    #[test]
    fn rank_detects_deficiency() {
        // Second column = 2 × first column ⇒ rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(1e-9), 1);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let a = Matrix::zeros(0, 0);
        let svd = jacobi_svd(&a);
        assert!(svd.sigma.is_empty());
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        // Symmetric: eigenvalues 3 and 1 ⇒ singular values 3 and 1.
        let svd = jacobi_svd(&a);
        assert_close(svd.sigma[0], 3.0, 1e-10);
        assert_close(svd.sigma[1], 1.0, 1e-10);
    }
}
