//! Latent Semantic Indexing over file-metadata attribute vectors.
//!
//! SmartStore represents each item (a file, a storage unit, or a semantic
//! group) as a D-dimensional attribute vector and measures *semantic
//! correlation* between items as similarity in a rank-p subspace of the
//! attribute×item matrix (§3.1.1 of the paper). This module packages that
//! pipeline:
//!
//! 1. assemble the `D × n` attribute×item matrix `A` (one column per
//!    item),
//! 2. optionally standardize each attribute row (mean 0, variance 1) so
//!    that attributes with large magnitudes (bytes) do not drown out
//!    small ones (timestamps in days),
//! 3. compute the truncated SVD `A ≈ U_p Σ_p Vᵀ_p`,
//! 4. score correlation of items i, j as the cosine of their semantic
//!    coordinates (columns i, j of `Vᵀ_p` scaled by `Σ_p`), and fold ad
//!    hoc query vectors via `q̂ = Σ_p⁻¹ U_pᵀ q`.

use crate::cosine_similarity;
use crate::matrix::Matrix;
use crate::svd::{truncated_svd, TruncatedSvd};
use rayon::prelude::*;

/// Configuration for an LSI factorization.
#[derive(Clone, Copy, Debug)]
pub struct LsiConfig {
    /// Retained rank `p`. The paper keeps the `p` largest singular
    /// values; typical values here are 2–4 for D ≤ 8 attributes.
    pub rank: usize,
    /// Standardize each attribute row to zero mean / unit variance
    /// before factorizing. Strongly recommended for heterogeneous
    /// attributes.
    pub standardize: bool,
}

impl Default for LsiConfig {
    fn default() -> Self {
        Self {
            rank: 3,
            standardize: true,
        }
    }
}

/// Per-attribute standardization parameters remembered so queries can be
/// transformed identically to the corpus.
#[derive(Clone, Debug)]
struct RowScaler {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl RowScaler {
    fn fit(a: &Matrix) -> Self {
        let (d, n) = a.shape();
        let mut mean = vec![0.0; d];
        let mut inv_std = vec![1.0; d];
        if n == 0 {
            return Self { mean, inv_std };
        }
        for r in 0..d {
            let row = a.row(r);
            let m = row.iter().sum::<f64>() / n as f64;
            let var = row.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / n as f64;
            mean[r] = m;
            inv_std[r] = if var > 1e-24 { 1.0 / var.sqrt() } else { 0.0 };
        }
        Self { mean, inv_std }
    }

    /// Standardizes a whole matrix. Copies once, then scales each row
    /// in place through flat row slices (no per-element index
    /// arithmetic, no temporaries), rows in parallel — each row's
    /// arithmetic is independent, so the result is bit-identical to
    /// the sequential sweep.
    fn apply_matrix(&self, a: &Matrix) -> Matrix {
        let mut out = a.clone();
        let (d, n) = out.shape();
        if d == 0 || n == 0 {
            return out;
        }
        let (mean, inv_std) = (&self.mean, &self.inv_std);
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(r, row)| {
                let (m, s) = (mean[r], inv_std[r]);
                for x in row {
                    *x = (*x - m) * s;
                }
            });
        out
    }

    fn apply_vec(&self, q: &[f64]) -> Vec<f64> {
        q.iter()
            .zip(self.mean.iter().zip(self.inv_std.iter()))
            .map(|(&x, (&m, &s))| (x - m) * s)
            .collect()
    }
}

/// A fitted LSI model over `n` items with `D` attributes.
#[derive(Clone, Debug)]
pub struct Lsi {
    config: LsiConfig,
    scaler: Option<RowScaler>,
    svd: TruncatedSvd,
    /// Semantic coordinates of all items, flattened `n × p` row-major:
    /// row `j` equals column `j` of `Σ_p Vᵀ_p` (so inner products
    /// approximate `AᵀA` entries). One allocation for the whole
    /// corpus instead of one `Vec` per item — the coordinate table is
    /// read in the O(n²) similarity hot loop.
    coords: Vec<f64>,
    /// Items fitted (`coords.len() == n_items * rank`).
    n_items: usize,
}

impl Lsi {
    /// Fits an LSI model to an attribute×item matrix (`D` rows, `n`
    /// columns — one column per item).
    pub fn fit(attr_by_item: &Matrix, config: LsiConfig) -> Self {
        let scaler = config.standardize.then(|| RowScaler::fit(attr_by_item));
        let scaled = match &scaler {
            Some(s) => s.apply_matrix(attr_by_item),
            None => attr_by_item.clone(),
        };
        let rank = config.rank.min(scaled.rows().min(scaled.cols()).max(1));
        let svd = truncated_svd(&scaled, rank);
        let n = attr_by_item.cols();
        let p = svd.rank();
        let mut coords = vec![0.0; n * p];
        for (j, row) in coords.chunks_exact_mut(p.max(1)).enumerate() {
            for (r, c) in row.iter_mut().enumerate() {
                *c = svd.sigma[r] * svd.vt[(r, j)];
            }
        }
        Self {
            config,
            scaler,
            svd,
            coords,
            n_items: n,
        }
    }

    /// Convenience: fit from a slice of item vectors (each of length D).
    pub fn fit_items(items: &[Vec<f64>], config: LsiConfig) -> Self {
        let d = items.first().map_or(0, |v| v.len());
        let mut a = Matrix::zeros(d, items.len());
        for (j, item) in items.iter().enumerate() {
            assert_eq!(item.len(), d, "fit_items: ragged item vectors");
            for (r, &x) in item.iter().enumerate() {
                a[(r, j)] = x;
            }
        }
        Self::fit(&a, config)
    }

    /// Fits from a flat row-major item table (`n × d`, one row per
    /// item) — the SoA shape columnar callers hold, so no per-item
    /// `Vec` is ever materialized. Numerically identical to
    /// [`Self::fit_items`] over the same values.
    pub fn fit_flat(table: &[f64], d: usize, config: LsiConfig) -> Self {
        assert!(d > 0, "fit_flat: need at least one dimension");
        assert_eq!(
            table.len() % d,
            0,
            "fit_flat: table length {} is not a multiple of d = {d}",
            table.len()
        );
        let n = table.len() / d;
        let mut a = Matrix::zeros(d, n);
        for (j, item) in table.chunks_exact(d).enumerate() {
            for (r, &x) in item.iter().enumerate() {
                a[(r, j)] = x;
            }
        }
        Self::fit(&a, config)
    }

    /// Number of items the model was fitted on.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Retained rank.
    pub fn rank(&self) -> usize {
        self.svd.rank()
    }

    /// The configuration used to fit this model.
    pub fn config(&self) -> LsiConfig {
        self.config
    }

    /// Semantic coordinates of item `j` (a slice into the flat
    /// coordinate table, length [`Self::rank`]).
    pub fn item_coords(&self, j: usize) -> &[f64] {
        let p = self.svd.rank();
        &self.coords[j * p..(j + 1) * p]
    }

    /// Correlation (cosine in semantic space) between items `i` and `j`,
    /// in `[-1, 1]`.
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        cosine_similarity(self.item_coords(i), self.item_coords(j))
    }

    /// Folds an ad-hoc D-dimensional query into the semantic subspace,
    /// applying the same standardization as the corpus.
    pub fn fold_query(&self, q: &[f64]) -> Vec<f64> {
        let scaled = match &self.scaler {
            Some(s) => s.apply_vec(q),
            None => q.to_vec(),
        };
        self.svd.fold_query(&scaled)
    }

    /// Correlation between an ad-hoc query vector and item `j`.
    pub fn query_similarity(&self, q: &[f64], j: usize) -> f64 {
        cosine_similarity(&self.fold_query(q), self.item_coords(j))
    }

    /// Index of the item most similar to the query, or `None` for an
    /// empty model.
    pub fn most_similar_item(&self, q: &[f64]) -> Option<usize> {
        let folded = self.fold_query(q);
        (0..self.n_items())
            .map(|j| (j, cosine_similarity(&folded, self.item_coords(j))))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(j, _)| j)
    }

    /// Full pairwise correlation matrix, computed in parallel.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        let n = self.n_items();
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| (0..n).map(|j| self.similarity(i, j)).collect())
            .collect();
        CorrelationMatrix { n, rows }
    }
}

/// Symmetric pairwise item-correlation matrix produced by
/// [`Lsi::correlation_matrix`].
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    n: usize,
    rows: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Correlation between items `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// For item `i`, the other item with the highest correlation (ties
    /// broken by lower index), or `None` if there is no other item.
    pub fn best_partner(&self, i: usize) -> Option<(usize, f64)> {
        (0..self.n)
            .filter(|&j| j != i)
            .map(|j| (j, self.rows[i][j]))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters of item vectors.
    fn clustered_items() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 1.0, 0.1, 0.0],
            vec![1.1, 0.9, 0.0, 0.1],
            vec![0.9, 1.05, 0.05, 0.0],
            vec![0.0, 0.1, 1.0, 1.0],
            vec![0.1, 0.0, 0.9, 1.1],
            vec![0.0, 0.05, 1.1, 0.95],
        ]
    }

    #[test]
    fn intra_cluster_similarity_exceeds_inter_cluster() {
        let lsi = Lsi::fit_items(
            &clustered_items(),
            LsiConfig {
                rank: 2,
                standardize: true,
            },
        );
        let intra = lsi.similarity(0, 1);
        let inter = lsi.similarity(0, 3);
        assert!(intra > inter, "intra {intra} should exceed inter {inter}");
        assert!(intra > 0.9);
    }

    #[test]
    fn self_similarity_is_one() {
        let lsi = Lsi::fit_items(&clustered_items(), LsiConfig::default());
        for i in 0..lsi.n_items() {
            assert!((lsi.similarity(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn query_routes_to_matching_cluster() {
        let lsi = Lsi::fit_items(
            &clustered_items(),
            LsiConfig {
                rank: 2,
                standardize: true,
            },
        );
        let q = vec![1.0, 1.0, 0.0, 0.0]; // looks like cluster A (items 0-2)
        let best = lsi.most_similar_item(&q).unwrap();
        assert!(best < 3, "query should route to cluster A, got item {best}");
        let q2 = vec![0.0, 0.0, 1.0, 1.0];
        let best2 = lsi.most_similar_item(&q2).unwrap();
        assert!(
            best2 >= 3,
            "query should route to cluster B, got item {best2}"
        );
    }

    #[test]
    fn correlation_matrix_is_symmetric() {
        let lsi = Lsi::fit_items(&clustered_items(), LsiConfig::default());
        let c = lsi.correlation_matrix();
        for i in 0..c.len() {
            for j in 0..c.len() {
                assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn best_partner_prefers_same_cluster() {
        let lsi = Lsi::fit_items(
            &clustered_items(),
            LsiConfig {
                rank: 2,
                standardize: true,
            },
        );
        let c = lsi.correlation_matrix();
        let (p, v) = c.best_partner(0).unwrap();
        assert!(p < 3, "partner of item 0 should be in cluster A");
        assert!(v > 0.9);
    }

    #[test]
    fn best_partner_none_for_single_item() {
        let lsi = Lsi::fit_items(&[vec![1.0, 2.0]], LsiConfig::default());
        let c = lsi.correlation_matrix();
        assert!(c.best_partner(0).is_none());
    }

    #[test]
    fn rank_is_capped_by_dimensions() {
        let lsi = Lsi::fit_items(
            &clustered_items(),
            LsiConfig {
                rank: 99,
                standardize: false,
            },
        );
        assert!(lsi.rank() <= 4);
    }

    #[test]
    fn standardization_prevents_scale_domination() {
        // Attribute 0 is huge but identical ⇒ after standardization it
        // carries no signal, and items split on attribute 1.
        let items = vec![
            vec![1e12, 1.0],
            vec![1e12, 1.1],
            vec![1e12, -1.0],
            vec![1e12, -1.1],
        ];
        let lsi = Lsi::fit_items(
            &items,
            LsiConfig {
                rank: 2,
                standardize: true,
            },
        );
        assert!(lsi.similarity(0, 1) > lsi.similarity(0, 2));
    }

    #[test]
    fn fold_query_length_matches_rank() {
        let lsi = Lsi::fit_items(
            &clustered_items(),
            LsiConfig {
                rank: 2,
                standardize: true,
            },
        );
        assert_eq!(lsi.fold_query(&[0.5, 0.5, 0.5, 0.5]).len(), lsi.rank());
    }
}
