//! Randomized subspace iteration for truncated SVD at scale.
//!
//! The one-sided Jacobi SVD ([`crate::svd::jacobi_svd`]) is exact but
//! O(mn²) per sweep — fine for the D×n matrices of a single grouping
//! round, expensive for Exabyte-scale reindexing where n is millions.
//! Subspace (block power) iteration with a random start (Halko, Martinsson
//! & Tropp 2011) computes just the leading `p` singular triplets in
//! O(mnp) per iteration, which is all LSI needs.
//!
//! The implementation is deterministic given the caller's RNG and
//! validated against the Jacobi SVD in tests.

use crate::matrix::Matrix;
use crate::svd::TruncatedSvd;
use rand::Rng;

/// Options for [`subspace_svd`].
#[derive(Clone, Copy, Debug)]
pub struct SubspaceOptions {
    /// Power iterations; 4–8 suffices for LSI-grade accuracy.
    pub iterations: usize,
    /// Oversampling columns beyond the target rank (improves accuracy
    /// when the spectrum decays slowly).
    pub oversample: usize,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        Self {
            iterations: 8,
            oversample: 4,
        }
    }
}

/// Computes a rank-`p` truncated SVD of `a` by randomized subspace
/// iteration.
///
/// Accuracy: for matrices with any spectral decay the leading singular
/// values converge geometrically in the iteration count; the tests below
/// require agreement with the exact Jacobi SVD to within 0.1% on the
/// retained singular values.
pub fn subspace_svd<R: Rng>(
    a: &Matrix,
    p: usize,
    opts: SubspaceOptions,
    rng: &mut R,
) -> TruncatedSvd {
    let (m, n) = a.shape();
    assert!(m > 0 && n > 0, "subspace_svd: empty matrix");
    let p = p.min(m.min(n)).max(1);
    let k = (p + opts.oversample).min(n);

    // Random start block Ω ∈ R^{n×k}, then Y = A Ω.
    let mut omega = Matrix::zeros(n, k);
    for r in 0..n {
        for c in 0..k {
            omega[(r, c)] = rng.gen::<f64>() * 2.0 - 1.0;
        }
    }
    let mut y = a.matmul(&omega);

    let at = a.transpose();
    for _ in 0..opts.iterations {
        orthonormalize(&mut y);
        // Y ← A (Aᵀ Y): one power step through the Gram operator.
        let z = at.matmul(&y);
        y = a.matmul(&z);
    }
    orthonormalize(&mut y);

    // Project: B = Qᵀ A  (k × n), then small exact SVD of B.
    let b = y.transpose().matmul(a);
    let small = crate::svd::jacobi_svd(&b);
    // U = Q · U_b, truncated to p.
    let u_b = small.u;
    let mut u = Matrix::zeros(m, p);
    for r in 0..m {
        for c in 0..p {
            let mut acc = 0.0;
            for t in 0..y.cols() {
                acc += y[(r, t)] * u_b[(t, c)];
            }
            u[(r, c)] = acc;
        }
    }
    let sigma: Vec<f64> = small.sigma.iter().take(p).copied().collect();
    let mut vt = Matrix::zeros(p, n);
    for r in 0..p {
        for c in 0..n {
            vt[(r, c)] = small.vt[(r, c)];
        }
    }
    TruncatedSvd { u, sigma, vt }
}

/// In-place modified Gram–Schmidt on the columns of `y`; zero-norm
/// columns are replaced with canonical basis vectors to keep the block
/// full-rank.
fn orthonormalize(y: &mut Matrix) {
    let (m, k) = y.shape();
    for c in 0..k {
        // Subtract projections onto previous columns.
        for prev in 0..c {
            let mut dot = 0.0;
            for r in 0..m {
                dot += y[(r, c)] * y[(r, prev)];
            }
            for r in 0..m {
                let v = y[(r, prev)];
                y[(r, c)] -= dot * v;
            }
        }
        let norm: f64 = (0..m).map(|r| y[(r, c)] * y[(r, c)]).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for r in 0..m {
                y[(r, c)] /= norm;
            }
        } else {
            // Degenerate column (the block over-spans a low-rank range):
            // substitute successive canonical vectors, re-orthogonalized
            // against all previous columns, until one survives.
            let mut seeded = false;
            for basis in 0..m {
                for r in 0..m {
                    y[(r, c)] = if r == basis { 1.0 } else { 0.0 };
                }
                for prev in 0..c {
                    let mut dot = 0.0;
                    for r in 0..m {
                        dot += y[(r, c)] * y[(r, prev)];
                    }
                    for r in 0..m {
                        let v = y[(r, prev)];
                        y[(r, c)] -= dot * v;
                    }
                }
                let n2: f64 = (0..m).map(|r| y[(r, c)] * y[(r, c)]).sum::<f64>().sqrt();
                if n2 > 1e-9 {
                    for r in 0..m {
                        y[(r, c)] /= n2;
                    }
                    seeded = true;
                    break;
                }
            }
            if !seeded {
                // k > m cannot happen (k is clamped), so some basis
                // vector always survives; zero the column defensively.
                for r in 0..m {
                    y[(r, c)] = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::jacobi_svd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_vec(m, n, (0..m * n).map(|_| next()).collect())
    }

    #[test]
    fn matches_jacobi_on_leading_singular_values() {
        let a = random_matrix(8, 120, 5);
        let exact = jacobi_svd(&a);
        let mut rng = StdRng::seed_from_u64(1);
        let approx = subspace_svd(&a, 3, SubspaceOptions::default(), &mut rng);
        for i in 0..3 {
            let rel = (approx.sigma[i] - exact.sigma[i]).abs() / exact.sigma[i].max(1e-12);
            assert!(
                rel < 1e-3,
                "σ{i}: subspace {} vs exact {} (rel {rel})",
                approx.sigma[i],
                exact.sigma[i]
            );
        }
    }

    #[test]
    fn low_rank_matrix_recovered_exactly() {
        // Rank-2 matrix: outer products of two fixed vectors.
        let m = 6;
        let n = 40;
        let mut a = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let u1 = (r as f64 + 1.0).sin();
                let v1 = (c as f64 * 0.3).cos();
                let u2 = (r as f64 * 0.7).cos();
                let v2 = (c as f64 * 0.11).sin();
                a[(r, c)] = 5.0 * u1 * v1 + 2.0 * u2 * v2;
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let approx = subspace_svd(&a, 2, SubspaceOptions::default(), &mut rng);
        let err = a.sub(&approx.reconstruct()).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-6, "rank-2 matrix must be recovered, rel err {err}");
    }

    #[test]
    fn reconstruction_no_worse_than_jacobi_tail() {
        let a = random_matrix(8, 200, 9);
        let exact = jacobi_svd(&a);
        let p = 4;
        let tail: f64 = exact
            .sigma
            .iter()
            .skip(p)
            .map(|s| s * s)
            .sum::<f64>()
            .sqrt();
        let mut rng = StdRng::seed_from_u64(3);
        let approx = subspace_svd(&a, p, SubspaceOptions::default(), &mut rng);
        let err = a.sub(&approx.reconstruct()).frobenius_norm();
        assert!(
            err < tail * 1.05,
            "randomized error {err} must approach optimal {tail}"
        );
    }

    #[test]
    fn deterministic_given_rng() {
        let a = random_matrix(6, 50, 11);
        let r1 = subspace_svd(
            &a,
            3,
            SubspaceOptions::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let r2 = subspace_svd(
            &a,
            3,
            SubspaceOptions::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(r1.sigma, r2.sigma);
    }

    #[test]
    fn rank_clamped_to_matrix() {
        let a = random_matrix(3, 5, 13);
        let mut rng = StdRng::seed_from_u64(8);
        let t = subspace_svd(&a, 99, SubspaceOptions::default(), &mut rng);
        assert!(t.rank() <= 3);
    }
}
