//! The client-side socket transport.
//!
//! [`SocketTransport`] implements the service crate's
//! [`Transport`] trait over a real TCP or Unix-domain-socket
//! connection, carrying *bit-identical* wire bytes to the in-process
//! transport: the request leg is exactly the framed batch
//! `encode_request_batch` produced, and the response leg is the raw
//! concatenation of the server's response frames, handed unmodified to
//! `decode_response_batch`. Connection failures surface as retryable
//! [`TransportError`]s (so `Client::call_with_retry` reconnects and
//! backs off); torn or corrupt response frames surface as non-retryable
//! wire errors.

use crate::frame::{write_all_retry, FrameEvent, FrameReadError, FrameReader};
use smartstore_service::codec::WireError;
use smartstore_service::{Transport, TransportError, TransportResult};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a metadata service listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetAddr {
    /// TCP, e.g. `127.0.0.1:4915`.
    Tcp(std::net::SocketAddr),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(a) => write!(f, "tcp://{a}"),
            NetAddr::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// One duplex socket, TCP or UDS.
#[derive(Debug)]
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    pub(crate) fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
        }
    }

    pub(crate) fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

pub(crate) fn dial(addr: &NetAddr) -> std::io::Result<Conn> {
    Ok(match addr {
        NetAddr::Tcp(a) => {
            let s = TcpStream::connect(a)?;
            let _ = s.set_nodelay(true);
            Conn::Tcp(s)
        }
        NetAddr::Uds(p) => Conn::Unix(UnixStream::connect(p)?),
    })
}

/// A [`Transport`] over one socket connection. Created disconnected or
/// connected; `Client::call_with_retry` drives [`Transport::reconnect`]
/// after retryable failures.
pub struct SocketTransport {
    addr: NetAddr,
    conn: Option<(Conn, FrameReader<Conn>)>,
}

impl SocketTransport {
    /// Connects to `addr` now, failing fast if the server is not there.
    pub fn connect(addr: NetAddr) -> TransportResult<Self> {
        let mut t = Self::lazy(addr);
        t.reconnect()?;
        Ok(t)
    }

    /// A transport that dials on first use (or first `reconnect`).
    pub fn lazy(addr: NetAddr) -> Self {
        Self { addr, conn: None }
    }

    /// The peer address.
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// True while a connection is established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn ensure_connected(&mut self) -> TransportResult<()> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io {
        reason: e.to_string(),
    }
}

impl Transport for SocketTransport {
    /// Writes the framed request batch, then reads exactly `expected`
    /// response frames, returning their raw bytes for the client's
    /// decode path — the same bytes the in-process transport yields.
    fn exchange(&mut self, request_wire: &[u8], expected: usize) -> TransportResult<Vec<u8>> {
        self.ensure_connected()?;
        let Some((writer, reader)) = self.conn.as_mut() else {
            return Err(TransportError::Protocol(
                "socket transport lost its connection after connect".to_string(),
            ));
        };
        if let Err(e) = write_all_retry(writer, request_wire) {
            self.conn = None;
            return Err(io_err(e));
        }
        let mut out = Vec::new();
        for _ in 0..expected {
            loop {
                match reader.poll() {
                    Ok(FrameEvent::Frame(raw)) => {
                        out.extend_from_slice(&raw);
                        break;
                    }
                    Ok(FrameEvent::Pause) => continue,
                    Ok(FrameEvent::Eof) => {
                        self.conn = None;
                        return Err(TransportError::Closed);
                    }
                    Err(FrameReadError::Decode(e)) => {
                        // The stream's framing is lost; drop the
                        // connection, but surface the *wire* error — a
                        // retry would re-decode the same garbage.
                        self.conn = None;
                        return Err(TransportError::Wire(WireError::Frame {
                            offset: e.offset as usize,
                            reason: e.reason,
                        }));
                    }
                    Err(FrameReadError::Io(e)) => {
                        self.conn = None;
                        return Err(io_err(e));
                    }
                }
            }
        }
        Ok(out)
    }

    fn reconnect(&mut self) -> TransportResult<()> {
        self.conn = None;
        let writer = dial(&self.addr).map_err(io_err)?;
        let reader = FrameReader::new(writer.try_clone().map_err(io_err)?);
        self.conn = Some((writer, reader));
        Ok(())
    }

    fn is_remote(&self) -> bool {
        true
    }
}
