//! Open-loop load generation against a socket front end.
//!
//! Two halves, both deterministic where it matters:
//!
//! * [`generate_requests`] expands a [`MetadataPopulation`] into a
//!   mixed request stream — Zipf-skewed point lookups, attribute range
//!   scans, top-k probes, and mutations (insert/modify/delete) — as a
//!   pure function of its config: same seed, bit-identical stream,
//!   regardless of thread count.
//! * [`run_open_loop`] replays such a stream against a live server on a
//!   *fixed* arrival schedule ([`ArrivalSchedule`]): senders hold to the
//!   schedule no matter how the server is doing, so queueing delay
//!   lands in the measured latency instead of being coordinated away,
//!   and latency is measured from each request's *scheduled* arrival —
//!   the open-loop discipline. Shed requests ([`Response::Overloaded`])
//!   are counted, not retried: the shed rate is the result.
//!
//! Results aggregate into a [`LoadReport`] with log-bucketed latency
//! quantiles (p50/p99/p999), achieved throughput, and shed rate.

use crate::frame::{write_all_retry, FrameEvent, FrameReader, FRAME_HEADER_BYTES};
use crate::histogram::LatencyHistogram;
use crate::transport::{dial, NetAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartstore::query::QueryOptions;
use smartstore::versioning::Change;
use smartstore_persist::codec::Dec;
use smartstore_service::codec::{encode_request, get_response};
use smartstore_service::{Request, Response};
use smartstore_trace::distributions::Zipf;
use smartstore_trace::{ArrivalSchedule, AttributeKind, MetadataPopulation, ATTR_DIMS};
use std::time::{Duration, Instant};

/// Shape of a mixed request stream.
#[derive(Clone, Debug)]
pub struct LoadMixConfig {
    /// Requests to generate.
    pub n_requests: usize,
    /// Relative weight of point lookups.
    pub point_weight: u32,
    /// Relative weight of range scans.
    pub range_weight: u32,
    /// Relative weight of top-k probes.
    pub topk_weight: u32,
    /// Relative weight of mutations (insert/modify/delete).
    pub mutation_weight: u32,
    /// `k` for top-k probes.
    pub k: usize,
    /// Zipf exponent of file popularity (larger = more skew).
    pub zipf_s: f64,
    /// Range half-width as a fraction of each constrained dimension's
    /// domain.
    pub range_width: f64,
    /// Fraction of point lookups that miss (query a nonexistent name).
    pub point_miss_fraction: f64,
    /// RNG seed; the stream is a pure function of this config and the
    /// population.
    pub seed: u64,
}

impl Default for LoadMixConfig {
    fn default() -> Self {
        Self {
            n_requests: 1_000,
            point_weight: 45,
            range_weight: 15,
            topk_weight: 20,
            mutation_weight: 20,
            k: 8,
            zipf_s: 0.9,
            range_width: 0.05,
            point_miss_fraction: 0.05,
            seed: 0x10ad_9e4e,
        }
    }
}

/// Expands `pop` into a mixed, Zipf-skewed request stream.
/// Deterministic: same population and config, bit-identical stream.
pub fn generate_requests(pop: &MetadataPopulation, cfg: &LoadMixConfig) -> Vec<Request> {
    assert!(!pop.files.is_empty(), "generate_requests: empty population");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Popularity ranking: most-accessed files first, id as tiebreak, so
    // the Zipf head lands on genuinely hot files.
    let mut ranked: Vec<usize> = (0..pop.files.len()).collect();
    ranked.sort_by_key(|&i| {
        (
            std::cmp::Reverse(pop.files[i].access_count),
            pop.files[i].file_id,
        )
    });
    let zipf = Zipf::new(pop.files.len() as u64, cfg.zipf_s.max(0.01));
    let (lo_b, hi_b) = pop.attr_bounds();
    let constrained = [
        AttributeKind::ModificationTime,
        AttributeKind::ReadBytes,
        AttributeKind::WriteBytes,
    ];

    let total_w =
        (cfg.point_weight + cfg.range_weight + cfg.topk_weight + cfg.mutation_weight).max(1);
    let mut next_id = pop.files.iter().map(|f| f.file_id).max().unwrap_or(0) + 1;
    let mut inserted: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(cfg.n_requests);
    for i in 0..cfg.n_requests {
        let hot = &pop.files[ranked[(zipf.sample(&mut rng) as usize - 1) % ranked.len()]];
        let draw = rng.gen::<u64>() % total_w as u64;
        let req = if draw < cfg.point_weight as u64 {
            if rng.gen::<f64>() < cfg.point_miss_fraction {
                Request::Point {
                    name: format!("ghost_net_{i:08}"),
                }
            } else {
                Request::Point {
                    name: hot.name.clone(),
                }
            }
        } else if draw < (cfg.point_weight + cfg.range_weight) as u64 {
            let center = hot.attr_vector();
            let (lo, hi): (Vec<f64>, Vec<f64>) = (0..ATTR_DIMS)
                .map(|d| {
                    if constrained.iter().any(|k| k.index() == d) {
                        let half = (hi_b[d] - lo_b[d]) * cfg.range_width * 0.5;
                        (center[d] - half, center[d] + half)
                    } else {
                        (lo_b[d] - 1.0, hi_b[d] + 1.0)
                    }
                })
                .unzip();
            Request::Range {
                lo,
                hi,
                opts: QueryOptions::offline(),
            }
        } else if draw < (cfg.point_weight + cfg.range_weight + cfg.topk_weight) as u64 {
            Request::TopK {
                point: hot.attr_vector().to_vec(),
                opts: QueryOptions::offline().with_k(cfg.k),
            }
        } else {
            let m = rng.gen::<f64>();
            let change = if m < 0.25 && !inserted.is_empty() {
                let victim = inserted.remove(rng.gen::<u64>() as usize % inserted.len());
                Change::Delete(victim)
            } else if m < 0.60 {
                let mut f = hot.clone();
                f.mtime += 1.0;
                f.write_bytes += 4096;
                f.access_count += 1;
                Change::Modify(f)
            } else {
                let mut f = hot.clone();
                f.file_id = next_id;
                f.name = format!("net_ins_{next_id:08}");
                f.truth_cluster = None;
                inserted.push(next_id);
                next_id += 1;
                Change::Insert(f)
            };
            Request::ApplyChange { change }
        };
        out.push(req);
    }
    out
}

/// Outcome of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests put on the wire.
    pub sent: u64,
    /// Requests answered with a non-shed response.
    pub answered: u64,
    /// Requests shed with [`Response::Overloaded`].
    pub shed: u64,
    /// Requests lost to transport failures (connection died before the
    /// answer arrived).
    pub errors: u64,
    /// Wall-clock span from the schedule epoch to the last response.
    pub wall_s: f64,
    /// Scheduled-arrival→response latency of *admitted* (non-shed)
    /// requests.
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Answered requests per second of wall time.
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        (self.answered + self.shed) as f64 / self.wall_s
    }

    /// Fraction of answered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        let total = self.answered + self.shed;
        if total == 0 {
            return 0.0;
        }
        self.shed as f64 / total as f64
    }

    /// Latency quantile of admitted requests, in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1e6
    }
}

/// Replays `requests` against `addr` on the fixed `schedule`, spread
/// round-robin over `n_connections` connections (each with an
/// independent sender and receiver thread). Latency is measured from
/// each request's *scheduled* arrival time.
///
/// The request partition (`i % n_connections`) and per-connection order
/// are deterministic; only the measured timings vary run to run.
pub fn run_open_loop(
    addr: &NetAddr,
    requests: &[Request],
    schedule: &ArrivalSchedule,
    n_connections: usize,
) -> std::io::Result<LoadReport> {
    assert_eq!(
        requests.len(),
        schedule.len(),
        "one scheduled arrival per request"
    );
    let n_conns = n_connections.max(1);
    // Pre-encode every frame so encoding cost never delays a send.
    let wires: Vec<Vec<u8>> = requests.iter().map(encode_request).collect();
    // Epoch slightly in the future so the earliest arrivals are not
    // already late before the sender threads exist.
    let epoch = Instant::now() + Duration::from_millis(20);

    let mut per_conn: Vec<Vec<usize>> = vec![Vec::new(); n_conns];
    for i in 0..requests.len() {
        per_conn[i % n_conns].push(i);
    }

    let results: Vec<std::io::Result<ConnOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|assigned| {
                let wires = &wires;
                let offsets = &schedule.offsets_ns;
                s.spawn(move || drive_connection(addr, assigned, wires, offsets, epoch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });

    let mut report = LoadReport {
        sent: 0,
        answered: 0,
        shed: 0,
        errors: 0,
        wall_s: 0.0,
        latency: LatencyHistogram::new(),
    };
    for r in results {
        let o = r?;
        report.sent += o.sent;
        report.answered += o.answered;
        report.shed += o.shed;
        report.errors += o.errors;
        report.wall_s = report.wall_s.max(o.wall_s);
        report.latency.merge(&o.latency);
    }
    Ok(report)
}

struct ConnOutcome {
    sent: u64,
    answered: u64,
    shed: u64,
    errors: u64,
    wall_s: f64,
    latency: LatencyHistogram,
}

fn drive_connection(
    addr: &NetAddr,
    assigned: &[usize],
    wires: &[Vec<u8>],
    offsets_ns: &[u64],
    epoch: Instant,
) -> std::io::Result<ConnOutcome> {
    let mut writer = dial(addr)?;
    let reader_half = writer.try_clone()?;
    let sent = std::sync::atomic::AtomicU64::new(0);

    let (recv_out,) = std::thread::scope(|s| {
        let receiver = s.spawn(|| {
            let mut reader = FrameReader::new(reader_half);
            let mut answered = 0u64;
            let mut shed = 0u64;
            let mut errors = 0u64;
            let mut latency = LatencyHistogram::new();
            for &i in assigned {
                let raw = loop {
                    match reader.poll() {
                        Ok(FrameEvent::Frame(raw)) => break Some(raw),
                        Ok(FrameEvent::Pause) => continue,
                        Ok(FrameEvent::Eof) | Err(_) => break None,
                    }
                };
                let Some(raw) = raw else {
                    // The connection died; everything still unanswered
                    // on it is lost.
                    errors += assigned.len() as u64 - (answered + shed + errors);
                    break;
                };
                let scheduled = epoch + Duration::from_nanos(offsets_ns[i]);
                let lat_ns = Instant::now()
                    .saturating_duration_since(scheduled)
                    .as_nanos() as u64;
                let mut d = Dec::new(&raw[FRAME_HEADER_BYTES..]);
                match get_response(&mut d) {
                    Ok(Response::Overloaded(_)) => shed += 1,
                    Ok(_) => {
                        answered += 1;
                        latency.record(lat_ns);
                    }
                    Err(_) => errors += 1,
                }
            }
            (answered, shed, errors, latency)
        });

        // Sender: this thread holds to the schedule.
        for &i in assigned {
            let target = epoch + Duration::from_nanos(offsets_ns[i]);
            loop {
                let now = Instant::now();
                if now >= target {
                    break;
                }
                let left = target - now;
                if left > Duration::from_micros(500) {
                    std::thread::sleep(left - Duration::from_micros(200));
                } else {
                    std::hint::spin_loop();
                }
            }
            if write_all_retry(&mut writer, &wires[i]).is_err() {
                break;
            }
            sent.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Half-close: the server answers what it read, then EOFs us.
        let _ = writer.shutdown_write();
        (match receiver.join() {
            Ok(out) => out,
            Err(p) => std::panic::resume_unwind(p),
        },)
    });

    let (answered, shed, errors, latency) = recv_out;
    Ok(ConnOutcome {
        sent: sent.into_inner(),
        answered,
        shed,
        errors,
        wall_s: epoch.elapsed().as_secs_f64(),
        latency,
    })
}
