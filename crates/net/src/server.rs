//! The socket front end: TCP + Unix-domain-socket serving for a
//! [`MetadataServer`] with bounded-admission load shedding.
//!
//! Architecture: one accept thread polls the (nonblocking) listeners
//! and hands each accepted connection to a dedicated work-stealing pool
//! ([`rayon`]'s shim `ThreadPool`); a connection handler owns its
//! socket for the connection's lifetime. Requests arrive as CRC-framed
//! records (the exact bytes [`smartstore_service::codec`] produces for
//! the in-process path), each answered with one response frame in
//! arrival order, so a client can pipeline a whole batch and count
//! replies.
//!
//! **Admission control.** The server holds a *bounded in-flight budget*:
//! a global permit pool ([`NetServerConfig::max_inflight`]) plus a
//! per-connection cap ([`NetServerConfig::max_inflight_per_conn`]).
//! Permits are acquired when a request is drained off the socket and
//! released once its response bytes are written; a request that cannot
//! get a permit is answered immediately with a typed
//! [`Response::Overloaded`] instead of queueing unboundedly — the
//! client backs off with jitter and retries. Queueing delay therefore
//! lives in the kernel socket buffers and the bounded pipeline, never
//! in an unbounded in-process queue.
//!
//! **Graceful shutdown.** [`NetServerHandle::shutdown`] flips a stop
//! flag; connection handlers (whose reads time out on
//! [`NetServerConfig::poll_interval`]) finish answering every request
//! they have already drained — so every *acknowledged* mutation was
//! really applied — then close. The accept thread joins the pool,
//! per-shard WALs are flushed, and the inner [`MetadataServer`] is
//! handed back to the caller.

use crate::frame::{write_all_retry, FrameDecodeError, FrameEvent, FrameReadError, FrameReader};
use crate::transport::Conn;
use rayon::ThreadPoolBuilder;
use smartstore_service::codec::{decode_request, encode_response};
use smartstore_service::{MetadataServer, Request, Response};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Front-end shape and admission limits.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Listen on loopback TCP (an ephemeral port; see
    /// [`NetServerHandle::tcp_addr`]).
    pub tcp: bool,
    /// Also listen on this Unix-domain-socket path (unlinked on
    /// shutdown; a stale socket file is replaced).
    pub uds_path: Option<PathBuf>,
    /// Global in-flight permit budget: requests drained off sockets but
    /// not yet answered. Exhaustion sheds with [`Response::Overloaded`].
    pub max_inflight: usize,
    /// Per-connection share of the budget, so one pipelining client
    /// cannot monopolize it.
    pub max_inflight_per_conn: usize,
    /// Most frames drained (and admitted) per read round on one
    /// connection.
    pub max_pipeline: usize,
    /// Worker threads executing connection handlers. Values below 2 are
    /// raised to 2: the shim pool runs `spawn` inline when it has no
    /// workers, which would wedge the accept loop.
    pub conn_threads: usize,
    /// Socket read timeout / accept poll interval — the latency bound
    /// on noticing the stop flag.
    pub poll_interval: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            tcp: true,
            uds_path: None,
            max_inflight: 256,
            max_inflight_per_conn: 64,
            max_pipeline: 64,
            conn_threads: 4,
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Monotonic serving counters, snapshotted by [`NetServerHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted across both listeners.
    pub connections_accepted: u64,
    /// Connections fully closed.
    pub connections_closed: u64,
    /// Requests admitted past the permit gate and served.
    pub requests_admitted: u64,
    /// Requests shed with [`Response::Overloaded`].
    pub requests_shed: u64,
    /// Mutations among the admitted requests.
    pub mutations_applied: u64,
    /// Connections poisoned by a torn/corrupt frame.
    pub decode_poisoned: u64,
    /// Request bytes read off sockets (verified frames only).
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    requests_admitted: AtomicU64,
    requests_shed: AtomicU64,
    mutations_applied: AtomicU64,
    decode_poisoned: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            requests_admitted: self.requests_admitted.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            decode_poisoned: self.decode_poisoned.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    server: RwLock<MetadataServer>,
    stop: AtomicBool,
    /// Remaining global permits.
    permits: AtomicI64,
    stats: Counters,
    limits: NetServerConfig,
}

impl Shared {
    fn try_acquire(&self) -> bool {
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            if cur <= 0 {
                return false;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn release(&self, n: usize) {
        self.permits.fetch_add(n as i64, Ordering::AcqRel);
    }
}

/// The running front end. Dropping the handle without
/// [`NetServerHandle::shutdown`] aborts serving without flushing WALs.
pub struct NetServer;

/// Handle to a spawned [`NetServer`].
pub struct NetServerHandle {
    shared: Arc<Shared>,
    join: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl NetServer {
    /// Binds the configured listeners, starts the accept thread and its
    /// connection pool, and returns the handle. TCP binds
    /// `127.0.0.1:0`; the chosen port is in
    /// [`NetServerHandle::tcp_addr`].
    pub fn spawn(server: MetadataServer, cfg: NetServerConfig) -> std::io::Result<NetServerHandle> {
        let tcp = if cfg.tcp {
            let l = TcpListener::bind("127.0.0.1:0")?;
            l.set_nonblocking(true)?;
            Some(l)
        } else {
            None
        };
        let tcp_addr = match &tcp {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let uds = match &cfg.uds_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            server: RwLock::new(server),
            stop: AtomicBool::new(false),
            permits: AtomicI64::new(cfg.max_inflight.max(1) as i64),
            stats: Counters::default(),
            limits: cfg.clone(),
        });
        let sh = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || accept_loop(&sh, tcp, uds))?;
        Ok(NetServerHandle {
            shared,
            join: Some(join),
            tcp_addr,
            uds_path: cfg.uds_path,
        })
    }
}

impl NetServerHandle {
    /// The bound TCP address, when TCP is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-domain-socket path, when enabled.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, let every connection answer
    /// the requests it already drained, flush per-shard WALs, and hand
    /// the inner server back.
    pub fn shutdown(mut self) -> std::io::Result<(MetadataServer, NetServerStats)> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| std::io::Error::other("net accept thread panicked"))?;
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        let stats = self.shared.stats.snapshot();
        let shared = Arc::try_unwrap(self.shared)
            .map_err(|_| std::io::Error::other("net server state still referenced"))?;
        let mut server = shared
            .server
            .into_inner()
            .map_err(|_| std::io::Error::other("metadata server lock poisoned"))?;
        server
            .sync()
            .map_err(|e| std::io::Error::other(format!("WAL flush on shutdown: {e}")))?;
        Ok((server, stats))
    }
}

fn accept_loop(shared: &Arc<Shared>, tcp: Option<TcpListener>, uds: Option<UnixListener>) {
    let pool = match ThreadPoolBuilder::new()
        // +1: the accept loop itself occupies the scope's calling slot.
        .num_threads(shared.limits.conn_threads.max(2) + 1)
        .build()
    {
        Ok(pool) => pool,
        Err(_) => {
            // No worker pool means no way to serve; stop accepting so
            // shutdown() returns instead of hanging.
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    };
    pool.scope(|s| {
        while !shared.stop.load(Ordering::SeqCst) {
            let mut accepted = false;
            if let Some(l) = &tcp {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        spawn_conn(shared, s, Conn::Tcp(stream));
                        accepted = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if let Some(l) = &uds {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        spawn_conn(shared, s, Conn::Unix(stream));
                        accepted = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if !accepted {
                std::thread::sleep(shared.limits.poll_interval.min(Duration::from_millis(5)));
            }
        }
        // Scope exit now waits for every connection handler; they see
        // the stop flag within one poll interval, answer what they
        // drained, and return.
    });
}

fn spawn_conn<'a>(shared: &'a Arc<Shared>, s: &rayon::Scope<'a>, conn: Conn) {
    shared
        .stats
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    let sh = Arc::clone(shared);
    s.spawn(move |_| handle_conn(&sh, conn));
}

fn handle_conn(sh: &Shared, conn: Conn) {
    let _ = conn.set_read_timeout(Some(sh.limits.poll_interval));
    let reader_half = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => {
            sh.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = FrameReader::new(reader_half);
    let mut writer = conn;
    let mut raws: Vec<Vec<u8>> = Vec::new();
    loop {
        // The stop check sits *before* a fresh drain: requests already
        // drained in the previous round were answered there, so nothing
        // acknowledged is ever dropped.
        if sh.stop.load(Ordering::SeqCst) {
            break;
        }
        raws.clear();
        match reader.poll() {
            Ok(FrameEvent::Frame(raw)) => raws.push(raw),
            Ok(FrameEvent::Pause) => continue,
            Ok(FrameEvent::Eof) => break,
            Err(FrameReadError::Decode(e)) => {
                poison_conn(sh, &mut writer, &e);
                break;
            }
            Err(FrameReadError::Io(_)) => break,
        }
        // Drain whatever else already sits in the buffer, up to the
        // pipeline cap. A decode error in the drained tail still lets
        // the good prefix be served first.
        let mut poisoned: Option<FrameDecodeError> = None;
        while raws.len() < sh.limits.max_pipeline.max(1) {
            match reader.try_buffered() {
                Ok(Some(raw)) => raws.push(raw),
                Ok(None) => break,
                Err(e) => {
                    poisoned = Some(e);
                    break;
                }
            }
        }
        if serve_batch(sh, &raws, &mut writer).is_err() {
            break;
        }
        if let Some(e) = poisoned {
            poison_conn(sh, &mut writer, &e);
            break;
        }
    }
    let _ = writer.shutdown_both();
    sh.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
}

/// Best-effort typed answer for a poisoned stream, then close: the
/// framing is lost, so only this connection dies — the error is typed
/// so the peer can tell corruption from overload.
fn poison_conn(sh: &Shared, writer: &mut Conn, e: &FrameDecodeError) {
    sh.stats.decode_poisoned.fetch_add(1, Ordering::Relaxed);
    let resp = Response::Error(format!("connection poisoned: {e}"));
    let _ = write_all_retry(writer, &encode_response(&resp));
}

/// Serves one drained batch: admit (or shed) every request up front —
/// the batch *is* the connection's in-flight window — evaluate in
/// arrival order, write all response frames in one syscall, then return
/// the permits.
fn serve_batch(sh: &Shared, raws: &[Vec<u8>], writer: &mut Conn) -> std::io::Result<()> {
    let per_conn = sh.limits.max_inflight_per_conn.max(1);
    let mut held = 0usize;
    let admitted: Vec<bool> = raws
        .iter()
        .map(|_| {
            if held < per_conn && sh.try_acquire() {
                held += 1;
                true
            } else {
                false
            }
        })
        .collect();
    let mut out = Vec::new();
    for (raw, &adm) in raws.iter().zip(&admitted) {
        sh.stats
            .bytes_in
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        let resp = if !adm {
            sh.stats.requests_shed.fetch_add(1, Ordering::Relaxed);
            Response::Overloaded(format!(
                "admission budget exhausted (global {} / per-connection {})",
                sh.limits.max_inflight, per_conn
            ))
        } else {
            sh.stats.requests_admitted.fetch_add(1, Ordering::Relaxed);
            match decode_request(raw) {
                // The frame's CRC already passed, so a payload-level
                // failure is a protocol mismatch, not lost framing:
                // answer typed, keep the connection.
                Err(e) => Response::Error(format!("undecodable request payload: {e}")),
                Ok(req) => match req {
                    Request::ApplyChange { change } => {
                        sh.stats.mutations_applied.fetch_add(1, Ordering::Relaxed);
                        sh.server
                            .write()
                            .unwrap_or_else(|p| p.into_inner())
                            .apply(change)
                    }
                    read => sh
                        .server
                        .read()
                        .unwrap_or_else(|p| p.into_inner())
                        .serve_read(&read),
                },
            }
        };
        out.extend_from_slice(&encode_response(&resp));
    }
    let res = write_all_retry(writer, &out);
    sh.stats
        .bytes_out
        .fetch_add(out.len() as u64, Ordering::Relaxed);
    sh.release(held);
    res
}
