//! Network transport for the SmartStore metadata service.
//!
//! Everything below the service crate treats "the wire" as a byte
//! buffer; this crate makes it a real one. It provides:
//!
//! * [`frame`] — a streaming decoder for the CRC record framing over a
//!   socket: tolerant of short reads, partial frames and `EINTR`, with
//!   torn/corrupt frames surfacing as typed errors that poison only
//!   their connection;
//! * [`server`] — [`server::NetServer`], a blocking TCP +
//!   Unix-domain-socket front end for
//!   [`smartstore_service::MetadataServer`] with bounded-admission load
//!   shedding ([`smartstore_service::Response::Overloaded`]) and
//!   graceful drain-and-flush shutdown;
//! * [`transport`] — [`transport::SocketTransport`], the client-side
//!   [`smartstore_service::Transport`] over a socket, carrying
//!   bit-identical bytes to the in-process path so socket answers can
//!   be compared against in-process answers frame for frame;
//! * [`histogram`] — a log-bucketed latency histogram (≈3% relative
//!   quantile error in constant memory);
//! * [`loadgen`] — deterministic mixed-workload request streams and an
//!   open-loop driver that measures latency from *scheduled* arrival
//!   times, so overload shows up as queueing delay and shed rate
//!   instead of being coordinated away.

pub mod frame;
pub mod histogram;
pub mod loadgen;
pub mod server;
pub mod transport;

pub use frame::{FrameDecodeError, FrameEvent, FrameReadError, FrameReader};
pub use histogram::LatencyHistogram;
pub use loadgen::{generate_requests, run_open_loop, LoadMixConfig, LoadReport};
pub use server::{NetServer, NetServerConfig, NetServerHandle, NetServerStats};
pub use transport::{NetAddr, SocketTransport};
