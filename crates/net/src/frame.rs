//! Streaming CRC frame decoding over a byte stream.
//!
//! The wire format is the persistence layer's record framing —
//! `[len:u32][crc32:u32][payload]` — but a socket delivers it in
//! arbitrary fragments: a `read()` may return half a header, a frame
//! and a half, or be interrupted by a signal. [`FrameReader`]
//! accumulates bytes across reads and yields one *verified* frame at a
//! time, distinguishing four outcomes the caller handles differently:
//!
//! * a complete, checksum-verified frame;
//! * a pause (the read timed out / would block) — the caller can check
//!   its shutdown flag and poll again;
//! * a clean end-of-stream *at a frame boundary* — an orderly close;
//! * a torn or corrupt frame — a typed [`FrameDecodeError`] that
//!   poisons this connection (and only this connection: the bytes after
//!   a framing error are unrecoverable noise, so the stream must die,
//!   but the server keeps serving everyone else).

use smartstore_persist::codec::crc32;
use std::io::Read;

/// Frame header: `[len: u32 le][crc32: u32 le]`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single network frame's payload. Protocol messages
/// are requests/responses (small); anything larger is corruption, and
/// bounding it keeps a hostile length prefix from ballooning the
/// connection buffer.
pub const MAX_FRAME_BYTES: usize = 1 << 26; // 64 MiB

/// A torn or corrupt frame: the connection's framing is lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameDecodeError {
    /// Stream offset (bytes consumed before this frame) of the bad
    /// frame's first byte.
    pub offset: u64,
    /// Reason.
    pub reason: String,
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame decode error at stream offset {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for FrameDecodeError {}

/// One polling step's outcome.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame: raw bytes (header + payload), checksum
    /// verified. The payload is `raw[FRAME_HEADER_BYTES..]`.
    Frame(Vec<u8>),
    /// The underlying read timed out or would block; no bytes were
    /// lost. Poll again (after checking shutdown flags).
    Pause,
    /// Clean end of stream at a frame boundary.
    Eof,
}

/// Why a poll could not produce a frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// Torn/corrupt framing (poison the connection, typed).
    Decode(FrameDecodeError),
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Decode(e) => write!(f, "{e}"),
            FrameReadError::Io(e) => write!(f, "frame read I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

/// Incremental frame decoder over any [`Read`].
pub struct FrameReader<R> {
    inner: R,
    /// Buffered-but-unconsumed bytes: `buf[start..]` is live.
    buf: Vec<u8>,
    start: usize,
    /// Total bytes consumed off the stream (error reporting).
    consumed: u64,
    read_chunk: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            start: 0,
            consumed: 0,
            read_chunk: vec![0u8; 64 * 1024],
        }
    }

    /// Bytes buffered but not yet part of a yielded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Attempts to extract one complete frame from the buffer without
    /// touching the underlying stream. `Ok(None)` means more bytes are
    /// needed.
    pub fn try_buffered(&mut self) -> Result<Option<Vec<u8>>, FrameDecodeError> {
        let live = &self.buf[self.start..];
        if live.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([live[0], live[1], live[2], live[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameDecodeError {
                offset: self.consumed,
                reason: format!("implausible frame length {len}"),
            });
        }
        let total = FRAME_HEADER_BYTES + len;
        if live.len() < total {
            return Ok(None);
        }
        let crc = u32::from_le_bytes([live[4], live[5], live[6], live[7]]);
        let payload = &live[FRAME_HEADER_BYTES..total];
        let actual = crc32(payload);
        if actual != crc {
            return Err(FrameDecodeError {
                offset: self.consumed,
                reason: format!(
                    "frame checksum mismatch (stored {crc:08x}, computed {actual:08x})"
                ),
            });
        }
        let raw = live[..total].to_vec();
        self.start += total;
        self.consumed += total as u64;
        // Reclaim the consumed prefix once it dominates the buffer.
        if self.start > 64 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(raw))
    }

    /// Produces the next frame, reading from the stream as needed.
    /// Retries `EINTR` transparently; a read timeout surfaces as
    /// [`FrameEvent::Pause`]; end-of-stream *inside* a frame is a
    /// decode error (a torn frame), at a boundary it is a clean
    /// [`FrameEvent::Eof`].
    pub fn poll(&mut self) -> Result<FrameEvent, FrameReadError> {
        loop {
            if let Some(raw) = self.try_buffered().map_err(FrameReadError::Decode)? {
                return Ok(FrameEvent::Frame(raw));
            }
            match self.inner.read(&mut self.read_chunk) {
                Ok(0) => {
                    return if self.buffered() == 0 {
                        Ok(FrameEvent::Eof)
                    } else {
                        Err(FrameReadError::Decode(FrameDecodeError {
                            offset: self.consumed,
                            reason: format!(
                                "stream ended inside a frame ({} torn bytes)",
                                self.buffered()
                            ),
                        }))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&self.read_chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(FrameEvent::Pause);
                }
                Err(e) => return Err(FrameReadError::Io(e)),
            }
        }
    }
}

/// Writes all of `buf`, retrying short writes and `EINTR` explicitly —
/// the write-path mirror of the reader's short-read tolerance.
pub fn write_all_retry(w: &mut impl std::io::Write, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection accepted no bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use smartstore_persist::codec::put_record;

    /// A `Read` that delivers a script of byte chunks, then EOF.
    struct Dribble {
        data: Vec<u8>,
        cuts: Vec<usize>,
        pos: usize,
        cut_idx: usize,
    }

    impl Dribble {
        fn new(data: Vec<u8>, cuts: Vec<usize>) -> Self {
            Self {
                data,
                cuts,
                pos: 0,
                cut_idx: 0,
            }
        }
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let step = self
                .cuts
                .get(self.cut_idx)
                .copied()
                .unwrap_or(usize::MAX)
                .max(1)
                .min(out.len())
                .min(self.data.len() - self.pos);
            self.cut_idx += 1;
            out[..step].copy_from_slice(&self.data[self.pos..self.pos + step]);
            self.pos += step;
            Ok(step)
        }
    }

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            put_record(&mut out, p);
        }
        out
    }

    #[test]
    fn byte_at_a_time_reassembles_frames() {
        let wire = framed(&[b"hello", b"", b"world!"]);
        let mut r = FrameReader::new(Dribble::new(wire, vec![1; 10_000]));
        let mut got = Vec::new();
        loop {
            match r.poll().expect("clean stream") {
                FrameEvent::Frame(raw) => got.push(raw[FRAME_HEADER_BYTES..].to_vec()),
                FrameEvent::Eof => break,
                FrameEvent::Pause => unreachable!("Dribble never pauses"),
            }
        }
        assert_eq!(
            got,
            vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]
        );
    }

    #[test]
    fn eof_inside_a_frame_is_a_typed_decode_error() {
        let mut wire = framed(&[b"payload"]);
        wire.truncate(wire.len() - 2);
        let mut r = FrameReader::new(Dribble::new(wire, vec![3; 100]));
        match r.poll() {
            Err(FrameReadError::Decode(e)) => {
                assert!(e.reason.contains("torn"), "got {e}");
            }
            other => panic!("expected torn-frame error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_checksum_is_a_typed_decode_error() {
        let mut wire = framed(&[b"payload-a", b"payload-b"]);
        let last = wire.len() - 1;
        wire[last] ^= 0xff; // flip inside the second payload
        let mut r = FrameReader::new(Dribble::new(wire, vec![5; 100]));
        assert!(
            matches!(r.poll(), Ok(FrameEvent::Frame(_))),
            "first frame fine"
        );
        assert!(
            matches!(r.poll(), Err(FrameReadError::Decode(_))),
            "second frame poisoned"
        );
    }

    #[test]
    fn implausible_length_rejected_before_allocation() {
        let mut wire = vec![0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0];
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = FrameReader::new(Dribble::new(wire, vec![4; 100]));
        match r.poll() {
            Err(FrameReadError::Decode(e)) => assert!(e.reason.contains("implausible")),
            other => panic!("expected length error, got {other:?}"),
        }
    }
}
