//! Log-bucketed latency histogram.
//!
//! Open-loop load generation produces millions of latency samples whose
//! tail is the interesting part; storing them all to sort for p999 is
//! wasteful and perturbs the measurement. [`LatencyHistogram`] keeps
//! HDR-style buckets — 32 linear sub-buckets per power-of-two octave —
//! so any recorded value lands in a bucket within 1/32 ≈ 3.1% of its
//! true value, in constant memory, with O(1) record and mergeable
//! across load-generator threads.

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave,
/// bounding relative quantile error at 1/32.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the linear region for u64 values.
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Fixed-memory log-bucketed histogram of `u64` samples (nanoseconds,
/// by convention).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    /// `SUB` exact buckets for values `< SUB`, then `SUB` sub-buckets
    /// per octave.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUB + OCTAVES * SUB],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS here
        let shift = octave - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB - 1);
        SUB + (shift as usize) * SUB + sub
    }

    /// Lowest value mapping to bucket `idx` (used as the quantile
    /// representative's base).
    fn lower_bound_of(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let shift = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        ((SUB as u64) + sub) << shift
    }

    /// Bucket width at `idx`.
    fn width_of(idx: usize) -> u64 {
        if idx < SUB {
            1
        } else {
            1u64 << ((idx - SUB) / SUB)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket
    /// holding that rank, clamped to the exact observed min/max.
    /// Relative error is bounded by the sub-bucket width (≈3.1%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = Self::lower_bound_of(idx) + Self::width_of(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (same bucket geometry by construction).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Deterministic pseudo-uniform samples over a wide range.
        let mut h = LatencyHistogram::new();
        let mut vals = Vec::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..100_000 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 10_000_000) + 1_000;
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let est = h.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel < 0.04,
                "p{q}: est {est} vs exact {exact} (rel err {rel:.4})"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [3u64, 70, 900, 12_345, 6_000_000, 1 << 40] {
            a.record(v);
            whole.record(v);
        }
        for v in [17u64, 250, 88_000, 1 << 33] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.min(), whole.min());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn extremes_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX, "clamped to observed max");
    }
}
