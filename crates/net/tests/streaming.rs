//! Streaming-decode robustness (satellite 1): the frame decoder must
//! reassemble frames delivered byte-at-a-time and under random split
//! points, and torn/corrupt mid-stream frames must produce a typed
//! decode error that poisons only the offending connection — the server
//! keeps serving everyone else.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_net::frame::{FrameEvent, FrameReadError, FrameReader, FRAME_HEADER_BYTES};
use smartstore_net::{NetAddr, NetServer, NetServerConfig, SocketTransport};
use smartstore_persist::codec::put_record;
use smartstore_service::codec::encode_request;
use smartstore_service::{MetadataServer, Request, Response, ServerConfig};
use smartstore_trace::{GeneratorConfig, MetadataPopulation};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Delivers a byte stream in chunks whose sizes come from a seeded
/// xorshift generator, then EOF.
struct SplitReader {
    data: Vec<u8>,
    pos: usize,
    state: u64,
    max_chunk: usize,
}

impl SplitReader {
    fn new(data: Vec<u8>, seed: u64, max_chunk: usize) -> Self {
        Self {
            data,
            pos: 0,
            state: seed | 1,
            max_chunk: max_chunk.max(1),
        }
    }
}

impl Read for SplitReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let n = (self.state as usize % self.max_chunk + 1)
            .min(out.len())
            .min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn frames(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for p in payloads {
        put_record(&mut wire, p);
    }
    wire
}

fn drain<R: Read>(reader: &mut FrameReader<R>) -> Result<Vec<Vec<u8>>, FrameReadError> {
    let mut got = Vec::new();
    loop {
        match reader.poll()? {
            FrameEvent::Frame(raw) => got.push(raw[FRAME_HEADER_BYTES..].to_vec()),
            FrameEvent::Eof => return Ok(got),
            FrameEvent::Pause => unreachable!("SplitReader never pauses"),
        }
    }
}

#[test]
fn every_frame_survives_byte_at_a_time_delivery() {
    let payloads: Vec<Vec<u8>> = (0..40u32)
        .map(|i| {
            (0..(i as usize * 7) % 300)
                .map(|b| (b as u8).wrapping_mul(31))
                .collect()
        })
        .collect();
    let wire = frames(&payloads);
    let mut reader = FrameReader::new(SplitReader::new(wire, 1, 1));
    assert_eq!(drain(&mut reader).expect("clean stream"), payloads);
}

#[test]
fn random_split_points_never_change_the_frames() {
    let payloads: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("payload number {i} with some body text").into_bytes())
        .collect();
    let wire = frames(&payloads);
    for seed in 1..=32u64 {
        let mut reader = FrameReader::new(SplitReader::new(wire.clone(), seed, 13));
        assert_eq!(
            drain(&mut reader).expect("clean stream"),
            payloads,
            "split seed {seed} corrupted reassembly"
        );
    }
}

#[test]
fn corruption_at_any_byte_is_a_typed_error_never_a_wrong_frame() {
    let payloads: Vec<Vec<u8>> = (0..4u32).map(|i| vec![i as u8; 24]).collect();
    let clean = frames(&payloads);
    for victim in 0..clean.len() {
        // Corruption may truncate the stream with a typed error, but the
        // verified prefix must consist of the original frames only —
        // never invented or altered data.
        let mut reader = FrameReader::new(SplitReader::new(corrupt(&clean, victim), 7, 5));
        let mut seen = 0usize;
        loop {
            match reader.poll() {
                Ok(FrameEvent::Frame(raw)) => {
                    assert_eq!(
                        raw[FRAME_HEADER_BYTES..].to_vec(),
                        payloads[seen],
                        "byte {victim}: verified frame differs from the original"
                    );
                    seen += 1;
                }
                Ok(FrameEvent::Eof) => break,
                Ok(FrameEvent::Pause) => unreachable!(),
                Err(FrameReadError::Decode(_)) => break,
                Err(FrameReadError::Io(e)) => panic!("unexpected I/O error: {e}"),
            }
        }
        assert!(
            seen < payloads.len(),
            "byte {victim}: a corrupted stream cannot deliver every frame intact"
        );
    }
}

fn corrupt(clean: &[u8], victim: usize) -> Vec<u8> {
    let mut wire = clean.to_vec();
    wire[victim] ^= 0x40;
    wire
}

#[test]
fn poisoned_connection_dies_alone() {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 400,
        n_clusters: 6,
        seed: 3,
        ..GeneratorConfig::default()
    });
    let server = MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: 2,
            units_per_shard: 6,
            seed: 3,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds");
    let handle = NetServer::spawn(server, NetServerConfig::default()).expect("spawns");
    let addr = handle.tcp_addr().expect("tcp");

    // Connection A: a frame whose CRC lies. It must get a typed error
    // frame back, then EOF.
    let mut bad = TcpStream::connect(addr).expect("connect");
    let mut wire = encode_request(&Request::Stats);
    let last = wire.len() - 1;
    wire[last] ^= 0xff;
    bad.write_all(&wire).expect("send corrupt frame");
    let mut reader = FrameReader::new(bad.try_clone().expect("clone"));
    match reader.poll().expect("server answers before closing") {
        FrameEvent::Frame(raw) => {
            let resp = smartstore_service::codec::decode_response(&raw).expect("typed frame");
            match resp {
                Response::Error(msg) => {
                    assert!(msg.contains("poisoned"), "unexpected error text: {msg}")
                }
                other => panic!("expected typed decode error, got {other:?}"),
            }
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert!(
        matches!(reader.poll(), Ok(FrameEvent::Eof)),
        "poisoned connection must be closed"
    );

    // Connection B: still served, bit-for-bit business as usual.
    let mut good = SocketTransport::connect(NetAddr::Tcp(addr)).expect("connect");
    let mut client = smartstore_service::Client::new();
    let resp = client
        .call(
            &mut good,
            Request::Point {
                name: pop.files[0].name.clone(),
            },
        )
        .expect("healthy connection still serves");
    assert!(matches!(resp, Response::Query(_)), "got {resp:?}");

    let (_, stats) = handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.decode_poisoned, 1, "exactly one poisoned connection");
}

#[test]
fn torn_stream_poisons_its_connection_with_a_typed_error() {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 200,
        n_clusters: 4,
        seed: 5,
        ..GeneratorConfig::default()
    });
    let server = MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: 1,
            units_per_shard: 6,
            seed: 5,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds");
    let handle = NetServer::spawn(server, NetServerConfig::default()).expect("spawns");
    let addr = handle.tcp_addr().expect("tcp");

    let mut conn = TcpStream::connect(addr).expect("connect");
    let wire = encode_request(&Request::Stats);
    // Half a frame, then half-close: the server sees EOF mid-frame.
    conn.write_all(&wire[..wire.len() / 2])
        .expect("send torn frame");
    conn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf).expect("read final frame");
    let resp = smartstore_service::codec::decode_response(&buf).expect("typed frame");
    assert!(
        matches!(&resp, Response::Error(m) if m.contains("torn")),
        "expected torn-frame error, got {resp:?}"
    );
    let (_, stats) = handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.decode_poisoned, 1);
}
