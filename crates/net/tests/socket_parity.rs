//! The socket parity gate: answers served over TCP and UDS must be
//! **bit-identical** to the in-process wire path — same request bytes
//! in, same response bytes out — including mutations, stats probes, and
//! degraded-mode serving with a quarantined shard. A throughput number
//! from a front end that changes answers is worthless, so this gate is
//! what the serving bench runs before it times anything.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_net::loadgen::{generate_requests, LoadMixConfig};
use smartstore_net::{NetAddr, NetServer, NetServerConfig, SocketTransport};
use smartstore_service::codec::encode_request_batch;
use smartstore_service::{MetadataServer, Request, ServerConfig, Transport};
use smartstore_trace::{GeneratorConfig, MetadataPopulation};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("smartstore_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn population() -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files: 1_500,
        n_clusters: 12,
        seed: 77,
        ..GeneratorConfig::default()
    })
}

fn build_server(pop: &MetadataPopulation, n_shards: usize) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards,
            units_per_shard: 8,
            seed: 9,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds")
}

fn mixed_requests(pop: &MetadataPopulation, n: usize, seed: u64) -> Vec<Request> {
    let mut reqs = generate_requests(
        pop,
        &LoadMixConfig {
            n_requests: n,
            seed,
            ..LoadMixConfig::default()
        },
    );
    // Make sure the stats probe crosses the wire too.
    reqs.push(Request::Stats);
    reqs
}

/// Drives the same request stream through a socket transport and the
/// in-process transport against identically-built servers, asserting
/// response-batch *bytes* are equal for every batch.
fn assert_parity(addr: NetAddr, mut reference: MetadataServer, reqs: &[Request]) {
    let mut socket = SocketTransport::connect(addr).expect("connect");
    for batch in reqs.chunks(16) {
        let wire = encode_request_batch(batch);
        let over_socket = socket
            .exchange(&wire, batch.len())
            .expect("socket exchange");
        let in_process = reference
            .exchange(&wire, batch.len())
            .expect("in-process exchange");
        assert_eq!(
            over_socket, in_process,
            "socket response bytes diverged from the in-process wire path"
        );
    }
}

#[test]
fn tcp_answers_are_bit_identical_to_in_process() {
    let pop = population();
    let reqs = mixed_requests(&pop, 400, 0xfeed);
    let handle = NetServer::spawn(build_server(&pop, 3), NetServerConfig::default())
        .expect("net server spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp enabled"));
    assert_parity(addr, build_server(&pop, 3), &reqs);
    let (_, stats) = handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.requests_shed, 0, "default budget must not shed here");
    assert!(stats.requests_admitted >= reqs.len() as u64);
}

#[test]
fn uds_answers_are_bit_identical_to_in_process() {
    let pop = population();
    let reqs = mixed_requests(&pop, 400, 0xbead);
    let dir = tmp_dir("uds_parity");
    let sock = dir.join("metadata.sock");
    let handle = NetServer::spawn(
        build_server(&pop, 3),
        NetServerConfig {
            tcp: false,
            uds_path: Some(sock.clone()),
            ..NetServerConfig::default()
        },
    )
    .expect("net server spawns");
    assert_parity(NetAddr::Uds(sock), build_server(&pop, 3), &reqs);
    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_mode_parity_with_quarantined_shard() {
    let pop = population();
    // Reads only: with a shard fenced, mutation targeting depends on
    // ownership of the quarantined shard on both sides identically, but
    // the degraded read fan-out is the interesting surface here.
    let reqs: Vec<Request> = mixed_requests(&pop, 400, 0x0dd)
        .into_iter()
        .filter(|r| r.is_read())
        .collect();
    let mut net_side = build_server(&pop, 4);
    net_side.quarantine_shard(2, "induced for degraded parity");
    let mut reference = build_server(&pop, 4);
    reference.quarantine_shard(2, "induced for degraded parity");

    let handle = NetServer::spawn(net_side, NetServerConfig::default()).expect("net server spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp enabled"));
    assert_parity(addr, reference, &reqs);
    let (server, _) = handle.shutdown().expect("clean shutdown");
    assert_eq!(
        server.healthy_shards().len(),
        3,
        "quarantine survived serving"
    );
}

#[test]
fn typed_client_responses_match_over_the_socket() {
    // Same gate one level up: the typed Client must see equal decoded
    // responses through both transports.
    let pop = population();
    let reqs = mixed_requests(&pop, 200, 0xc0de);
    let handle = NetServer::spawn(build_server(&pop, 2), NetServerConfig::default())
        .expect("net server spawns");
    let mut socket =
        SocketTransport::connect(NetAddr::Tcp(handle.tcp_addr().unwrap())).expect("connect");
    let mut reference = build_server(&pop, 2);
    let mut c_sock = smartstore_service::Client::new();
    let mut c_ref = smartstore_service::Client::new();
    for batch in reqs.chunks(8) {
        for r in batch {
            c_sock.enqueue(r.clone());
            c_ref.enqueue(r.clone());
        }
        let a = c_sock.flush(&mut socket).expect("socket flush");
        let b = c_ref.flush(&mut reference).expect("in-process flush");
        assert_eq!(a, b, "typed responses diverged");
    }
    handle.shutdown().expect("clean shutdown");
}
