//! Load-generator determinism (satellite 3): the request stream and the
//! arrival schedule are pure functions of their seeds — bit-identical
//! across runs and across thread-pool sizes — so a serving experiment
//! can be reproduced exactly and two deployments can be compared on the
//! *same* offered load.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use rayon::ThreadPoolBuilder;
use smartstore_net::loadgen::{generate_requests, LoadMixConfig};
use smartstore_service::codec::encode_request_batch;
use smartstore_trace::{ArrivalConfig, ArrivalSchedule, GeneratorConfig, MetadataPopulation};

fn population() -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files: 900,
        n_clusters: 10,
        seed: 41,
        ..GeneratorConfig::default()
    })
}

fn mix(seed: u64) -> LoadMixConfig {
    LoadMixConfig {
        n_requests: 2_000,
        seed,
        ..LoadMixConfig::default()
    }
}

#[test]
fn same_seed_same_bytes_across_runs() {
    let pop = population();
    let a = generate_requests(&pop, &mix(7));
    let b = generate_requests(&pop, &mix(7));
    assert_eq!(a, b, "typed streams must match");
    assert_eq!(
        encode_request_batch(&a),
        encode_request_batch(&b),
        "wire bytes must match bit for bit"
    );
}

#[test]
fn thread_count_cannot_perturb_the_stream() {
    let pop = population();
    let single = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let wide = ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool");
    let a = single.install(|| generate_requests(&pop, &mix(19)));
    let b = wide.install(|| generate_requests(&pop, &mix(19)));
    let c = generate_requests(&pop, &mix(19));
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn arrival_schedule_is_deterministic_too() {
    let cfg = ArrivalConfig {
        rate_rps: 5_000.0,
        n_arrivals: 10_000,
        burstiness: 2.0,
        seed: 23,
        ..ArrivalConfig::default()
    };
    let a = ArrivalSchedule::generate(&cfg);
    let b = ArrivalSchedule::generate(&cfg);
    assert_eq!(a, b, "same seed, bit-identical schedule");
    let wide = ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool");
    let c = wide.install(|| ArrivalSchedule::generate(&cfg));
    assert_eq!(a, c, "schedules are thread-count independent");
}

#[test]
fn different_seeds_decorrelate_streams() {
    let pop = population();
    let a = generate_requests(&pop, &mix(1));
    let b = generate_requests(&pop, &mix(2));
    assert_ne!(a, b);
}

#[test]
fn stream_honors_the_configured_mix() {
    let pop = population();
    let reqs = generate_requests(
        &pop,
        &LoadMixConfig {
            n_requests: 4_000,
            seed: 3,
            ..LoadMixConfig::default()
        },
    );
    let count = |kind: &str| reqs.iter().filter(|r| r.kind() == kind).count();
    let (p, r, t, m) = (
        count("point"),
        count("range"),
        count("topk"),
        count("apply"),
    );
    assert_eq!(p + r + t + m, 4_000);
    // Default weights 45/15/20/20 with generous tolerance.
    assert!((1_500..=2_100).contains(&p), "points {p}");
    assert!((350..=900).contains(&r), "ranges {r}");
    assert!((500..=1_100).contains(&t), "topks {t}");
    assert!((500..=1_100).contains(&m), "mutations {m}");

    // Mutations include all three change kinds.
    let mut kinds = std::collections::BTreeSet::new();
    for req in &reqs {
        if let smartstore_service::Request::ApplyChange { change } = req {
            kinds.insert(match change {
                smartstore::versioning::Change::Insert(_) => "insert",
                smartstore::versioning::Change::Modify(_) => "modify",
                smartstore::versioning::Change::Delete(_) => "delete",
            });
        }
    }
    assert_eq!(
        kinds.len(),
        3,
        "insert+modify+delete all present: {kinds:?}"
    );
}
