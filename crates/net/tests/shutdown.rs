//! Graceful-shutdown regression (satellite 6): a SIGTERM-style
//! shutdown arriving mid-load must lose **no acknowledged mutation** —
//! every insert the client saw acknowledged is present in the server
//! handed back by `shutdown()` *and* in a cold-start recovery of the
//! shard directories, because shutdown drains in-flight requests and
//! flushes every per-shard WAL before returning.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore::versioning::Change;
use smartstore_net::{NetAddr, NetServer, NetServerConfig, SocketTransport};
use smartstore_service::{Client, MetadataServer, Request, Response, ServerConfig};
use smartstore_trace::{FileMetadata, GeneratorConfig, MetadataPopulation};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("smartstore_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn fresh_file(id: u64) -> FileMetadata {
    FileMetadata {
        file_id: id,
        name: format!("shutdown_ins_{id:08}"),
        dir: "/load/shutdown".into(),
        owner: (id % 17) as u32,
        size: 4096 + id * 13,
        ctime: 1_000.0 + id as f64,
        mtime: 2_000.0 + id as f64,
        atime: 3_000.0 + id as f64,
        read_bytes: id * 100,
        write_bytes: id * 50,
        access_count: (id % 97) as u32 + 1,
        proc_id: (id % 11) as u32,
        truth_cluster: None,
    }
}

#[test]
fn shutdown_mid_load_loses_no_acknowledged_mutation() {
    let base = tmp_dir("net_shutdown");
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 300,
        n_clusters: 6,
        seed: 13,
        ..GeneratorConfig::default()
    });
    let server = MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: 2,
            units_per_shard: 6,
            seed: 13,
            store_dir: Some(base.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("durable server builds");
    let handle = NetServer::spawn(server, NetServerConfig::default()).expect("spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp"));

    // Client thread: stream inserts one at a time, recording every id
    // the server *acknowledged*. Stops at the first failure (the
    // connection dying under shutdown is expected and fine — whatever
    // was not acknowledged carries no durability promise).
    let first_id = 1_000_000u64;
    let writer = std::thread::spawn(move || {
        let mut transport = SocketTransport::connect(addr).expect("connect");
        let mut client = Client::new();
        let mut acked: Vec<u64> = Vec::new();
        for id in first_id.. {
            let req = Request::ApplyChange {
                change: Change::Insert(fresh_file(id)),
            };
            match client.call(&mut transport, req) {
                Ok(Response::Applied(a)) if a.shard.is_some() => acked.push(id),
                Ok(other) => panic!("unexpected answer to insert: {other:?}"),
                Err(_) => break, // shutdown cut the connection
            }
        }
        acked
    });

    // Let load accumulate, then pull the plug mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (drained, stats) = handle.shutdown().expect("graceful shutdown");
    let acked = writer.join().expect("writer thread");
    assert!(
        acked.len() > 10,
        "the run must overlap real load (got {} acks)",
        acked.len()
    );
    assert!(stats.mutations_applied >= acked.len() as u64);

    // Every acknowledged insert is in the drained server...
    for &id in &acked {
        let resp = drained.serve_read(&Request::Point {
            name: format!("shutdown_ins_{id:08}"),
        });
        assert_eq!(
            resp.file_ids().as_deref(),
            Some(&[id][..]),
            "acked insert {id} missing from the drained server"
        );
    }

    // ...and in a cold-start recovery of the shard directories, because
    // shutdown flushed the WALs.
    drop(drained);
    let recovered = MetadataServer::open(&base).expect("cold start recovers");
    for &id in &acked {
        let resp = recovered.serve_read(&Request::Point {
            name: format!("shutdown_ins_{id:08}"),
        });
        assert_eq!(
            resp.file_ids().as_deref(),
            Some(&[id][..]),
            "acked insert {id} lost across crash-recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
