//! Admission control under pipelined load: a bounded in-flight budget
//! sheds excess requests with a typed [`Response::Overloaded`] instead
//! of queueing unboundedly, sheds are counted, and admitted requests
//! are still answered correctly and in order.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_net::frame::{FrameEvent, FrameReader, FRAME_HEADER_BYTES};
use smartstore_net::loadgen::{generate_requests, run_open_loop, LoadMixConfig};
use smartstore_net::{NetAddr, NetServer, NetServerConfig};
use smartstore_persist::codec::Dec;
use smartstore_service::codec::{encode_request, get_response};
use smartstore_service::{MetadataServer, Request, Response, ServerConfig};
use smartstore_trace::{ArrivalConfig, ArrivalSchedule, GeneratorConfig, MetadataPopulation};
use std::io::Write;
use std::net::TcpStream;

fn population(n_files: usize, seed: u64) -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files,
        n_clusters: 8,
        seed,
        ..GeneratorConfig::default()
    })
}

fn server(pop: &MetadataPopulation, n_shards: usize) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards,
            units_per_shard: 8,
            seed: 4,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds")
}

/// Reads `n` response frames off one raw connection.
fn read_responses(stream: &TcpStream, n: usize) -> Vec<Response> {
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    let mut out = Vec::new();
    while out.len() < n {
        match reader.poll().expect("clean frames") {
            FrameEvent::Frame(raw) => {
                let mut d = Dec::new(&raw[FRAME_HEADER_BYTES..]);
                out.push(get_response(&mut d).expect("typed response"));
            }
            FrameEvent::Pause => continue,
            FrameEvent::Eof => panic!("connection closed early"),
        }
    }
    out
}

#[test]
fn pipelined_burst_beyond_the_budget_sheds_typed_overloaded() {
    let pop = population(600, 11);
    let name = pop.files[0].name.clone();
    let handle = NetServer::spawn(
        server(&pop, 2),
        NetServerConfig {
            max_inflight: 2,
            max_inflight_per_conn: 2,
            max_pipeline: 64,
            ..NetServerConfig::default()
        },
    )
    .expect("spawns");
    let addr = handle.tcp_addr().expect("tcp");

    // A pipelined burst usually lands in one drain round; the kernel
    // may split it, so retry the burst until a shed is observed. Every
    // attempt still asserts full typed correctness.
    const BURST: usize = 24;
    let wire: Vec<u8> = (0..BURST)
        .flat_map(|_| encode_request(&Request::Point { name: name.clone() }))
        .collect();
    let mut observed_shed = false;
    for _attempt in 0..20 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(&wire).expect("burst written");
        let resps = read_responses(&conn, BURST);
        let shed = resps
            .iter()
            .filter(|r| matches!(r, Response::Overloaded(_)))
            .count();
        let served = resps
            .iter()
            .filter(|r| matches!(r, Response::Query(_)))
            .count();
        assert_eq!(shed + served, BURST, "every request answered, typed");
        assert!(served >= 1, "the budget admits at least one per round");
        if shed > 0 {
            observed_shed = true;
            break;
        }
    }
    assert!(
        observed_shed,
        "a 24-deep pipeline against a 2-permit budget must shed eventually"
    );
    let (_, stats) = handle.shutdown().expect("clean shutdown");
    assert!(stats.requests_shed > 0, "sheds counted: {stats:?}");
    assert!(
        Response::Overloaded(String::new()).is_retryable(),
        "sheds must be retryable for clients"
    );
}

#[test]
fn open_loop_load_accounts_for_every_request() {
    let pop = population(800, 21);
    let handle = NetServer::spawn(server(&pop, 2), NetServerConfig::default()).expect("spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp"));

    let reqs = generate_requests(
        &pop,
        &LoadMixConfig {
            n_requests: 300,
            seed: 33,
            ..LoadMixConfig::default()
        },
    );
    let schedule = ArrivalSchedule::generate(&ArrivalConfig {
        rate_rps: 3_000.0,
        n_arrivals: reqs.len(),
        burstiness: 1.0,
        seed: 33,
        ..ArrivalConfig::default()
    });
    let report = run_open_loop(&addr, &reqs, &schedule, 3).expect("load run");
    assert_eq!(report.sent, reqs.len() as u64, "open loop sends everything");
    assert_eq!(
        report.answered + report.shed + report.errors,
        reqs.len() as u64,
        "every request accounted for: {report:?}"
    );
    assert_eq!(report.errors, 0, "no transport failures on loopback");
    assert!(report.answered > 0);
    assert!(report.latency.count() == report.answered);
    assert!(report.latency_ms(0.99) >= report.latency_ms(0.50));
    assert!(report.achieved_rps() > 0.0);

    let (_, stats) = handle.shutdown().expect("clean shutdown");
    assert_eq!(
        stats.requests_admitted + stats.requests_shed,
        reqs.len() as u64,
        "server-side accounting matches: {stats:?}"
    );
    assert_eq!(stats.requests_admitted, report.answered);
    assert_eq!(stats.requests_shed, report.shed);
}

#[test]
fn tiny_budget_under_open_loop_load_sheds_but_answers_admitted_fast() {
    let pop = population(500, 31);
    let handle = NetServer::spawn(
        server(&pop, 1),
        NetServerConfig {
            max_inflight: 1,
            max_inflight_per_conn: 1,
            ..NetServerConfig::default()
        },
    )
    .expect("spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp"));

    let reqs = generate_requests(
        &pop,
        &LoadMixConfig {
            n_requests: 400,
            mutation_weight: 0,
            seed: 55,
            ..LoadMixConfig::default()
        },
    );
    // Arrivals far beyond a 1-permit budget's comfort: concurrent
    // connections race the single permit and the losers are shed.
    let schedule = ArrivalSchedule::generate(&ArrivalConfig {
        rate_rps: 20_000.0,
        n_arrivals: reqs.len(),
        burstiness: 4.0,
        seed: 55,
        ..ArrivalConfig::default()
    });
    let report = run_open_loop(&addr, &reqs, &schedule, 4).expect("load run");
    assert_eq!(report.errors, 0);
    assert!(
        report.shed > 0,
        "4 connections racing one permit must shed: {report:?}"
    );
    assert!(report.answered > 0, "the budget still admits work");
    handle.shutdown().expect("clean shutdown");
}
