//! Property tests for the Bloom substrate: no false negatives, union
//! soundness, counting-filter delete correctness, MD5 determinism, and
//! the fast hash family's statistical health (false-positive proportion
//! near theory, double-hashing probes well dispersed, families
//! isolated).

#![allow(clippy::disallowed_methods)] // tests may unwrap

use proptest::prelude::*;
use smartstore_bloom::md5::md5;
use smartstore_bloom::{BloomFilter, CountingBloomFilter, HashFamily};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn never_false_negative(
        keys in prop::collection::vec("[a-z0-9_/]{1,40}", 1..200),
        bits in 64usize..4096,
        hashes in 1usize..10,
    ) {
        let mut f = BloomFilter::new(bits, hashes);
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            prop_assert!(f.contains(k.as_bytes()), "false negative for {k}");
        }
    }

    #[test]
    fn union_is_superset_of_both_sides(
        a in prop::collection::vec("[a-z]{1,20}", 0..100),
        b in prop::collection::vec("[a-z]{1,20}", 1..100),
    ) {
        let mut fa = BloomFilter::new(1024, 7);
        let mut fb = BloomFilter::new(1024, 7);
        for k in &a { fa.insert(k.as_bytes()); }
        for k in &b { fb.insert(k.as_bytes()); }
        let u = BloomFilter::union_all([&fa, &fb]);
        for k in a.iter().chain(&b) {
            prop_assert!(u.contains(k.as_bytes()));
        }
        // Union never prunes where a member filter reports presence.
        for probe in ["zzz", "abc", "qqq"] {
            if fa.contains(probe.as_bytes()) || fb.contains(probe.as_bytes()) {
                prop_assert!(u.contains(probe.as_bytes()));
            }
        }
    }

    #[test]
    fn counting_filter_matches_multiset_semantics(
        ops in prop::collection::vec(("[a-g]", any::<bool>()), 1..300),
    ) {
        let mut f = CountingBloomFilter::new(2048, 5);
        let mut model: std::collections::HashMap<String, usize> = Default::default();
        for (key, is_insert) in ops {
            if is_insert {
                f.insert(key.as_bytes());
                *model.entry(key).or_insert(0) += 1;
            } else {
                let have = model.get(&key).copied().unwrap_or(0);
                let removed = f.remove(key.as_bytes());
                if have > 0 {
                    prop_assert!(removed, "remove of live key {key} must succeed");
                    *model.get_mut(&key).unwrap() -= 1;
                } else if removed {
                    // A false-positive removal is possible but must not
                    // create false negatives for other live keys —
                    // checked below. Track nothing.
                }
            }
        }
        // With a 2048-counter filter and ≤7 distinct short keys,
        // counter collisions between distinct keys are overwhelmingly
        // unlikely, so live keys must still be present.
        for (key, &count) in &model {
            if count > 0 {
                prop_assert!(f.contains(key.as_bytes()), "live key {key} lost");
            }
        }
    }

    #[test]
    fn counting_export_preserves_membership(
        keys in prop::collection::vec("[a-z]{1,12}", 0..80),
    ) {
        let mut cf = CountingBloomFilter::new(1024, 7);
        for k in &keys {
            cf.insert(k.as_bytes());
        }
        let plain = cf.to_bloom();
        for k in &keys {
            prop_assert!(plain.contains(k.as_bytes()));
        }
    }

    #[test]
    fn fast_family_never_false_negative(
        keys in prop::collection::vec("[a-z0-9_/]{1,40}", 1..200),
        bits in 64usize..4096,
        hashes in 1usize..10,
    ) {
        let mut f = BloomFilter::with_family(bits, hashes, HashFamily::Fast);
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            prop_assert!(f.contains(k.as_bytes()), "false negative for {k}");
        }
    }

    #[test]
    fn fast_family_fpp_tracks_theory(
        n_keys in 100usize..300,
        bits_pow in 12u32..14,
        hashes in 4usize..8,
        salt in 0u32..1000,
    ) {
        // Observed false-positive proportion must stay within 3× the
        // classic estimate (1 - e^{-kn/m})^k, plus additive slack that
        // absorbs sampling noise over the 2000 absent probes.
        let bits = 1usize << bits_pow;
        let mut f = BloomFilter::with_family(bits, hashes, HashFamily::Fast);
        for i in 0..n_keys {
            f.insert(format!("member_{salt}_{i}").as_bytes());
        }
        let probes = 2000usize;
        let fp = (0..probes)
            .filter(|i| f.contains(format!("absent_{salt}_{i}").as_bytes()))
            .count();
        let k = hashes as f64;
        let theory = (1.0 - (-k * n_keys as f64 / bits as f64).exp()).powf(k);
        let observed = fp as f64 / probes as f64;
        prop_assert!(
            observed <= 3.0 * theory + 0.005,
            "fpp {observed:.4} vs theory {theory:.4} (m={bits}, k={hashes}, n={n_keys})"
        );
    }

    #[test]
    fn fast_family_probes_are_dispersed(
        salt in 0u32..1000,
    ) {
        // First-probe positions of many distinct keys over a power-of-
        // two table must spread: folded into 64 buckets, no bucket may
        // be empty or hold more than 3× its fair share. Catches both a
        // broken mixer (clumping) and a degenerate stride choice.
        let m = 4096usize;
        let n = 4096usize;
        let mut buckets = [0usize; 64];
        for i in 0..n {
            let key = format!("disperse_{salt}_{i}");
            let first = HashFamily::Fast
                .indexes(key.as_bytes(), m, 1)
                .next()
                .unwrap();
            buckets[first * 64 / m] += 1;
        }
        let fair = n / 64;
        for (b, &count) in buckets.iter().enumerate() {
            prop_assert!(count > 0, "bucket {b} empty");
            prop_assert!(count <= 3 * fair, "bucket {b} holds {count} (fair {fair})");
        }
    }

    #[test]
    fn families_are_isolated(
        keys in prop::collection::vec("[a-z0-9]{4,24}", 20..60),
    ) {
        // The same key set must light different bit patterns under the
        // two families — proof the family tag actually selects distinct
        // derivations and one family's image can't pose as the other's.
        let mut md5f = BloomFilter::with_family(2048, 5, HashFamily::Md5);
        let mut fast = BloomFilter::with_family(2048, 5, HashFamily::Fast);
        for k in &keys {
            md5f.insert(k.as_bytes());
            fast.insert(k.as_bytes());
        }
        prop_assert_ne!(md5f.words(), fast.words());
        // Both still honor the no-false-negative contract.
        for k in &keys {
            prop_assert!(md5f.contains(k.as_bytes()));
            prop_assert!(fast.contains(k.as_bytes()));
        }
    }

    #[test]
    fn md5_is_deterministic_and_length_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let d1 = md5(&data);
        let d2 = md5(&data);
        prop_assert_eq!(d1, d2);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(md5(&extended), d1, "appending a byte must change the digest");
    }
}
