//! Property tests for the Bloom substrate: no false negatives, union
//! soundness, counting-filter delete correctness, MD5 determinism.

use proptest::prelude::*;
use smartstore_bloom::md5::md5;
use smartstore_bloom::{BloomFilter, CountingBloomFilter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn never_false_negative(
        keys in prop::collection::vec("[a-z0-9_/]{1,40}", 1..200),
        bits in 64usize..4096,
        hashes in 1usize..10,
    ) {
        let mut f = BloomFilter::new(bits, hashes);
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            prop_assert!(f.contains(k.as_bytes()), "false negative for {k}");
        }
    }

    #[test]
    fn union_is_superset_of_both_sides(
        a in prop::collection::vec("[a-z]{1,20}", 0..100),
        b in prop::collection::vec("[a-z]{1,20}", 1..100),
    ) {
        let mut fa = BloomFilter::new(1024, 7);
        let mut fb = BloomFilter::new(1024, 7);
        for k in &a { fa.insert(k.as_bytes()); }
        for k in &b { fb.insert(k.as_bytes()); }
        let u = BloomFilter::union_all([&fa, &fb]);
        for k in a.iter().chain(&b) {
            prop_assert!(u.contains(k.as_bytes()));
        }
        // Union never prunes where a member filter reports presence.
        for probe in ["zzz", "abc", "qqq"] {
            if fa.contains(probe.as_bytes()) || fb.contains(probe.as_bytes()) {
                prop_assert!(u.contains(probe.as_bytes()));
            }
        }
    }

    #[test]
    fn counting_filter_matches_multiset_semantics(
        ops in prop::collection::vec(("[a-g]", any::<bool>()), 1..300),
    ) {
        let mut f = CountingBloomFilter::new(2048, 5);
        let mut model: std::collections::HashMap<String, usize> = Default::default();
        for (key, is_insert) in ops {
            if is_insert {
                f.insert(key.as_bytes());
                *model.entry(key).or_insert(0) += 1;
            } else {
                let have = model.get(&key).copied().unwrap_or(0);
                let removed = f.remove(key.as_bytes());
                if have > 0 {
                    prop_assert!(removed, "remove of live key {key} must succeed");
                    *model.get_mut(&key).unwrap() -= 1;
                } else if removed {
                    // A false-positive removal is possible but must not
                    // create false negatives for other live keys —
                    // checked below. Track nothing.
                }
            }
        }
        // With a 2048-counter filter and ≤7 distinct short keys,
        // counter collisions between distinct keys are overwhelmingly
        // unlikely, so live keys must still be present.
        for (key, &count) in &model {
            if count > 0 {
                prop_assert!(f.contains(key.as_bytes()), "live key {key} lost");
            }
        }
    }

    #[test]
    fn counting_export_preserves_membership(
        keys in prop::collection::vec("[a-z]{1,12}", 0..80),
    ) {
        let mut cf = CountingBloomFilter::new(1024, 7);
        for k in &keys {
            cf.insert(k.as_bytes());
        }
        let plain = cf.to_bloom();
        for k in &keys {
            prop_assert!(plain.contains(k.as_bytes()));
        }
    }

    #[test]
    fn md5_is_deterministic_and_length_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let d1 = md5(&data);
        let d2 = md5(&data);
        prop_assert_eq!(d1, d2);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(md5(&extended), d1, "appending a byte must change the digest");
    }
}
