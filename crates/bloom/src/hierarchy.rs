//! Hierarchical Bloom-filter arrays.
//!
//! SmartStore routes a filename point query down the semantic R-tree
//! along the path "on which the corresponding Bloom filters report
//! positive hits" (§3.3.3, Figure 4): every leaf (storage unit) owns a
//! filter over its local filenames, and every index unit owns the union
//! of its children's filters. This module implements that tree of
//! filters independently of the R-tree itself, mirroring the group-based
//! hierarchical Bloom-filter array approach the paper cites (its ref. 28).

use crate::filter::BloomFilter;
use crate::hash::HashFamily;

/// Identifier of a node inside a [`BloomHierarchy`].
pub type NodeId = usize;

#[derive(Clone, Debug)]
struct HNode {
    filter: BloomFilter,
    children: Vec<NodeId>,
    /// Leaf payload: the storage-unit id this filter summarizes.
    unit: Option<usize>,
}

/// A tree of Bloom filters with union-composed internal nodes.
#[derive(Clone, Debug)]
pub struct BloomHierarchy {
    nodes: Vec<HNode>,
    root: Option<NodeId>,
    n_bits: usize,
    n_hashes: usize,
    family: HashFamily,
}

impl BloomHierarchy {
    /// Creates an empty hierarchy whose filters all share the given
    /// geometry, in the default hash family.
    pub fn new(n_bits: usize, n_hashes: usize) -> Self {
        Self::with_family(n_bits, n_hashes, HashFamily::default())
    }

    /// Creates an empty hierarchy in an explicit hash family.
    pub fn with_family(n_bits: usize, n_hashes: usize, family: HashFamily) -> Self {
        Self {
            nodes: Vec::new(),
            root: None,
            n_bits,
            n_hashes,
            family,
        }
    }

    /// The hash family of every filter in this hierarchy.
    pub fn family(&self) -> HashFamily {
        self.family
    }

    /// Adds a leaf summarizing storage unit `unit` with the given keys.
    /// Returns the new leaf's id.
    pub fn add_leaf<'a, I: IntoIterator<Item = &'a [u8]>>(
        &mut self,
        unit: usize,
        keys: I,
    ) -> NodeId {
        let mut filter = BloomFilter::with_family(self.n_bits, self.n_hashes, self.family);
        for k in keys {
            filter.insert(k);
        }
        self.nodes.push(HNode {
            filter,
            children: Vec::new(),
            unit: Some(unit),
        });
        self.nodes.len() - 1
    }

    /// Adds an internal node over existing children; its filter is the
    /// union of the children's filters. Returns the new node's id.
    ///
    /// # Panics
    /// If `children` is empty or contains an unknown id.
    pub fn add_internal(&mut self, children: Vec<NodeId>) -> NodeId {
        assert!(!children.is_empty(), "add_internal: no children");
        let filter = BloomFilter::union_all(children.iter().map(|&c| &self.nodes[c].filter));
        self.nodes.push(HNode {
            filter,
            children,
            unit: None,
        });
        self.nodes.len() - 1
    }

    /// Declares `node` the root of the hierarchy.
    pub fn set_root(&mut self, node: NodeId) {
        assert!(node < self.nodes.len(), "set_root: unknown node");
        self.root = Some(node);
    }

    /// Root id, if set.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Inserts a key into leaf `leaf` and refreshes it on every ancestor
    /// filter along the provided root-to-leaf path (ancestors hold
    /// unions, so insertion suffices; no recompute needed).
    pub fn insert_key(&mut self, path: &[NodeId], key: &[u8]) {
        for &n in path {
            self.nodes[n].filter.insert(key);
        }
    }

    /// Walks from the root following positive filter hits; returns the
    /// storage-unit ids of all leaves whose filters claim the key, and
    /// the number of filters probed.
    pub fn query(&self, key: &[u8]) -> (Vec<usize>, usize) {
        let mut out = Vec::new();
        let mut probed = 0;
        let Some(root) = self.root else {
            return (out, probed);
        };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            probed += 1;
            let node = &self.nodes[n];
            if !node.filter.contains(key) {
                continue;
            }
            match node.unit {
                Some(u) => out.push(u),
                None => stack.extend(node.children.iter().copied()),
            }
        }
        (out, probed)
    }

    /// Total memory of all filters in bytes (for the space-overhead
    /// experiment).
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.filter.size_bytes()).sum()
    }

    /// Number of nodes (leaves + internal).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the hierarchy has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds: root over two internal nodes, each over two leaves.
    fn sample() -> (BloomHierarchy, Vec<NodeId>) {
        let mut h = BloomHierarchy::new(2048, 7);
        let keysets: Vec<Vec<String>> = (0..4)
            .map(|u| (0..50).map(|i| format!("unit{u}_file{i}")).collect())
            .collect();
        let leaves: Vec<NodeId> = keysets
            .iter()
            .enumerate()
            .map(|(u, ks)| h.add_leaf(u, ks.iter().map(|s| s.as_bytes())))
            .collect();
        let left = h.add_internal(vec![leaves[0], leaves[1]]);
        let right = h.add_internal(vec![leaves[2], leaves[3]]);
        let root = h.add_internal(vec![left, right]);
        h.set_root(root);
        (h, leaves)
    }

    #[test]
    fn query_routes_to_owning_unit() {
        let (h, _) = sample();
        let (units, probed) = h.query(b"unit2_file17");
        assert!(units.contains(&2), "unit 2 must report its own file");
        assert!(probed >= 3, "root + internal + leaf at minimum");
    }

    #[test]
    fn absent_key_prunes_at_root_with_high_probability() {
        let (h, _) = sample();
        // With 2048-bit filters holding 50/100/200 keys, a random absent
        // key is overwhelmingly pruned before reaching all leaves.
        let mut total_probes = 0;
        for i in 0..100 {
            let (_, p) = h.query(format!("missing_{i}").as_bytes());
            total_probes += p;
        }
        // Brute force would probe all 7 nodes every time = 700.
        assert!(
            total_probes < 700,
            "pruning should cut probes, got {total_probes}"
        );
    }

    #[test]
    fn insert_key_updates_path() {
        let (mut h, leaves) = sample();
        let root = h.root().unwrap();
        // Path root → left-internal → leaf 0. Internal ids are 4 and 5.
        let path = vec![root, 4, leaves[0]];
        assert!(h.query(b"new_file").0.is_empty() || !h.query(b"new_file").0.contains(&0));
        h.insert_key(&path, b"new_file");
        let (units, _) = h.query(b"new_file");
        assert!(units.contains(&0));
    }

    #[test]
    fn size_accounts_all_nodes() {
        let (h, _) = sample();
        assert_eq!(h.len(), 7);
        assert_eq!(h.size_bytes(), 7 * 2048 / 8);
    }

    #[test]
    fn empty_hierarchy_returns_nothing() {
        let h = BloomHierarchy::new(128, 3);
        assert!(h.is_empty());
        let (units, probed) = h.query(b"x");
        assert!(units.is_empty());
        assert_eq!(probed, 0);
    }
}
