//! Bloom filters for SmartStore's filename-based point queries.
//!
//! The paper (§3.3.3): "Bloom filters, which are space-efficient data
//! structures for membership queries, are embedded into storage and index
//! units to support fast filename-based query services. A Bloom filter is
//! built for each leaf node … The Bloom filter of an index unit is
//! obtained by the logical union operations of the Bloom filters of its
//! child nodes."
//!
//! The experimental setup (§5.1) fixes each filter at 1024 bits with
//! k = 7 hash functions and derives index bits from an MD5 digest split
//! into four 32-bit words; both choices are reproduced here, including an
//! [`md5`] implementation written from scratch (RFC 1321) — MD5 is used
//! purely as a fast mixing function, not for security.
//!
//! MD5 is, however, a poor mixing function by modern standards: at
//! ~one compression per four hash rounds it dominates routing latency.
//! [`HashFamily`] therefore makes the index derivation selectable —
//! [`HashFamily::Md5`] reproduces the paper bit for bit, while the
//! default [`HashFamily::Fast`] drives Kirsch–Mitzenmacher double
//! hashing from a single one-pass 64-bit hash (see [`hash`]).

pub mod counting;
pub mod filter;
pub mod hash;
pub mod hierarchy;
pub mod md5;

pub use counting::CountingBloomFilter;
pub use filter::{BloomFilter, PAPER_BITS, PAPER_HASHES};
pub use hash::HashFamily;
pub use hierarchy::BloomHierarchy;
