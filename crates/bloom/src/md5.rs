//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The paper selects MD5 "for its relatively fast implementation. The
//! value of an attribute is hashed into 128 bits by calculating its MD5
//! signature, which is then divided into four 32-bit values" (§5.1).
//! SmartStore uses those 32-bit words to derive Bloom-filter bit indexes;
//! nothing here is security-sensitive.
//!
//! The implementation is streaming: [`Md5State`] compresses full
//! 64-byte blocks as they arrive through a fixed on-stack buffer, so a
//! digest of `key ‖ salt` never materializes the concatenation on the
//! heap — the Bloom probe path calls this with zero allocations.

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 over a fixed 64-byte block buffer — no heap.
#[derive(Clone)]
pub struct Md5State {
    h: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    /// Total message bytes absorbed so far.
    total: u64,
}

impl Default for Md5State {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5State {
    pub fn new() -> Self {
        Self {
            h: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs `data`, compressing each full 64-byte block as it fills.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                return; // data exhausted before filling a block
            }
            let block = self.buf;
            compress(&mut self.h, &block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            // chunks_exact guarantees 64 bytes; the try_into cannot fail.
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            compress(&mut self.h, &b);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Appends RFC 1321 padding (0x80, zeros, LE bit length) and
    /// returns the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total.wrapping_mul(8);
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > 56 {
            self.buf[self.buf_len..].fill(0);
            let block = self.buf;
            compress(&mut self.h, &block);
            self.buf_len = 0;
        }
        self.buf[self.buf_len..56].fill(0);
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        compress(&mut self.h, &block);
        let mut out = [0u8; 16];
        for (i, w) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// One MD5 compression round over a 64-byte block.
fn compress(h: &mut [u32; 4], block: &[u8; 64]) {
    let mut m = [0u32; 16];
    for (i, w) in m.iter_mut().enumerate() {
        *w = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    let (mut a, mut b, mut c, mut d) = (h[0], h[1], h[2], h[3]);
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
}

/// Computes the 16-byte MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut st = Md5State::new();
    st.update(data);
    st.finalize()
}

/// The paper's digest split: MD5's 128 bits as four little-endian u32
/// words.
pub fn md5_words(data: &[u8]) -> [u32; 4] {
    words_of(md5(data))
}

/// `md5_words(key ‖ round.to_le_bytes())` without materializing the
/// salted key — the Bloom filters' round-`r` word source for `r > 0`.
pub fn md5_words_salted(key: &[u8], round: u32) -> [u32; 4] {
    let mut st = Md5State::new();
    st.update(key);
    st.update(&round.to_le_bytes());
    words_of(st.finalize())
}

fn words_of(d: [u8; 16]) -> [u32; 4] {
    [
        u32::from_le_bytes([d[0], d[1], d[2], d[3]]),
        u32::from_le_bytes([d[4], d[5], d[6], d[7]]),
        u32::from_le_bytes([d[8], d[9], d[10], d[11]]),
        u32::from_le_bytes([d[12], d[13], d[14], d[15]]),
    ]
}

/// Hex string of a digest (for tests and debugging).
pub fn to_hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(&to_hex(&md5(input.as_bytes())), want, "md5({input:?})");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries must
        // not panic and must differ from each other.
        let digests: Vec<String> = (53..70).map(|n| to_hex(&md5(&vec![b'x'; n]))).collect();
        for w in digests.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        // Every split point of a 3-block message must give the same
        // digest as the one-shot call.
        let msg: Vec<u8> = (0..180u32).map(|i| (i * 31 % 251) as u8).collect();
        let want = md5(&msg);
        for cut in 0..msg.len() {
            let mut st = Md5State::new();
            st.update(&msg[..cut]);
            st.update(&msg[cut..]);
            assert_eq!(st.finalize(), want, "split at {cut}");
        }
    }

    #[test]
    fn salted_words_match_concatenation() {
        for round in [0u32, 1, 2, 7, 0xdead_beef] {
            let mut concat = b"file_000123".to_vec();
            concat.extend_from_slice(&round.to_le_bytes());
            assert_eq!(
                md5_words_salted(b"file_000123", round),
                md5_words(&concat),
                "round {round}"
            );
        }
    }

    #[test]
    fn words_split_is_consistent() {
        let w = md5_words(b"abc");
        let d = md5(b"abc");
        assert_eq!(w[0].to_le_bytes(), [d[0], d[1], d[2], d[3]]);
        assert_eq!(w[3].to_le_bytes(), [d[12], d[13], d[14], d[15]]);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md5(b"file_000001"), md5(b"file_000002"));
    }
}
