//! Bloom-filter hash families and the shared zero-allocation index
//! iterator.
//!
//! The paper derives bit indexes from MD5 (§5.1): the 128-bit digest is
//! split into four 32-bit words, and when more than four hash functions
//! are configured the key is re-digested with a little-endian round
//! counter appended (`key ‖ r_u32_le`). That costs `k.div_ceil(4)` full
//! MD5 compressions per probe — microseconds per hierarchy level, which
//! dominates full-path point latency once the unit-local lookup is tens
//! of nanoseconds.
//!
//! [`HashFamily::Fast`] replaces that with one pass over the key
//! (an FNV-style 64-bit mix with a splitmix64 finalizer) feeding
//! Kirsch–Mitzenmacher double hashing: index `i` is
//! `(h1 + i·h2) mod m`, which provably preserves the asymptotic
//! false-positive rate of `k` independent hashes (Kirsch &
//! Mitzenmacher, 2006). [`HashFamily::Md5`] remains available — and
//! bit-identical to the original scheme — for paper fidelity and for
//! reading v2 persisted images.
//!
//! Both families share [`BitIndexes`], an iterator that never touches
//! the heap: the MD5 arm streams the salt through [`md5_words_salted`]
//! instead of cloning the key, the fast arm is two u64s of state.

use crate::md5::{md5_words, md5_words_salted};

/// Which hash family a Bloom filter derives its bit indexes from.
///
/// The family is part of a filter's identity: two filters only
/// understand each other's bit patterns if they share it, so unions
/// assert equality and the persist codec records it per filter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HashFamily {
    /// The paper's MD5-derived indexes (§5.1): digest split into four
    /// 32-bit words, salted re-digest per extra round.
    Md5,
    /// One-pass 64-bit hash + Kirsch–Mitzenmacher double hashing.
    #[default]
    Fast,
}

impl HashFamily {
    /// The `n_hashes` bit indexes of `key` in a filter of `n_bits`
    /// bits, as a zero-allocation iterator.
    pub fn indexes<'k>(self, key: &'k [u8], n_bits: usize, n_hashes: usize) -> BitIndexes<'k> {
        debug_assert!(n_bits > 0, "a Bloom filter needs at least one bit");
        let state = match self {
            HashFamily::Md5 => FamilyState::Md5 {
                words: md5_words(key),
                in_round: 0,
                round: 0,
            },
            HashFamily::Fast => {
                let h1 = fast_hash64(key);
                let h2 = splitmix64(h1);
                let m = n_bits as u64;
                // Force an odd, non-zero stride: odd strides are
                // coprime with power-of-two `m` (the common geometry),
                // so the k probes never collapse onto one bit. For odd
                // `m` the reduction can still yield 0 — bump to 1.
                // The power-of-two arm is a pure strength reduction:
                // `h & (m-1)` is exactly `h % m` there, and the two u64
                // divisions otherwise rival the whole key hash in cost.
                let (first, step) = if m.is_power_of_two() {
                    (h1 & (m - 1), (h2 | 1) & (m - 1))
                } else {
                    (h1 % m, (h2 | 1) % m)
                };
                FamilyState::Fast {
                    next: first,
                    step: step.max(u64::from(m > 1)),
                }
            }
        };
        BitIndexes {
            key,
            n_bits,
            remaining: n_hashes,
            state,
        }
    }
}

/// Per-family iterator state; the key and geometry live in
/// [`BitIndexes`].
enum FamilyState {
    Md5 {
        /// Words of the current round's digest.
        words: [u32; 4],
        /// How many of `words` have been consumed (0..=4).
        in_round: usize,
        /// Round counter — the salt for the *next* refill.
        round: u32,
    },
    Fast {
        /// `(h1 + i·h2) mod m` accumulator.
        next: u64,
        /// `h2 mod m`, forced odd before reduction.
        step: u64,
    },
}

/// Zero-allocation iterator over a key's Bloom bit indexes. Shared by
/// [`crate::BloomFilter`], [`crate::CountingBloomFilter`] and the
/// hierarchy probes, for both hash families.
pub struct BitIndexes<'k> {
    key: &'k [u8],
    n_bits: usize,
    remaining: usize,
    state: FamilyState,
}

impl Iterator for BitIndexes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match &mut self.state {
            FamilyState::Md5 {
                words,
                in_round,
                round,
            } => {
                if *in_round == 4 {
                    *round += 1;
                    *words = md5_words_salted(self.key, *round);
                    *in_round = 0;
                }
                let w = words[*in_round];
                *in_round += 1;
                Some(w as usize % self.n_bits)
            }
            FamilyState::Fast { next, step } => {
                let idx = *next as usize;
                *next += *step;
                if *next >= self.n_bits as u64 {
                    *next -= self.n_bits as u64;
                }
                Some(idx)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BitIndexes<'_> {}

/// One-pass 64-bit key hash: FNV-1a-style multiply-xor over 8-byte
/// lanes with a splitmix64 avalanche finalizer. Not cryptographic —
/// it only needs good bit dispersion for double hashing.
pub fn fast_hash64(key: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ (key.len() as u64).wrapping_mul(PRIME);
    let mut chunks = key.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h = (h ^ lane).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        let lane = u64::from_le_bytes(tail);
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    splitmix64(h)
}

/// splitmix64 finalizer — full-avalanche mix of a 64-bit value.
pub fn splitmix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original (allocating) v2 derivation, kept verbatim as the
    /// reference the zero-alloc MD5 arm must match bit for bit.
    fn md5_reference(key: &[u8], n_bits: usize, n_hashes: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n_hashes);
        let mut round = 0u32;
        while out.len() < n_hashes {
            let words = if round == 0 {
                md5_words(key)
            } else {
                let mut salted = key.to_vec();
                salted.extend_from_slice(&round.to_le_bytes());
                md5_words(&salted)
            };
            for w in words {
                if out.len() == n_hashes {
                    break;
                }
                out.push(w as usize % n_bits);
            }
            round += 1;
        }
        out
    }

    #[test]
    fn md5_family_matches_v2_derivation() {
        for key in [&b"file_000001"[..], b"", b"a", &[0xffu8; 100]] {
            for (n_bits, n_hashes) in [(1024, 7), (1024, 4), (64, 1), (512, 9), (8192, 13)] {
                let got: Vec<usize> = HashFamily::Md5.indexes(key, n_bits, n_hashes).collect();
                assert_eq!(
                    got,
                    md5_reference(key, n_bits, n_hashes),
                    "key {key:?} geometry {n_bits}/{n_hashes}"
                );
            }
        }
    }

    #[test]
    fn fast_family_is_double_hashing() {
        let key = b"file_000042";
        let idx: Vec<usize> = HashFamily::Fast.indexes(key, 1024, 7).collect();
        assert_eq!(idx.len(), 7);
        assert!(idx.iter().all(|&i| i < 1024));
        // Consecutive differences are constant mod m — the KM invariant.
        let m = 1024i64;
        let d0 = (idx[1] as i64 - idx[0] as i64).rem_euclid(m);
        for w in idx.windows(2) {
            assert_eq!((w[1] as i64 - w[0] as i64).rem_euclid(m), d0);
        }
        assert_ne!(d0, 0, "stride must not collapse the probe sequence");
    }

    #[test]
    fn families_disagree() {
        // Sanity: the two families must not accidentally share indexes
        // (cross-family isolation depends on it).
        let a: Vec<usize> = HashFamily::Md5.indexes(b"file_1", 1024, 7).collect();
        let b: Vec<usize> = HashFamily::Fast.indexes(b"file_1", 1024, 7).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn iterator_is_exact_size() {
        let it = HashFamily::Fast.indexes(b"k", 1024, 7);
        assert_eq!(it.len(), 7);
        let it = HashFamily::Md5.indexes(b"k", 1024, 9);
        assert_eq!(it.count(), 9);
    }

    #[test]
    fn fast_hash_disperses() {
        // Distinct short keys must land in distinct buckets nearly
        // always; exact threshold is loose — this guards against a
        // catastrophic mixing bug, not hash quality.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            seen.insert(fast_hash64(format!("file_{i:08}").as_bytes()));
        }
        assert_eq!(seen.len(), 10_000, "full collision among 10k short keys");
    }
}
