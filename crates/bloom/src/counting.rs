//! Counting Bloom filter — deletion support for storage units.
//!
//! The paper accepts Bloom false negatives from staleness because plain
//! filters cannot delete ("these false positives and false negatives are
//! identified when the target metadata is accessed", §5.4.1). The
//! classic remedy — and a natural extension for SmartStore deployments
//! with heavy delete/rename churn — is the counting Bloom filter (Fan et
//! al., 1998): small counters instead of bits (8-bit here), increment on insert,
//! decrement on remove, and export to a plain filter for the index-unit
//! unions.

use crate::filter::BloomFilter;
use crate::hash::{BitIndexes, HashFamily};

/// A Bloom filter with 8-bit saturating counters, supporting removal.
#[derive(Clone, Debug, PartialEq)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    n_hashes: usize,
    inserted: usize,
    family: HashFamily,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter in the default hash family.
    ///
    /// # Panics
    /// If `n_counters` or `n_hashes` is zero.
    pub fn new(n_counters: usize, n_hashes: usize) -> Self {
        Self::with_family(n_counters, n_hashes, HashFamily::default())
    }

    /// Creates an empty counting filter in an explicit hash family.
    ///
    /// # Panics
    /// If `n_counters` or `n_hashes` is zero.
    pub fn with_family(n_counters: usize, n_hashes: usize, family: HashFamily) -> Self {
        assert!(
            n_counters > 0,
            "CountingBloomFilter: need at least one counter"
        );
        assert!(n_hashes > 0, "CountingBloomFilter: need at least one hash");
        Self {
            counters: vec![0; n_counters],
            n_hashes,
            inserted: 0,
            family,
        }
    }

    /// The hash family this filter's counters belong to.
    pub fn family(&self) -> HashFamily {
        self.family
    }

    /// Number of counters.
    pub fn n_counters(&self) -> usize {
        self.counters.len()
    }

    /// Live insertions (inserts minus successful removals).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    fn indexes<'k>(&self, key: &'k [u8]) -> BitIndexes<'k> {
        self.family.indexes(key, self.counters.len(), self.n_hashes)
    }

    /// Inserts a key (counters saturate at 255 rather than wrap).
    pub fn insert(&mut self, key: &[u8]) {
        for i in self.indexes(key) {
            self.counters[i] = self.counters[i].saturating_add(1);
        }
        self.inserted += 1;
    }

    /// Membership check with the usual Bloom semantics.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.indexes(key).all(|i| self.counters[i] > 0)
    }

    /// Removes a key if (apparently) present: decrements its counters.
    /// Returns `false` — and changes nothing — when any counter is
    /// already zero (the key was definitely never inserted).
    pub fn remove(&mut self, key: &[u8]) -> bool {
        if self.indexes(key).any(|i| self.counters[i] == 0) {
            return false;
        }
        for i in self.indexes(key) {
            // Saturated counters must stay saturated: decrementing a
            // counter that overflowed would introduce false negatives.
            if self.counters[i] != u8::MAX {
                self.counters[i] -= 1;
            }
        }
        self.inserted = self.inserted.saturating_sub(1);
        true
    }

    /// Exports to a plain [`BloomFilter`] with the same geometry — used
    /// to build the unioned index-unit filters of §3.3.3 from counting
    /// leaf filters.
    pub fn to_bloom(&self) -> BloomFilter {
        // A plain filter's set bits are exactly the non-zero counters;
        // the export carries the hash family so membership answers
        // transfer.
        let mut f = BloomFilter::with_family(self.counters.len(), self.n_hashes, self.family);
        f.set_bits_from(&self.counters);
        f
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_remove_roundtrip() {
        let mut f = CountingBloomFilter::new(1024, 7);
        f.insert(b"alpha");
        assert!(f.contains(b"alpha"));
        assert!(f.remove(b"alpha"));
        assert!(!f.contains(b"alpha"), "removed key must be gone");
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn remove_absent_is_rejected() {
        let mut f = CountingBloomFilter::new(1024, 7);
        f.insert(b"present");
        assert!(!f.remove(b"never-inserted-key-xyz"));
        assert!(f.contains(b"present"), "rejection must not corrupt state");
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut f = CountingBloomFilter::new(512, 5);
        f.insert(b"dup");
        f.insert(b"dup");
        assert!(f.remove(b"dup"));
        assert!(f.contains(b"dup"), "one copy still present");
        assert!(f.remove(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn no_false_negatives_under_churn() {
        let mut f = CountingBloomFilter::new(4096, 7);
        let live: Vec<String> = (0..100).map(|i| format!("live_{i}")).collect();
        for k in &live {
            f.insert(k.as_bytes());
        }
        for i in 0..200 {
            let k = format!("churn_{i}");
            f.insert(k.as_bytes());
            assert!(f.remove(k.as_bytes()));
        }
        for k in &live {
            assert!(f.contains(k.as_bytes()), "churn must not evict live keys");
        }
    }

    #[test]
    fn export_matches_membership() {
        let mut f = CountingBloomFilter::new(1024, 7);
        let keys: Vec<String> = (0..50).map(|i| format!("k{i}")).collect();
        for k in &keys {
            f.insert(k.as_bytes());
        }
        let plain = f.to_bloom();
        for k in &keys {
            assert!(plain.contains(k.as_bytes()), "export lost {k}");
        }
    }

    #[test]
    fn saturated_counters_never_underflow() {
        let mut f = CountingBloomFilter::new(4, 2);
        for i in 0..1000 {
            f.insert(format!("x{i}").as_bytes());
        }
        // All counters saturated; removals must not create zeros.
        for i in 0..1000 {
            f.remove(format!("x{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(f.contains(format!("x{i}").as_bytes()));
        }
    }
}
