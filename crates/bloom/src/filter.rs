//! The Bloom filter proper: a fixed-size bit array with k hash
//! functions from a selectable [`HashFamily`], plus union and
//! false-probability math.

use crate::hash::HashFamily;

/// Filter size used throughout the paper's evaluation (§5.1).
pub const PAPER_BITS: usize = 1024;
/// Hash-function count used throughout the paper's evaluation (§5.1).
pub const PAPER_HASHES: usize = 7;

/// A Bloom filter over byte-string keys.
///
/// Bit indexes come from the filter's [`HashFamily`]: either the
/// paper's MD5 scheme (digest split into four 32-bit words, salted
/// re-digest per extra round) or the fast double-hashing family. The
/// family is part of the filter's identity — filters of different
/// families do not understand each other's bit patterns, so unions
/// assert family equality.
#[derive(Clone, Debug, PartialEq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    n_hashes: usize,
    inserted: usize,
    family: HashFamily,
}

impl BloomFilter {
    /// Creates an empty filter with `n_bits` bits and `n_hashes` hash
    /// functions in the default hash family.
    ///
    /// # Panics
    /// If `n_bits` or `n_hashes` is zero.
    pub fn new(n_bits: usize, n_hashes: usize) -> Self {
        Self::with_family(n_bits, n_hashes, HashFamily::default())
    }

    /// Creates an empty filter in an explicit hash family.
    ///
    /// # Panics
    /// If `n_bits` or `n_hashes` is zero.
    pub fn with_family(n_bits: usize, n_hashes: usize, family: HashFamily) -> Self {
        assert!(n_bits > 0, "BloomFilter: need at least one bit");
        assert!(n_hashes > 0, "BloomFilter: need at least one hash");
        Self {
            bits: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
            n_hashes,
            inserted: 0,
            family,
        }
    }

    /// The paper's configuration: 1024 bits, 7 hashes, MD5 indexes.
    pub fn paper_default() -> Self {
        Self::with_family(PAPER_BITS, PAPER_HASHES, HashFamily::Md5)
    }

    /// Number of bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of hash functions.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The hash family this filter's bit patterns belong to.
    pub fn family(&self) -> HashFamily {
        self.family
    }

    /// Number of keys inserted (not deduplicated).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Memory footprint of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        for i in self.family.indexes(key, self.n_bits, self.n_hashes) {
            self.bits[i / 64] |= 1u64 << (i % 64);
        }
        self.inserted += 1;
    }

    /// Membership check: `false` means *definitely absent*; `true` means
    /// present with probability `1 − false_positive_rate`.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.family
            .indexes(key, self.n_bits, self.n_hashes)
            .all(|i| self.bits[i / 64] & (1u64 << (i % 64)) != 0)
    }

    /// Logical union with another filter (the index-unit construction of
    /// §3.3.3).
    ///
    /// # Panics
    /// If the two filters have different geometry or hash family.
    pub fn union_in_place(&mut self, other: &BloomFilter) {
        assert_eq!(self.n_bits, other.n_bits, "union: bit-count mismatch");
        assert_eq!(self.n_hashes, other.n_hashes, "union: hash-count mismatch");
        assert_eq!(self.family, other.family, "union: hash-family mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.inserted += other.inserted;
    }

    /// Union of a non-empty set of filters.
    ///
    /// # Panics
    /// If `filters` is empty or geometries/families differ.
    pub fn union_all<'a, I: IntoIterator<Item = &'a BloomFilter>>(filters: I) -> BloomFilter {
        let mut it = filters.into_iter();
        let mut acc = it.next().expect("union_all: empty input").clone();
        for f in it {
            acc.union_in_place(f);
        }
        acc
    }

    /// Number of set bits.
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (the filter's "fill").
    pub fn fill_ratio(&self) -> f64 {
        self.popcount() as f64 / self.n_bits as f64
    }

    /// Theoretical false-positive probability for `n` inserted keys:
    /// `(1 − e^(−k·n/m))^k`.
    pub fn theoretical_fpp(n_bits: usize, n_hashes: usize, n_keys: usize) -> f64 {
        let m = n_bits as f64;
        let k = n_hashes as f64;
        let n = n_keys as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Estimated false-positive probability of *this* filter from its
    /// observed fill ratio: `fill^k`.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.n_hashes as i32)
    }

    /// Sets bit `i` for every non-zero entry of `occupancy` — the export
    /// path from a counting filter (same geometry, same hash family).
    ///
    /// # Panics
    /// If `occupancy.len() != self.n_bits()`.
    pub fn set_bits_from(&mut self, occupancy: &[u8]) {
        assert_eq!(
            occupancy.len(),
            self.n_bits,
            "set_bits_from: geometry mismatch"
        );
        for (i, &c) in occupancy.iter().enumerate() {
            if c > 0 {
                self.bits[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// The raw 64-bit words backing the bit array (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reassembles a filter from its raw parts (the deserialization
    /// inverse of [`Self::words`] plus the geometry and family
    /// accessors).
    ///
    /// # Panics
    /// If the geometry is zero or `words` does not match `n_bits`.
    pub fn from_raw(
        n_bits: usize,
        n_hashes: usize,
        inserted: usize,
        words: Vec<u64>,
        family: HashFamily,
    ) -> Self {
        assert!(n_bits > 0, "BloomFilter: need at least one bit");
        assert!(n_hashes > 0, "BloomFilter: need at least one hash");
        assert_eq!(
            words.len(),
            n_bits.div_ceil(64),
            "from_raw: word-count mismatch"
        );
        Self {
            bits: words,
            n_bits,
            n_hashes,
            inserted,
            family,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        for family in [HashFamily::Md5, HashFamily::Fast] {
            let mut f = BloomFilter::with_family(PAPER_BITS, PAPER_HASHES, family);
            let keys: Vec<String> = (0..100).map(|i| format!("file_{i}")).collect();
            for k in &keys {
                f.insert(k.as_bytes());
            }
            for k in &keys {
                assert!(
                    f.contains(k.as_bytes()),
                    "false negative for {k} ({family:?})"
                );
            }
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::paper_default();
        assert!(!f.contains(b"anything"));
        assert_eq!(f.popcount(), 0);
        assert_eq!(f.family(), HashFamily::Md5);
    }

    #[test]
    fn false_positive_rate_near_theory() {
        for family in [HashFamily::Md5, HashFamily::Fast] {
            let mut f = BloomFilter::with_family(1024, 7, family);
            let n = 100;
            for i in 0..n {
                f.insert(format!("member_{i}").as_bytes());
            }
            let trials = 10_000;
            let fp = (0..trials)
                .filter(|i| f.contains(format!("nonmember_{i}").as_bytes()))
                .count();
            let observed = fp as f64 / trials as f64;
            let theory = BloomFilter::theoretical_fpp(1024, 7, n);
            // Within a factor of 3 of theory (binomial noise + hash quality).
            assert!(
                observed < theory * 3.0 + 0.005,
                "observed fpp {observed} too far above theory {theory} ({family:?})"
            );
        }
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::new(512, 5);
        let mut b = BloomFilter::new(512, 5);
        a.insert(b"alpha");
        b.insert(b"beta");
        let u = BloomFilter::union_all([&a, &b]);
        assert!(u.contains(b"alpha"));
        assert!(u.contains(b"beta"));
        assert_eq!(u.inserted(), 2);
    }

    #[test]
    fn union_popcount_is_bitwise_or() {
        let mut a = BloomFilter::new(256, 3);
        let mut b = BloomFilter::new(256, 3);
        for i in 0..20 {
            a.insert(format!("a{i}").as_bytes());
            b.insert(format!("b{i}").as_bytes());
        }
        let u = BloomFilter::union_all([&a, &b]);
        assert!(u.popcount() <= a.popcount() + b.popcount());
        assert!(u.popcount() >= a.popcount().max(b.popcount()));
    }

    #[test]
    #[should_panic]
    fn union_geometry_mismatch_panics() {
        let mut a = BloomFilter::new(128, 3);
        let b = BloomFilter::new(256, 3);
        a.union_in_place(&b);
    }

    #[test]
    #[should_panic]
    fn union_family_mismatch_panics() {
        let mut a = BloomFilter::with_family(128, 3, HashFamily::Md5);
        let b = BloomFilter::with_family(128, 3, HashFamily::Fast);
        a.union_in_place(&b);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(128, 3);
        f.insert(b"x");
        assert!(f.contains(b"x"));
        f.clear();
        assert!(!f.contains(b"x"));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn theoretical_fpp_monotone_in_keys() {
        let a = BloomFilter::theoretical_fpp(1024, 7, 50);
        let b = BloomFilter::theoretical_fpp(1024, 7, 200);
        assert!(a < b);
        assert!(a > 0.0 && b < 1.0);
    }

    #[test]
    fn more_than_four_hashes_uses_salted_rounds() {
        // With 7 hashes, rounds 0 and 1 are both exercised; differing
        // keys must not collide on all 7 indexes in a big filter.
        let mut f = BloomFilter::with_family(1 << 20, 7, HashFamily::Md5);
        f.insert(b"only-member");
        let fp = (0..1000)
            .filter(|i| f.contains(format!("probe{i}").as_bytes()))
            .count();
        assert_eq!(fp, 0, "1M-bit filter with one key should have ~0 fpp");
    }

    #[test]
    fn fill_ratio_bounds() {
        let mut f = BloomFilter::new(64, 2);
        for i in 0..1000 {
            f.insert(format!("k{i}").as_bytes());
        }
        assert!(
            f.fill_ratio() > 0.99,
            "heavily loaded filter should saturate"
        );
        assert!(f.estimated_fpp() > 0.9);
    }

    #[test]
    fn from_raw_round_trips_family() {
        let mut f = BloomFilter::with_family(256, 5, HashFamily::Fast);
        f.insert(b"key");
        let g = BloomFilter::from_raw(
            f.n_bits(),
            f.n_hashes(),
            f.inserted(),
            f.words().to_vec(),
            f.family(),
        );
        assert_eq!(f, g);
        assert!(g.contains(b"key"));
    }
}
