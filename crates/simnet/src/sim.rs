//! The discrete-event kernel.
//!
//! Generic over the message type `M`: callers schedule messages between
//! nodes, then pump the event queue with a handler closure. Each node is
//! a serial server — a message is handled at
//! `max(arrival, node_busy_until)` and the handler's returned processing
//! time extends the node's busy horizon — so contention on hot storage
//! units shows up in latency, as it would on the paper's real cluster.

use crate::cost::CostModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Identifier of a simulated storage-unit server.
pub type NodeId = usize;

/// Network traffic counters (the paper's Fig. 13(b) compares message
/// counts between the on-line and off-line query paths).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

#[derive(Debug)]
struct Event<M> {
    arrival: SimTime,
    seq: u64,
    to: NodeId,
    from: NodeId,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ordered by (arrival, seq) so ties are FIFO and deterministic.
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

/// A delivered message, handed to the pump handler.
#[derive(Debug)]
pub struct Delivery<M> {
    /// Receiving node.
    pub to: NodeId,
    /// Sending node.
    pub from: NodeId,
    /// Simulated time at which handling starts (arrival + queueing).
    pub at: SimTime,
    /// The message.
    pub msg: M,
}

/// Discrete-event simulator over `n` serial nodes.
#[derive(Debug)]
pub struct Simulator<M> {
    n_nodes: usize,
    cost: CostModel,
    clock: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<M>>>,
    busy_until: Vec<SimTime>,
    stats: NetStats,
}

impl<M> Simulator<M> {
    /// Creates a simulator with `n_nodes` nodes and a cost model.
    pub fn new(n_nodes: usize, cost: CostModel) -> Self {
        assert!(n_nodes > 0, "Simulator: need at least one node");
        Self {
            n_nodes,
            cost,
            clock: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            busy_until: vec![0; n_nodes],
            stats: NetStats::default(),
        }
    }

    /// Number of simulated nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The cost model in force.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Resets traffic counters and the clock (between experiment
    /// phases). Pending events must be drained first.
    ///
    /// # Panics
    /// If events are still queued.
    pub fn reset(&mut self) {
        assert!(self.queue.is_empty(), "reset: events still queued");
        self.stats = NetStats::default();
        self.clock = 0;
        self.busy_until.iter_mut().for_each(|b| *b = 0);
    }

    /// Sends `msg` of `bytes` payload from `from` to `to`, arriving
    /// after wire latency. A self-send models a local enqueue and skips
    /// the hop charge.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M, bytes: usize) {
        self.send_at(self.clock, from, to, msg, bytes);
    }

    /// Sends with an explicit departure time — used to inject a workload
    /// schedule up front.
    pub fn send_at(&mut self, depart: SimTime, from: NodeId, to: NodeId, msg: M, bytes: usize) {
        assert!(to < self.n_nodes, "send: unknown destination {to}");
        let arrival = if from == to {
            depart
        } else {
            self.stats.messages += 1;
            self.stats.bytes += bytes as u64;
            depart + self.cost.wire_ns(bytes)
        };
        self.seq += 1;
        self.queue.push(Reverse(Event {
            arrival,
            seq: self.seq,
            to,
            from,
            msg,
        }));
    }

    /// Sends a message that departs only after the sender has spent
    /// `processing_ns` of local work (plus dispatch cost) on the
    /// triggering delivery — the normal way for a handler to reply so
    /// that probe work shows up in downstream latency.
    pub fn send_processed(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        bytes: usize,
        processing_ns: u64,
    ) {
        let depart = self.clock + self.cost.per_msg_cpu_ns + processing_ns;
        self.send_at(depart, from, to, msg, bytes);
    }

    /// Multicasts `msg` to every node in `targets` (cloning the
    /// message), charging one message per target — the paper's on-line
    /// query path multicasts to father/sibling R-tree nodes (§3.3.1).
    pub fn multicast(&mut self, from: NodeId, targets: &[NodeId], msg: &M, bytes: usize)
    where
        M: Clone,
    {
        for &t in targets {
            self.send(from, t, msg.clone(), bytes);
        }
    }

    /// Pumps events until the queue drains. For each delivery the
    /// handler returns the local processing duration in ns; message
    /// dispatch cost is added automatically, and the sum extends the
    /// receiving node's busy horizon (serial-server queueing).
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulator<M>, Delivery<M>) -> u64,
    {
        while let Some(Reverse(ev)) = self.queue.pop() {
            let to = ev.to;
            // Queueing at the destination: wait until the node is free.
            let start = ev.arrival.max(self.busy_until[to]);
            self.clock = start;
            let delivery = Delivery {
                to,
                from: ev.from,
                at: start,
                msg: ev.msg,
            };
            let processing = handler(self, delivery);
            self.busy_until[to] = start + self.cost.per_msg_cpu_ns + processing;
        }
    }

    /// True when no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    fn sim(n: usize) -> Simulator<Msg> {
        Simulator::new(n, CostModel::default())
    }

    #[test]
    fn ping_pong_round_trip_latency() {
        let mut s = sim(2);
        s.send(0, 1, Msg::Ping(1), 64);
        let mut pong_at = 0;
        s.run(|s, d| match d.msg {
            Msg::Ping(x) => {
                s.send_processed(d.to, d.from, Msg::Pong(x), 64, 1_000);
                1_000
            }
            Msg::Pong(_) => {
                pong_at = d.at;
                0
            }
        });
        // Outbound wire + dispatch + processing + return wire.
        let wire = CostModel::default().wire_ns(64);
        let expect = wire + 5_000 + 1_000 + wire;
        assert_eq!(pong_at, expect);
        assert_eq!(s.stats().messages, 2);
        assert_eq!(s.stats().bytes, 128);
    }

    #[test]
    fn self_send_skips_wire_and_counters() {
        let mut s = sim(1);
        s.send(0, 0, Msg::Ping(0), 1024);
        let mut seen = 0;
        s.run(|_, d| {
            assert_eq!(d.at, 0, "self-send delivers immediately");
            seen += 1;
            0
        });
        assert_eq!(seen, 1);
        assert_eq!(s.stats().messages, 0);
    }

    #[test]
    fn serial_server_queues_concurrent_arrivals() {
        let mut s = sim(2);
        // Two pings arrive at node 1 at the same instant.
        s.send(0, 1, Msg::Ping(1), 0);
        s.send(0, 1, Msg::Ping(2), 0);
        let mut starts = Vec::new();
        s.run(|_, d| {
            starts.push(d.at);
            10_000
        });
        assert_eq!(starts.len(), 2);
        let hop = CostModel::default().hop_latency_ns;
        assert_eq!(starts[0], hop);
        // Second message waits for dispatch (5 µs) + processing (10 µs).
        assert_eq!(starts[1], hop + 15_000);
    }

    #[test]
    fn multicast_counts_one_message_per_target() {
        let mut s = sim(5);
        s.multicast(0, &[1, 2, 3, 4], &Msg::Ping(9), 128);
        let mut got = 0;
        s.run(|_, _| {
            got += 1;
            0
        });
        assert_eq!(got, 4);
        assert_eq!(s.stats().messages, 4);
        assert_eq!(s.stats().bytes, 4 * 128);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let order = |seed_msgs: &[(NodeId, u32)]| {
            let mut s = sim(3);
            for &(to, x) in seed_msgs {
                s.send(0, to, Msg::Ping(x), 0);
            }
            let mut seen = Vec::new();
            s.run(|_, d| {
                if let Msg::Ping(x) = d.msg {
                    seen.push(x);
                }
                0
            });
            seen
        };
        let a = order(&[(1, 10), (2, 20), (1, 30)]);
        let b = order(&[(1, 10), (2, 20), (1, 30)]);
        assert_eq!(a, b, "same schedule must replay identically");
        assert_eq!(a, vec![10, 20, 30], "FIFO among simultaneous arrivals");
    }

    #[test]
    fn send_at_schedules_future_departures() {
        let mut s = sim(2);
        s.send_at(1_000_000, 0, 1, Msg::Ping(1), 0);
        s.send_at(0, 0, 1, Msg::Ping(2), 0);
        let mut seen = Vec::new();
        s.run(|_, d| {
            if let Msg::Ping(x) = d.msg {
                seen.push((x, d.at));
            }
            0
        });
        assert_eq!(seen[0].0, 2);
        assert_eq!(seen[1].0, 1);
        assert!(seen[1].1 >= 1_000_000);
    }

    #[test]
    fn reset_clears_counters() {
        let mut s = sim(2);
        s.send(0, 1, Msg::Ping(0), 10);
        s.run(|_, _| 0);
        assert_ne!(s.stats().messages, 0);
        s.reset();
        assert_eq!(s.stats(), NetStats::default());
        assert_eq!(s.now(), 0);
    }

    #[test]
    #[should_panic]
    fn reset_with_pending_events_panics() {
        let mut s = sim(2);
        s.send(0, 1, Msg::Ping(0), 0);
        s.reset();
    }

    #[test]
    #[should_panic]
    fn unknown_destination_panics() {
        let mut s = sim(2);
        s.send(0, 7, Msg::Ping(0), 0);
    }
}
