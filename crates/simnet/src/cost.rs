//! The latency cost model.
//!
//! Charges are in nanoseconds and deliberately simple: a query's
//! simulated latency is dominated by (a) how many network hops it
//! crosses and (b) how many index nodes / records / Bloom filters it
//! touches. These are exactly the quantities SmartStore's design
//! minimizes relative to the baselines, so the model preserves the
//! paper's comparative structure.

/// Nanosecond charges for simulated operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One-way network latency per message (ns). Default 100 µs — a
    /// commodity-Ethernet RPC in the 2009 era the paper targets.
    pub hop_latency_ns: u64,
    /// Per-byte wire cost (ns/byte). Default ≈ 1 Gb/s.
    pub per_byte_ns: f64,
    /// CPU cost to dispatch/handle one message (ns).
    pub per_msg_cpu_ns: u64,
    /// Cost to probe one index node (R-tree node or B+-tree node).
    pub per_index_node_ns: u64,
    /// Cost to examine one metadata record.
    pub per_record_ns: u64,
    /// Cost to probe one Bloom filter.
    pub per_filter_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            hop_latency_ns: 100_000, // 100 µs RPC
            per_byte_ns: 1.0,        // ~1 GB/s effective
            per_msg_cpu_ns: 5_000,
            per_index_node_ns: 2_000,
            per_record_ns: 200,
            per_filter_ns: 500,
        }
    }
}

impl CostModel {
    /// Total wire time for a message of `bytes` bytes.
    pub fn wire_ns(&self, bytes: usize) -> u64 {
        self.hop_latency_ns + (self.per_byte_ns * bytes as f64) as u64
    }

    /// Local processing time for probing `nodes` index nodes and
    /// scanning `records` records.
    pub fn probe_ns(&self, nodes: usize, records: usize) -> u64 {
        self.per_index_node_ns * nodes as u64 + self.per_record_ns * records as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_cost_scales_with_bytes() {
        let c = CostModel::default();
        assert_eq!(c.wire_ns(0), 100_000);
        assert_eq!(c.wire_ns(1000), 101_000);
    }

    #[test]
    fn probe_cost_linear() {
        let c = CostModel::default();
        assert_eq!(c.probe_ns(0, 0), 0);
        assert_eq!(c.probe_ns(3, 10), 3 * 2_000 + 10 * 200);
    }
}
