//! Deterministic discrete-event cluster simulator.
//!
//! The paper's prototype runs on "a cluster of 60 storage units", each
//! an Intel Core 2 Duo with 2 GB RAM and "high-speed network
//! connections" (§5.1). This crate is the testbed substitute: a
//! discrete-event simulation of N storage-unit servers exchanging
//! messages over a uniform-latency network, with a calibrated cost model
//! for message dispatch, index probes and record scans.
//!
//! Absolute times do not (and are not meant to) match the authors'
//! hardware; the experiments compare *systems on the same simulator*, so
//! relative orderings — the paper's actual findings — carry over.
//! See DESIGN.md §2.
//!
//! * [`CostModel`] — nanosecond charges per hop / message / probe;
//! * [`Simulator`] — event queue, per-node busy tracking, message and
//!   byte counters;
//! * [`Simulator::run`]-style usage: callers pump events with a handler
//!   closure and read [`NetStats`] + completion times afterwards.

pub mod cost;
pub mod sim;

pub use cost::CostModel;
pub use sim::{Delivery, NetStats, NodeId, SimTime, Simulator};
