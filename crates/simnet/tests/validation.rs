//! Simulator validation: the event-driven kernel must agree with
//! closed-form FIFO queueing on batch workloads, and replay must be
//! deterministic under permuted (but time-equivalent) schedules.

use smartstore_simnet::{CostModel, Simulator};

#[derive(Clone, Debug)]
struct QueryJob {
    id: usize,
    service_ns: u64,
}

/// Closed-form FIFO completion times for jobs arriving at t=0 on one
/// server with per-message dispatch cost.
fn analytic_fifo(jobs: &[QueryJob], dispatch: u64, arrival: u64) -> Vec<u64> {
    let mut t = 0u64;
    let mut out = Vec::new();
    for j in jobs {
        let start = arrival.max(t);
        t = start + dispatch + j.service_ns;
        out.push(t);
    }
    out
}

#[test]
fn event_kernel_matches_analytic_fifo() {
    let cost = CostModel::default();
    let jobs: Vec<QueryJob> = (0..20)
        .map(|i| QueryJob {
            id: i,
            service_ns: 1_000 * (i as u64 % 7 + 1),
        })
        .collect();

    let mut sim: Simulator<QueryJob> = Simulator::new(2, cost);
    for j in &jobs {
        sim.send(0, 1, j.clone(), 64);
    }
    let mut completions = vec![0u64; jobs.len()];
    sim.run(|_, d| {
        let service = d.msg.service_ns;
        completions[d.msg.id] = d.at + cost.per_msg_cpu_ns + service;
        service
    });

    let arrival = cost.wire_ns(64);
    let expect = analytic_fifo(&jobs, cost.per_msg_cpu_ns, arrival);
    assert_eq!(
        completions, expect,
        "kernel must reproduce FIFO queueing exactly"
    );
}

#[test]
fn parallel_servers_overlap_work() {
    let cost = CostModel::default();
    let mut sim: Simulator<QueryJob> = Simulator::new(9, cost);
    // One job per server (sent from node 0 to 1..9).
    for i in 0..8usize {
        sim.send(
            0,
            i + 1,
            QueryJob {
                id: i,
                service_ns: 50_000,
            },
            0,
        );
    }
    let mut last_done = 0u64;
    sim.run(|s, d| {
        let done = d.at + s.cost().per_msg_cpu_ns + d.msg.service_ns;
        last_done = last_done.max(done);
        d.msg.service_ns
    });
    // All jobs overlap: makespan ≈ one wire + dispatch + service.
    let serial_estimate = 8 * (cost.per_msg_cpu_ns + 50_000);
    assert!(
        last_done < serial_estimate,
        "parallel servers must beat serial time: {last_done} vs {serial_estimate}"
    );
    assert_eq!(last_done, cost.wire_ns(0) + cost.per_msg_cpu_ns + 50_000);
}

#[test]
fn message_and_byte_accounting_is_exact() {
    let cost = CostModel::default();
    let mut sim: Simulator<u32> = Simulator::new(4, cost);
    sim.send(0, 1, 1, 100);
    sim.send(1, 2, 2, 200);
    sim.send(2, 2, 3, 999); // self-send: free
    sim.multicast(0, &[1, 2, 3], &7, 10);
    sim.run(|_, _| 0);
    let stats = sim.stats();
    assert_eq!(stats.messages, 5);
    assert_eq!(stats.bytes, 100 + 200 + 3 * 10);
}

#[test]
fn identical_schedules_replay_identically() {
    let run = || {
        let mut sim: Simulator<usize> = Simulator::new(3, CostModel::default());
        for i in 0..50 {
            sim.send_at((i * 997) as u64, 0, 1 + i % 2, i, i % 13);
        }
        let mut order = Vec::new();
        sim.run(|s, d| {
            order.push((d.msg, d.at));
            // Every 5th original message triggers one follow-up
            // (follow-ups themselves, ≥1000, do not cascade).
            if d.msg % 5 == 0 && d.msg < 1000 {
                s.send(d.to, (d.to + 1) % 3, d.msg + 1000, 8);
            }
            1_000
        });
        (order, sim.stats())
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a, b, "event order and timing must be deterministic");
    assert_eq!(sa, sb);
}
