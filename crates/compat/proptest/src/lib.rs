//! Workspace-local, dependency-free stand-in for the `proptest` API
//! subset this repository's property tests use.
//!
//! The build environment has no crate-registry access, so this crate
//! reimplements the pieces the tests rely on: the [`strategy::Strategy`]
//! trait with range / tuple / string-pattern / collection strategies and
//! `prop_map`, `any::<T>()`, `prop::sample::Index`, the `proptest!`
//! macro, and the `prop_assert*` family. Cases are sampled from a
//! deterministic per-case RNG; there is **no shrinking** — a failure
//! reports the case number so it can be replayed (case `i` always draws
//! the same values).

pub mod strategy {
    use rand::rngs::StdRng;

    /// A source of random values of one type (no shrinking).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String strategy from a simplified regex pattern: one character
    /// class with an optional `{m}` / `{m,n}` repetition, e.g.
    /// `"[a-z0-9_/]{1,40}"`; any other pattern is produced literally.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            use rand::Rng as _;
            let (class, lo, hi) = match parse_class_pattern(self) {
                Some(p) => p,
                None => return (*self).to_string(),
            };
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| class[rng.gen_range(0..class.len())])
                .collect()
        }
    }

    /// Parses `[<chars>]{m,n}` into (alphabet, m, n); `None` when the
    /// pattern is not of that shape.
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let body: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(body[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    use super::sample::Index;
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = rng.gen::<f64>() * 2.0 - 1.0;
            let e = rng.gen_range(-64i32..64) as f64;
            m * e.exp2()
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            Index::new(rng.gen::<u64>())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    /// A deferred collection index: stores raw entropy, resolved against
    /// a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Wraps raw entropy.
        pub fn new(raw: u64) -> Self {
            Self(raw)
        }

        /// Resolves to an index in `0..len`.
        ///
        /// # Panics
        /// If `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index: empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "SizeRange: empty range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with a sampled length.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<E::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    /// Per-test configuration (subset of proptest's `Config`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 48 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(&'static str),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic per-case RNG: case `i` of every test draws from the
    /// same stream, so failures are replayable by case number.
    pub fn rng_for_case(case: u32) -> StdRng {
        StdRng::seed_from_u64(0x70726f_70746573u64 ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of proptest's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests. Supports the subset of proptest's surface
/// used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(x in 0usize..10, v in prop::collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} == {:?}",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} == {:?}: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {:?} != {:?}",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {:?} != {:?}: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..=2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..=2.5).contains(&y));
        }

        #[test]
        fn vec_and_string_strategies(
            keys in prop::collection::vec("[a-c0-1_]{2,5}", 1..20),
            fixed in prop::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            for k in &keys {
                prop_assert!((2..=5).contains(&k.len()), "bad len {}", k.len());
                prop_assert!(k.chars().all(|c| "abc01_".contains(c)), "bad char in {k}");
            }
        }

        #[test]
        fn tuples_map_and_index(
            (a, b) in (0u64..5, 10u64..15).prop_map(|(x, y)| (y, x)),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((10..15).contains(&a) && b < 5);
            let pick = idx.index(7);
            prop_assert!(pick < 7);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy as _;
        let s = (0u64..1000, "[a-z]{1,8}");
        let a: Vec<_> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::rng_for_case(c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
