//! The work-stealing thread pool.
//!
//! Architecture: a pool owns `threads − 1` OS worker threads (the
//! caller of a parallel operation is always the `threads`-th
//! participant) and a **global injector** — a mutex-protected FIFO of
//! type-erased jobs that workers block on. Data-parallel operations do
//! not queue one job per item; instead a *drive* publishes a single
//! shared chunk counter and enough job handles to invite the workers,
//! and every participant (caller included) **steals chunks** from that
//! counter with a lock-free `fetch_add` until the range is exhausted.
//! This "injector + cooperative chunk stealing" scheme gives the
//! load-balancing benefit of per-worker deques for the regular
//! iteration spaces this workspace parallelizes, with no allocation
//! per task and no unbounded queues.
//!
//! Determinism: chunk boundaries depend only on the *length* of the
//! iteration space (never on the thread count — see [`chunking`]), and
//! per-chunk partial results are always combined in chunk order, so
//! every parallel result — including floating-point reductions — is
//! bit-identical across thread counts, including `threads = 1`.
//!
//! Panic policy: a panic inside any task is caught on the executing
//! worker, the operation is cancelled (no further chunks are dealt),
//! and the payload is re-thrown on the calling thread once every
//! in-flight participant has retired — matching rayon's contract.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A queued unit of work. `run` is invoked at most once per queue
/// entry; shared state (chunk counters, result slots) lives behind the
/// `Arc` so multiple entries may cooperate on one logical operation.
trait Job: Send + Sync {
    fn run(self: Arc<Self>);
}

/// Erases the borrow lifetime of a job so it can sit in the 'static
/// injector queue.
///
/// # Safety
/// The caller must not return (releasing the borrows the job captures)
/// until the job is *resolved*: either executed to completion, or
/// marked expired/claimed such that any later `run` is a no-op that
/// never dereferences the borrowed data.
unsafe fn erase_job<'a>(job: Arc<dyn Job + 'a>) -> Arc<dyn Job + 'static> {
    std::mem::transmute(job)
}

// ---------------------------------------------------------------------------
// Registry: the shared core of a pool (injector queue + worker parking).
// ---------------------------------------------------------------------------

struct Registry {
    queue: Mutex<QueueState>,
    /// Workers park here when the injector is empty.
    work_cv: Condvar,
    /// Logical parallelism: worker threads + the calling thread.
    threads: usize,
}

struct QueueState {
    jobs: VecDeque<Arc<dyn Job>>,
    shutdown: bool,
}

impl Registry {
    fn new(threads: usize) -> Self {
        Self {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            threads,
        }
    }

    fn push(&self, job: Arc<dyn Job>) {
        self.queue.lock().unwrap().jobs.push_back(job);
        self.work_cv.notify_one();
    }

    /// Enqueues `n` handles to the same cooperative job.
    fn push_copies(&self, job: &Arc<dyn Job>, n: usize) {
        if n == 0 {
            return;
        }
        let mut q = self.queue.lock().unwrap();
        for _ in 0..n {
            q.jobs.push_back(Arc::clone(job));
        }
        drop(q);
        self.work_cv.notify_all();
    }

    fn try_pop(&self) -> Option<Arc<dyn Job>> {
        self.queue.lock().unwrap().jobs.pop_front()
    }

    /// Worker main loop: drain the injector, park when it is empty,
    /// exit once shut down *and* drained.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(j) = q.jobs.pop_front() {
                        break Some(j);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = self.work_cv.wait(q).unwrap();
                }
            };
            match job {
                Some(j) => j.run(),
                None => return,
            }
        }
    }
}

thread_local! {
    /// The pool the current thread belongs to (worker threads) or has
    /// `install`ed (caller threads). `None` ⇒ the global pool.
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

fn current_registry() -> Arc<Registry> {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        Arc::clone(
            &GLOBAL
                .get_or_init(|| ThreadPool::new(default_thread_count()))
                .registry,
        )
    })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Parses a `RAYON_NUM_THREADS`-style value: a positive integer wins,
/// anything else (including `0`, rayon's "use the default") is ignored.
fn parse_thread_env(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The default pool size: `RAYON_NUM_THREADS` if set to a positive
/// integer, otherwise the hardware parallelism.
pub fn default_thread_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_thread_env)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Number of logical threads in the current (installed or global) pool.
pub fn current_num_threads() -> usize {
    current_registry().threads
}

// ---------------------------------------------------------------------------
// ThreadPool + builder.
// ---------------------------------------------------------------------------

/// Error from [`ThreadPoolBuilder::build`] /
/// [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds [`ThreadPool`]s; mirrors rayon's builder surface.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the logical thread count; `0` (the default) means
    /// `RAYON_NUM_THREADS` / hardware parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolve(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            default_thread_count()
        }
    }

    /// Builds a standalone pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool::new(self.resolve()))
    }

    /// Installs the built pool as the process-global default. Fails if
    /// the global pool was already initialized (by an earlier call or
    /// lazily by a parallel operation).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = ThreadPool::new(self.resolve());
        GLOBAL.set(pool).map_err(|_| ThreadPoolBuildError {
            msg: "the global thread pool has already been initialized",
        })
    }
}

/// A work-stealing thread pool (see the module docs for the scheme).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.threads)
            .finish()
    }
}

impl ThreadPool {
    fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let registry = Arc::new(Registry::new(threads));
        let handles = (0..threads - 1)
            .map(|i| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("shim-rayon-{i}"))
                    .spawn(move || {
                        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&reg)));
                        reg.worker_loop();
                    })
                    .expect("shim-rayon: failed to spawn worker thread")
            })
            .collect();
        Self { registry, handles }
    }

    /// Logical parallelism of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.threads
    }

    /// Runs `f` with this pool as the current pool: every parallel
    /// operation inside (including nested ones) executes here.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.registry)));
        let _restore = Restore(prev);
        f()
    }

    /// [`join`] on this pool.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(oper_a, oper_b))
    }

    /// [`scope`] on this pool.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.install(|| scope(op))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.queue.lock().unwrap().shutdown = true;
        self.registry.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Chunked drives: the engine under every parallel iterator.
// ---------------------------------------------------------------------------

/// Upper bound on chunks per drive; plenty for any realistic thread
/// count while keeping the dealing overhead to a few hundred atomic
/// increments.
const MAX_CHUNKS: usize = 256;

/// Length-only chunk policy: `(n_chunks, chunk_size)`. Independent of
/// the thread count so that per-chunk partial results combined in
/// chunk order are deterministic for a given input length.
pub fn chunking(len: usize) -> (usize, usize) {
    if len == 0 {
        return (0, 1);
    }
    let chunk = len.div_ceil(len.min(MAX_CHUNKS));
    (len.div_ceil(chunk), chunk)
}

/// Type-erased chunk body pointer (`'static`-laundered; guarded by the
/// expiry protocol in [`run_chunked`]).
struct BodyPtr(*const (dyn Fn(usize, Range<usize>) + Sync));
// SAFETY: the pointee is `Sync` and outlives every dereference — workers
// check the drive's expiry under its lock before touching the pointer,
// and `run_chunked` only returns once `active == 0`.
unsafe impl Send for BodyPtr {}
// SAFETY: same expiry protocol as `Send` above; shared access is to a
// `Sync` closure.
unsafe impl Sync for BodyPtr {}

struct DriveState {
    /// Workers currently inside [`drive_help`] for this drive.
    active: usize,
    /// Chunks fully processed.
    completed: usize,
    /// First panic payload from any chunk.
    panic: Option<PanicPayload>,
    /// Set by the caller once the drive is over; late-popped job
    /// handles must not touch `body` after this.
    expired: bool,
}

struct DriveShared {
    state: Mutex<DriveState>,
    cv: Condvar,
    /// Next chunk to deal (lock-free).
    next: AtomicUsize,
    n_chunks: usize,
    chunk: usize,
    len: usize,
    body: BodyPtr,
}

struct DriveJob {
    shared: Arc<DriveShared>,
}

impl Job for DriveJob {
    fn run(self: Arc<Self>) {
        let d = &self.shared;
        {
            let mut st = d.state.lock().unwrap();
            if st.expired {
                return;
            }
            st.active += 1;
        }
        drive_help(d);
        let mut st = d.state.lock().unwrap();
        st.active -= 1;
        drop(st);
        d.cv.notify_all();
    }
}

/// Steals and executes chunks until the counter is exhausted (or a
/// panic cancels the drive). Runs on workers *and* the caller.
fn drive_help(d: &DriveShared) {
    loop {
        let c = d.next.fetch_add(1, Ordering::Relaxed);
        if c >= d.n_chunks {
            return;
        }
        let start = c * d.chunk;
        let end = (start + d.chunk).min(d.len);
        // Safety: `expired` is false while any participant is inside
        // this loop (workers register in `active` first; the caller
        // only expires after `active == 0`), so the borrow is live.
        let body = unsafe { &*d.body.0 };
        let result = catch_unwind(AssertUnwindSafe(|| body(c, start..end)));
        let mut st = d.state.lock().unwrap();
        match result {
            Ok(()) => st.completed += 1,
            Err(p) => {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
                // Cancel: stop dealing the remaining chunks.
                d.next.fetch_max(d.n_chunks, Ordering::Relaxed);
                st.completed += 1;
            }
        }
        let finished = st.completed;
        let cancelled = st.panic.is_some();
        drop(st);
        if finished == d.n_chunks || cancelled {
            d.cv.notify_all();
        }
    }
}

/// Runs `body(chunk_index, item_range)` over `0..len`, split by
/// [`chunking`], across the current pool. Blocks until every chunk
/// either ran or was cancelled by a panic, then propagates the first
/// panic. With one logical thread (or a single chunk) the chunks run
/// inline on the caller — same chunk structure, same results.
pub fn run_chunked(len: usize, body: &(dyn Fn(usize, Range<usize>) + Sync)) {
    let (n_chunks, chunk) = chunking(len);
    if n_chunks == 0 {
        return;
    }
    let reg = current_registry();
    let helpers = reg.threads.saturating_sub(1).min(n_chunks - 1);
    if helpers == 0 {
        for c in 0..n_chunks {
            let start = c * chunk;
            body(c, start..(start + chunk).min(len));
        }
        return;
    }

    let body_static: &'static (dyn Fn(usize, Range<usize>) + Sync) =
        // SAFETY: the lifetime launder is sound because this function
        // does not return until `active == 0` and the drive is marked
        // expired, so no worker can dereference `body` after the
        // borrow ends.
        unsafe { std::mem::transmute(body) };
    let shared = Arc::new(DriveShared {
        state: Mutex::new(DriveState {
            active: 0,
            completed: 0,
            panic: None,
            expired: false,
        }),
        cv: Condvar::new(),
        next: AtomicUsize::new(0),
        n_chunks,
        chunk,
        len,
        body: BodyPtr(body_static as *const _),
    });
    let job: Arc<dyn Job> = Arc::new(DriveJob {
        shared: Arc::clone(&shared),
    });
    reg.push_copies(&job, helpers);

    drive_help(&shared);

    let mut st = shared.state.lock().unwrap();
    while !(st.active == 0 && (st.completed == n_chunks || st.panic.is_some())) {
        st = shared.cv.wait(st).unwrap();
    }
    st.expired = true;
    let panic = st.panic.take();
    drop(st);
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

struct JoinState<B, RB> {
    /// `Some` until a worker (or the reclaiming caller) takes it.
    func: Option<B>,
    result: Option<std::thread::Result<RB>>,
}

struct JoinJob<B, RB> {
    state: Mutex<JoinState<B, RB>>,
    cv: Condvar,
}

impl<B, RB> Job for JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn run(self: Arc<Self>) {
        let func = self.state.lock().unwrap().func.take();
        if let Some(f) = func {
            let r = catch_unwind(AssertUnwindSafe(f));
            self.state.lock().unwrap().result = Some(r);
            self.cv.notify_all();
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both
/// results. `oper_b` is offered to the pool; the caller runs `oper_a`
/// inline and then either *reclaims* `oper_b` (if no worker picked it
/// up — so `join` never waits on a saturated queue) or waits for the
/// worker to finish it. Panics in either closure propagate to the
/// caller, `oper_a`'s taking precedence.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = current_registry();
    if reg.threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let job = Arc::new(JoinJob {
        state: Mutex::new(JoinState {
            func: Some(oper_b),
            result: None,
        }),
        cv: Condvar::new(),
    });
    // Safety: resolved before return — the caller below either
    // reclaims `func` or waits for `result`; after that the queued
    // handle's `run` is a no-op on `None`.
    reg.push(unsafe { erase_job(Arc::clone(&job) as Arc<dyn Job + '_>) });

    let ra = catch_unwind(AssertUnwindSafe(oper_a));

    let rb = {
        let mut st = job.state.lock().unwrap();
        if let Some(f) = st.func.take() {
            drop(st);
            catch_unwind(AssertUnwindSafe(f))
        } else {
            while st.result.is_none() {
                st = job.cv.wait(st).unwrap();
            }
            st.result.take().unwrap()
        }
    };

    match (ra, rb) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(p), _) => resume_unwind(p),
        (Ok(_), Err(p)) => resume_unwind(p),
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

struct ScopeShared {
    registry: Arc<Registry>,
    state: Mutex<ScopeState>,
    cv: Condvar,
}

struct ScopeState {
    pending: usize,
    panic: Option<PanicPayload>,
}

/// A fork-join scope: tasks spawned on it may borrow anything that
/// outlives `'scope`; [`scope`] does not return until all of them
/// completed.
pub struct Scope<'scope> {
    shared: Arc<ScopeShared>,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

struct SpawnJob {
    task: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    scope: Arc<ScopeShared>,
}

impl Job for SpawnJob {
    fn run(self: Arc<Self>) {
        let task = self.task.lock().unwrap().take();
        if let Some(t) = task {
            let r = catch_unwind(AssertUnwindSafe(t));
            let mut st = self.scope.state.lock().unwrap();
            if let Err(p) = r {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.pending -= 1;
            drop(st);
            self.scope.cv.notify_all();
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a task onto the pool. On a single-thread pool the task
    /// runs immediately, inline.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let shared = Arc::clone(&self.shared);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let inner = Scope {
                shared: Arc::clone(&shared),
                _marker: std::marker::PhantomData,
            };
            body(&inner);
        });
        if self.shared.registry.threads <= 1 {
            // No workers: run inline (the scope lifetime is live here).
            task();
            return;
        }
        self.shared.state.lock().unwrap().pending += 1;
        // Safety: `scope()` blocks until `pending == 0`, i.e. until
        // this boxed task (whose captures live at least `'scope`) has
        // been executed; a queued handle left behind afterwards holds
        // only a `None` slot.
        let task_static: Box<dyn FnOnce() + Send> = unsafe { std::mem::transmute(task) };
        let job = Arc::new(SpawnJob {
            task: Mutex::new(Some(task_static)),
            scope: Arc::clone(&self.shared),
        });
        self.shared.registry.push(job);
    }
}

/// Creates a scope in the current pool, runs `op` in it, and waits for
/// every spawned task. While waiting, the caller helps drain the
/// injector queue. Panics from `op` or any task are propagated (`op`'s
/// first).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let reg = current_registry();
    let shared = Arc::new(ScopeShared {
        registry: Arc::clone(&reg),
        state: Mutex::new(ScopeState {
            pending: 0,
            panic: None,
        }),
        cv: Condvar::new(),
    });
    let s = Scope {
        shared: Arc::clone(&shared),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));

    // Wait for spawned tasks, lending a hand to the queue meanwhile.
    loop {
        if shared.state.lock().unwrap().pending == 0 {
            break;
        }
        if let Some(job) = reg.try_pop() {
            job.run();
            continue;
        }
        let st = shared.state.lock().unwrap();
        if st.pending == 0 {
            break;
        }
        // Re-checked under the lock, so a completion between the
        // `try_pop` and here cannot be missed.
        let _unused = shared.cv.wait(st).unwrap();
    }

    let task_panic = shared.state.lock().unwrap().panic.take();
    match result {
        Err(p) => resume_unwind(p),
        Ok(r) => {
            if let Some(p) = task_panic {
                resume_unwind(p);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunking_is_length_only_and_covers() {
        for len in [0usize, 1, 2, 7, 255, 256, 257, 1000, 100_000] {
            let (n, c) = chunking(len);
            if len == 0 {
                assert_eq!(n, 0);
                continue;
            }
            assert!(n <= MAX_CHUNKS);
            assert!((n - 1) * c < len && n * c >= len, "len={len} n={n} c={c}");
        }
    }

    #[test]
    fn run_chunked_visits_every_index_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let len = 10_000;
            let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
            run_chunked(len, &|_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn run_chunked_propagates_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_chunked(1000, &|_, range| {
                    if range.contains(&500) {
                        panic!("boom at 500");
                    }
                });
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom at 500");
    }

    #[test]
    fn join_runs_both_and_nests() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn join_propagates_b_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 1 + 1, || -> u32 { panic!("b failed") }))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn scope_completes_all_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let count = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..64 {
                    s.spawn(|s2| {
                        count.fetch_add(1, Ordering::Relaxed);
                        s2.spawn(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| scope(|s| s.spawn(|_| panic!("task died"))))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        pool.install(|| {
            let (a, b) = join(|| 2, || 3);
            assert_eq!(a + b, 5);
            let n = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            });
            assert_eq!(n.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn install_sets_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 5);
    }

    #[test]
    fn env_parse_rules() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 8 "), Some(8));
        assert_eq!(parse_thread_env("0"), None);
        assert_eq!(parse_thread_env("lots"), None);
    }

    #[test]
    fn pool_drop_joins_workers_cleanly() {
        for _ in 0..10 {
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            pool.install(|| {
                run_chunked(100, &|_, _range| {});
            });
            drop(pool);
        }
    }
}
