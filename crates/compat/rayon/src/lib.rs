//! Workspace-local, dependency-free implementation of the `rayon` API
//! subset this repository uses — backed by a **real work-stealing
//! thread pool**, not a sequential fallback.
//!
//! The build environment has no crate-registry access, so this crate
//! reimplements, on top of `std::thread` + atomics only:
//!
//! * [`prelude`] — `into_par_iter` / `par_iter` with `map`, `filter`,
//!   `enumerate`, `for_each`, `sum`, `count`, order-preserving
//!   `collect`, plus `par_chunks` / `par_chunks_mut` on slices;
//! * [`join`] and [`scope`] for fork-join task parallelism;
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] with `install`, honoring
//!   `RAYON_NUM_THREADS` for the global pool.
//!
//! Scheduling is a global injector plus cooperative chunk stealing
//! (see [`mod@pool`]); panics inside parallel regions propagate to the
//! caller. Two deliberate guarantees go *beyond* rayon:
//!
//! 1. **Order preservation** — `collect` always yields sequential
//!    order (rayon guarantees this for indexed iterators; here it
//!    holds universally).
//! 2. **Bit-identical determinism** — chunk boundaries depend only on
//!    input length, and partial results combine in chunk order, so
//!    every result (floating-point reductions included) is identical
//!    across thread counts, including a 1-thread pool. The workspace's
//!    grouping/LSI pipelines rely on this for reproducibility.
//!
//! Swapping this shim for the actual `rayon` remains a one-line change
//! in `[workspace.dependencies]`.

pub mod iter;
pub mod pool;

pub use pool::{
    current_num_threads, default_thread_count, join, scope, Scope, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits needed to call parallel-iterator methods.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_order_preserving() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 198);
        let w: Vec<(usize, i32)> = vec![5i32, 7, 9].into_par_iter().enumerate().collect();
        assert_eq!(w, vec![(0, 5), (1, 7), (2, 9)]);
    }

    #[test]
    fn global_pool_works_without_setup() {
        // Exercises the lazily-initialized global pool (size taken
        // from RAYON_NUM_THREADS / hardware parallelism).
        let n: usize = (0..10_000usize)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .count();
        assert_eq!(n, 1429);
        assert!(crate::current_num_threads() >= 1);
    }
}
