//! Workspace-local, dependency-free stand-in for the `rayon` API subset
//! this repository uses.
//!
//! The build environment has no crate-registry access, so
//! `into_par_iter()` here simply yields the ordinary sequential
//! iterator: the call sites keep their shape (and can switch back to
//! real data parallelism by swapping this shim for the actual `rayon`
//! in the workspace manifests) while the semantics stay identical —
//! rayon's parallel `collect` preserves order exactly like the
//! sequential one.

pub mod prelude {
    /// Sequential re-interpretation of rayon's `IntoParallelIterator`:
    /// the "parallel" iterator *is* the standard iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the item iterator (sequential fallback).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_order_preserving() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 198);
        let w: Vec<(usize, i32)> = vec![5i32, 7, 9].into_par_iter().enumerate().collect();
        assert_eq!(w, vec![(0, 5), (1, 7), (2, 9)]);
    }
}
