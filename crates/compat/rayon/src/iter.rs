//! Parallel iterators over the pool in [`crate::pool`].
//!
//! The pipeline abstraction is [`Chunked`]: a value that knows the
//! length of its index space and can evaluate any sub-range of it, in
//! order, into a sink. Sources (ranges, vectors, slices, chunked
//! slices) and adapters (`map`, `filter`, `enumerate`) compose by
//! wrapping each other's `eval`; terminal operations (`collect`,
//! `for_each`, `sum`, `count`) hand the composed pipeline to
//! [`run_chunked`], which deals disjoint index ranges to the pool.
//!
//! Ordering and determinism: chunk boundaries depend only on the
//! length (see [`crate::pool::chunking`]), items within a chunk are
//! produced in index order, and every combining terminal assembles
//! per-chunk partials in chunk order — so `collect` preserves order
//! exactly and even floating-point `sum` is bit-identical across
//! thread counts.

use crate::pool::run_chunked;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A parallel pipeline stage: an indexed space of items that can be
/// evaluated range-by-range.
///
/// `len` is the size of the *index space*, not necessarily the number
/// of items produced (`filter` keeps the index space and drops items).
/// `enumerate` numbers the index space, so — exactly as with rayon's
/// indexed iterators — it must not be applied downstream of `filter`.
///
/// # Safety
/// Implementations may *move* items out of owned storage by index
/// (see [`VecIntoIter`]). Callers must therefore evaluate disjoint
/// ranges only, each index at most once per pipeline value. The
/// terminals in this module uphold this via [`run_chunked`].
pub unsafe trait Chunked: Send + Sync + Sized {
    /// The produced item type.
    type Item: Send;

    /// Size of the index space.
    fn len(&self) -> usize;

    /// True if the index space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates positions `range` in order, feeding each produced
    /// item to `sink`.
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(Self::Item));
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
#[derive(Clone, Debug)]
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        // SAFETY: `eval` computes each value from `start + index` and
        // owns nothing; indexes are stateless, so any evaluation
        // pattern is sound.
        unsafe impl Chunked for RangeIter<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut($t)) {
                for i in range {
                    sink(self.start + i as $t);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}

impl_range_source!(usize, u64, u32, i64, i32);

/// Parallel draining iterator over an owned `Vec<T>`.
///
/// Items are moved out exactly once during the terminal drive. Any
/// item *not* consumed — because a sibling chunk panicked mid-drive,
/// or because the pipeline value was dropped without running a
/// terminal at all — is **leaked** (its `Drop` never runs; the buffer
/// itself is still freed). Leaking instead of dropping keeps the
/// concurrent move-out free of per-item consumption tracking and can
/// never double-drop; real rayon drops unconsumed items, so avoid
/// relying on drop side effects of items fed through `into_par_iter`,
/// and always finish pipelines with a terminal operation.
pub struct VecIntoIter<T: Send> {
    data: Vec<ManuallyDrop<T>>,
}

// Safety: items are only moved out under the exactly-once contract of
// `Chunked::eval`; no shared mutation of the buffer itself occurs.
unsafe impl<T: Send> Sync for VecIntoIter<T> {}

// SAFETY: `eval` moves each item out of the `ManuallyDrop` buffer by
// index; the trait contract (disjoint ranges, each index at most once)
// makes every move unique, and `Drop` only frees indexes never evaluated.
unsafe impl<T: Send> Chunked for VecIntoIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.data.len()
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(T)) {
        for i in range {
            // Safety: each index is evaluated at most once (trait
            // contract), so this read is the unique move of item `i`.
            let item = unsafe { std::ptr::read(self.data.as_ptr().add(i)) };
            sink(ManuallyDrop::into_inner(item));
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIntoIter<T> {
        let mut v = ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        // Safety: `ManuallyDrop<T>` is `repr(transparent)` over `T`,
        // so the buffer can be reinterpreted element-wise; dropping
        // the resulting vec frees the buffer without dropping items.
        let data = unsafe { Vec::from_raw_parts(ptr.cast::<ManuallyDrop<T>>(), len, cap) };
        VecIntoIter { data }
    }
}

/// Parallel iterator over `&[T]`, yielding `&T`.
#[derive(Clone, Debug)]
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

// SAFETY: `eval` only hands out shared references into a `Sync`
// slice; nothing is moved, so any evaluation pattern is sound.
unsafe impl<'a, T: Sync> Chunked for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[range] {
            sink(item);
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over non-overlapping sub-slices of `&[T]`.
#[derive(Clone, Debug)]
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

// SAFETY: `eval` only hands out shared sub-slices of a `Sync` slice;
// nothing is moved, so any evaluation pattern is sound.
unsafe impl<'a, T: Sync> Chunked for Chunks<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a [T])) {
        for c in range {
            let start = c * self.size;
            let end = (start + self.size).min(self.slice.len());
            sink(&self.slice[start..end]);
        }
    }
}

/// Parallel iterator over non-overlapping mutable sub-slices.
pub struct ChunksMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: distinct chunk indexes map to disjoint sub-slices, and the
// exactly-once contract of `Chunked::eval` guarantees each index is
// evaluated by at most one thread.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
// SAFETY: same argument as `Send` above — disjoint chunk indexes mean
// shared handles never alias a sub-slice.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

// SAFETY: chunk index `c` maps to the disjoint sub-slice
// `[c*size, (c+1)*size)`; the trait contract evaluates each index at
// most once, so every `&mut` handed out is unique.
unsafe impl<'a, T: Send> Chunked for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a mut [T])) {
        for c in range {
            let start = c * self.size;
            let end = (start + self.size).min(self.len);
            // Safety: disjoint per chunk index (see impl-level note);
            // the pointer stays valid for `'a`.
            let s = unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) };
            sink(s);
        }
    }
}

/// `par_chunks` for slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element sub-slices (the last may
    /// be shorter). `size` must be non-zero.
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "par_chunks: chunk size must be non-zero");
        Chunks { slice: self, size }
    }
}

/// `par_chunks_mut` for slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-element mutable sub-slices (the
    /// last may be shorter). `size` must be non-zero.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// The [`ParallelIterator::map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<C, F> {
    base: C,
    f: F,
}

// SAFETY: indexes pass through 1:1 to the base pipeline, so the
// disjoint/at-most-once contract is inherited unchanged.
unsafe impl<C, F, R> Chunked for Map<C, F>
where
    C: Chunked,
    F: Fn(C::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        let f = &self.f;
        self.base.eval(range, &mut |item| sink(f(item)));
    }
}

/// The [`ParallelIterator::filter`] adapter.
#[derive(Clone, Debug)]
pub struct Filter<C, F> {
    base: C,
    f: F,
}

// SAFETY: indexes pass through 1:1 to the base pipeline (dropped
// items still consume their index), inheriting the base contract.
unsafe impl<C, F> Chunked for Filter<C, F>
where
    C: Chunked,
    F: Fn(&C::Item) -> bool + Send + Sync,
{
    type Item = C::Item;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut(C::Item)) {
        let f = &self.f;
        self.base.eval(range, &mut |item| {
            if f(&item) {
                sink(item);
            }
        });
    }
}

/// The [`ParallelIterator::enumerate`] adapter.
#[derive(Clone, Debug)]
pub struct Enumerate<C> {
    base: C,
}

// SAFETY: indexes pass through 1:1 to the base pipeline; the pair
// only adds the index itself, inheriting the base contract.
unsafe impl<C: Chunked> Chunked for Enumerate<C> {
    type Item = (usize, C::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, range: Range<usize>, sink: &mut dyn FnMut((usize, C::Item))) {
        let mut idx = range.start;
        self.base.eval(range.clone(), &mut |item| {
            sink((idx, item));
            idx += 1;
        });
        // An index-exact upstream yields exactly one item per index.
        // A filtered upstream would silently misnumber — the real
        // rayon rejects that at compile time, so fail loudly here.
        assert_eq!(
            idx, range.end,
            "enumerate() requires an index-exact upstream (one item per index); \
             do not apply it after filter()"
        );
    }
}

// ---------------------------------------------------------------------------
// Terminal operations + the user-facing traits.
// ---------------------------------------------------------------------------

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        run_chunked(iter.len(), &|chunk_idx, range| {
            let mut out = Vec::with_capacity(range.len());
            iter.eval(range, &mut |item| out.push(item));
            parts.lock().unwrap().push((chunk_idx, out));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(i, _)| i);
        let total = parts.iter().map(|(_, v)| v.len()).sum();
        let mut out = Vec::with_capacity(total);
        for (_, v) in parts {
            out.extend(v);
        }
        out
    }
}

/// The parallel-iterator operations. Blanket-implemented for every
/// [`Chunked`] pipeline stage.
pub trait ParallelIterator: Chunked {
    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps only items for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, f }
    }

    /// Pairs each item with its index. Must not be applied after
    /// [`ParallelIterator::filter`] (indexed iterators only — same
    /// restriction rayon enforces through its type system).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Calls `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_chunked(self.len(), &|_, range| {
            self.eval(range, &mut |item| f(item));
        });
    }

    /// Sums the items. Per-chunk partial sums are combined in chunk
    /// order, and chunking is length-only, so the result is identical
    /// for every thread count (sequential included).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts: Mutex<Vec<(usize, S)>> = Mutex::new(Vec::new());
        run_chunked(self.len(), &|chunk_idx, range| {
            let mut buf = Vec::with_capacity(range.len());
            self.eval(range, &mut |item| buf.push(item));
            let partial: S = buf.into_iter().sum();
            parts.lock().unwrap().push((chunk_idx, partial));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(i, _)| i);
        parts.into_iter().map(|(_, s)| s).sum()
    }

    /// Counts the produced items (after filtering).
    fn count(self) -> usize {
        let n = AtomicUsize::new(0);
        run_chunked(self.len(), &|_, range| {
            let mut local = 0usize;
            self.eval(range, &mut |_| local += 1);
            n.fetch_add(local, Ordering::Relaxed);
        });
        n.into_inner()
    }

    /// Collects into `C`, preserving item order exactly as the
    /// sequential iterator would.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

impl<C: Chunked> ParallelIterator for C {}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — borrowing conversion, implemented for anything whose
/// reference converts (slices, vectors).
pub trait IntoParallelRefIterator<'data> {
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a borrow).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPoolBuilder;

    fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn collect_preserves_order() {
        for t in [1, 2, 4, 8] {
            let v: Vec<usize> = with_pool(t, || {
                (0..10_000usize).into_par_iter().map(|x| x * 2).collect()
            });
            assert_eq!(v.len(), 10_000);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
        }
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let data: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let out: Vec<String> = with_pool(4, || {
            data.into_par_iter()
                .map(|mut s| {
                    s.push('!');
                    s
                })
                .collect()
        });
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], "item-0!");
        assert_eq!(out[499], "item-499!");
    }

    #[test]
    fn filter_then_count_and_collect() {
        let (n, v) = with_pool(4, || {
            let n = (0..1000usize)
                .into_par_iter()
                .filter(|x| x % 3 == 0)
                .count();
            let v: Vec<usize> = (0..1000usize)
                .into_par_iter()
                .filter(|x| x % 3 == 0)
                .collect();
            (n, v)
        });
        assert_eq!(n, 334);
        assert_eq!(v, (0..1000usize).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_matches_sequential() {
        let w: Vec<(usize, i32)> =
            with_pool(3, || vec![5i32, 7, 9].into_par_iter().enumerate().collect());
        assert_eq!(w, vec![(0, 5), (1, 7), (2, 9)]);
    }

    #[test]
    fn empty_and_singleton() {
        with_pool(4, || {
            let e: Vec<usize> = (0..0usize).into_par_iter().collect();
            assert!(e.is_empty());
            let e2: Vec<u8> = Vec::<u8>::new().into_par_iter().collect();
            assert!(e2.is_empty());
            let s: Vec<usize> = (7..8usize).into_par_iter().collect();
            assert_eq!(s, vec![7]);
            (0..0usize)
                .into_par_iter()
                .for_each(|_| panic!("must not run"));
        });
    }

    #[test]
    fn float_sum_bit_identical_across_thread_counts() {
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64 * 0.37).sin() / 7.3).collect();
        let sums: Vec<f64> = [1, 2, 4, 8]
            .iter()
            .map(|&t| with_pool(t, || data.par_iter().map(|&x| x * 1.000001).sum::<f64>()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn par_iter_over_slice_and_vec() {
        let data = vec![1u64, 2, 3, 4, 5];
        let s: u64 = with_pool(2, || data.par_iter().map(|&x| x * x).sum());
        assert_eq!(s, 55);
        let slice: &[u64] = &data;
        let s2: u64 = with_pool(2, || slice.par_iter().map(|&x| x).sum());
        assert_eq!(s2, 15);
    }

    #[test]
    fn par_chunks_sees_every_element_once() {
        let data: Vec<usize> = (0..1003).collect();
        let total: usize = with_pool(4, || {
            data.par_chunks(17).map(|c| c.iter().sum::<usize>()).sum()
        });
        assert_eq!(total, 1003 * 1002 / 2);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_rows() {
        let mut data = vec![0u64; 12 * 100];
        with_pool(4, || {
            data.par_chunks_mut(100)
                .enumerate()
                .for_each(|(row, chunk)| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (row * 1000 + j) as u64;
                    }
                });
        });
        for row in 0..12 {
            for j in 0..100 {
                assert_eq!(data[row * 100 + j], (row * 1000 + j) as u64);
            }
        }
    }

    #[test]
    fn panic_in_map_propagates_and_leaks_no_unsafety() {
        let data: Vec<Box<u32>> = (0..1000).map(Box::new).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(4, || {
                let _: Vec<u32> = data
                    .into_par_iter()
                    .map(|b| if *b == 777 { panic!("bad box") } else { *b })
                    .collect();
            })
        }));
        assert!(caught.is_err());
    }
}
