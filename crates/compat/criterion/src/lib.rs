//! Workspace-local, dependency-free stand-in for the `criterion` API
//! subset this repository's benchmarks use.
//!
//! The build environment has no crate-registry access, so this crate
//! provides a minimal wall-clock harness with the same call surface:
//! `Criterion::default()`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up briefly, then timed over a sample of iterations; the
//! mean, minimum and maximum per-iteration times are printed. Passing
//! `--quick` (or running under `cargo test`, which passes `--test`)
//! caps measurement time so CI stays fast.

use std::time::{Duration, Instant};

/// Re-export point for parity with criterion's `black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one untimed call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..iters {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API parity; the shim
    /// sizes iteration counts from measurement time instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement_time: self.criterion.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b.samples);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`
        // style arguments (and criterion itself special-cases `--test`):
        // keep those runs to a smoke-test budget.
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Self {
            measurement_time: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(300)
            },
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the target sample count (API parity; see group note).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Benchmarks `f` at top level.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group: either the criterion long form with
/// `name` / `config` / `targets`, or the short positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(std::time::Duration::from_millis(2));
        smoke(&mut c);
        c.bench_function("top", |b| b.iter(|| black_box(3u32).pow(2)));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
