//! Workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the small slice of the `rand 0.8` API the codebase uses
//! is reimplemented here: the [`Rng`]/[`SeedableRng`] traits and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! every simulation and test in the workspace. Stream values differ from
//! upstream `rand`, which no code here depends on (all tests are either
//! self-consistent or statistical).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their "natural" domain via
/// `rng.gen::<T>()` (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style unbiased bounded draw via 128-bit multiply.
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                // Span arithmetic in u64 so `..=MAX` of any width works.
                let span = (e as u64) - (s as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                s + ((0u64..span + 1).sample_from(rng)) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = (0u64..span).sample_from(rng);
                ((self.start as i64).wrapping_add(off as i64)) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i64).wrapping_sub(s as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = (0u64..=span).sample_from(rng);
                ((s as i64).wrapping_add(off as i64)) as $t
            }
        }
    )*};
}
impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "gen_range: empty range");
        s + f64::sample_standard(rng) * (e - s)
    }
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from a seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| rng.gen::<f64>())
            .inspect(|x| assert!((0.0..1.0).contains(x)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
