//! In-memory B+-tree with duplicate keys and linked leaves.

use std::cmp::Ordering;
use std::fmt::Debug;

/// Total-ordering wrapper for `f64` attribute values.
///
/// File-metadata attributes are floats; B+-tree keys need `Ord`. NaN is
/// rejected at construction so ordering is total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64Key(f64);

impl F64Key {
    /// Wraps a float key.
    ///
    /// # Panics
    /// If `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "F64Key: NaN is not a valid key");
        Self(v)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64Key {}
impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Debug)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        /// Sorted, duplicates allowed and adjacent.
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<usize>,
    },
}

/// An order-`B` B+-tree mapping `K` to possibly many `V`.
#[derive(Clone, Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree. `order` is the maximum number of keys per
    /// node; minimum occupancy is `order / 2`.
    ///
    /// # Panics
    /// If `order < 3`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "BPlusTree: order must be >= 3");
        Self {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated nodes (internal + leaf), the unit of the
    /// space-overhead accounting.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Inserts a key/value pair; duplicate keys are kept.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            let old_root = self.root;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_right_node))` when
    /// the child split.
    fn insert_rec(&mut self, node: usize, key: K, value: V) -> Option<(K, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                values.insert(pos, value);
                if keys.len() > self.order {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                if let Some((sep, right)) = self.insert_rec(child, key, value) {
                    if let Node::Internal { keys, children } = &mut self.nodes[node] {
                        // The new right node must sit immediately after
                        // the child that split; searching for `sep`
                        // would misplace it amid duplicate separators.
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > self.order {
                            return Some(self.split_internal(node));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let (sep, new_node) = match &mut self.nodes[node] {
            Node::Leaf { keys, values, next } => {
                let mid = keys.len() / 2;
                let rk: Vec<K> = keys.split_off(mid);
                let rv: Vec<V> = values.split_off(mid);
                let sep = rk[0].clone();
                let new_next = next.take();
                *next = Some(new_idx);
                (
                    sep,
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                        next: new_next,
                    },
                )
            }
            Node::Internal { .. } => unreachable!("split_leaf on internal node"),
        };
        self.nodes.push(new_node);
        (sep, new_idx)
    }

    fn split_internal(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let (sep, new_node) = match &mut self.nodes[node] {
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                // keys[mid] moves up; right node takes keys after it.
                let rk: Vec<K> = keys.split_off(mid + 1);
                let sep = keys.pop().expect("internal split: non-empty keys");
                let rc: Vec<usize> = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                )
            }
            Node::Leaf { .. } => unreachable!("split_internal on leaf"),
        };
        self.nodes.push(new_node);
        (sep, new_idx)
    }

    /// Finds the *leftmost* leaf that may contain `key`, counting nodes
    /// touched. Left-biased descent is required because a run of
    /// duplicate keys can straddle a split, leaving copies equal to a
    /// separator in the left subtree.
    fn find_leaf(&self, key: &K) -> (usize, usize) {
        let mut n = self.root;
        let mut touched = 1;
        loop {
            match &self.nodes[n] {
                Node::Leaf { .. } => return (n, touched),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k < key);
                    n = children[idx];
                    touched += 1;
                }
            }
        }
    }

    /// All values with exactly this key.
    pub fn get(&self, key: &K) -> Vec<&V> {
        self.get_with_stats(key).0
    }

    /// Exact lookup, also reporting nodes touched.
    pub fn get_with_stats(&self, key: &K) -> (Vec<&V>, usize) {
        let (pairs, touched) = self.range_with_stats(key, key);
        (pairs.into_iter().map(|(_, v)| v).collect(), touched)
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        self.range_with_stats(lo, hi).0
    }

    /// Inclusive range scan, also reporting nodes touched.
    pub fn range_with_stats(&self, lo: &K, hi: &K) -> (Vec<(&K, &V)>, usize) {
        let mut out = Vec::new();
        if lo > hi {
            return (out, 0);
        }
        let (mut n, mut touched) = self.find_leaf(lo);
        loop {
            let Node::Leaf { keys, values, next } = &self.nodes[n] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < lo);
            for i in start..keys.len() {
                if &keys[i] > hi {
                    return (out, touched);
                }
                out.push((&keys[i], &values[i]));
            }
            match next {
                Some(nx) => {
                    n = *nx;
                    touched += 1;
                }
                None => return (out, touched),
            }
        }
    }

    /// Removes one entry matching `key` whose value satisfies `pred`.
    /// Returns the removed value.
    ///
    /// Deletion is by tombstone-free removal from the leaf without
    /// rebalancing: leaves may underflow but all query invariants
    /// (ordering, linked-leaf completeness) are preserved, matching how
    /// lightweight in-memory B+-trees trade occupancy for simplicity.
    pub fn remove_one<F: Fn(&V) -> bool>(&mut self, key: &K, pred: F) -> Option<V> {
        let (mut n, _) = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, values, next } = &mut self.nodes[n] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < key);
            let mut i = start;
            while i < keys.len() && &keys[i] == key {
                if pred(&values[i]) {
                    keys.remove(i);
                    let v = values.remove(i);
                    self.len -= 1;
                    return Some(v);
                }
                i += 1;
            }
            if i == keys.len() {
                if let Some(nx) = *next {
                    n = nx;
                    continue;
                }
            }
            return None;
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        // Find leftmost leaf.
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
        }
        BPlusIter {
            tree: self,
            leaf: Some(n),
            idx: 0,
        }
    }

    /// Checks ordering and linked-leaf invariants (for tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<K> = None;
        let mut count = 0;
        for (k, _) in self.iter() {
            if let Some(p) = &prev {
                if p > k {
                    return Err(format!("keys out of order: {p:?} > {k:?}"));
                }
            }
            prev = Some(k.clone());
            count += 1;
        }
        if count != self.len {
            return Err(format!(
                "len mismatch: iter {count} != recorded {}",
                self.len
            ));
        }
        Ok(())
    }
}

struct BPlusIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<usize>,
    idx: usize,
}

impl<'a, K, V> Iterator for BPlusIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            let Node::Leaf { keys, values, next } = &self.tree.nodes[leaf] else {
                unreachable!()
            };
            if self.idx < keys.len() {
                let i = self.idx;
                self.idx += 1;
                return Some((&keys[i], &values[i]));
            }
            self.leaf = *next;
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tree(n: usize) -> BPlusTree<u64, u64> {
        let mut t = BPlusTree::new(8);
        for i in 0..n as u64 {
            t.insert(i, i * 10);
        }
        t
    }

    #[test]
    fn insert_and_get() {
        let t = seq_tree(1000);
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        assert_eq!(t.get(&500), vec![&5000]);
        assert_eq!(t.get(&999), vec![&9990]);
        assert!(t.get(&1000).is_empty());
    }

    #[test]
    fn reverse_insertion_order() {
        let mut t = BPlusTree::new(5);
        for i in (0..500u64).rev() {
            t.insert(i, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.get(&250), vec![&250]);
    }

    #[test]
    fn range_scan_inclusive() {
        let t = seq_tree(100);
        let r = t.range(&10, &20);
        assert_eq!(r.len(), 11);
        assert_eq!(*r[0].0, 10);
        assert_eq!(*r[10].0, 20);
    }

    #[test]
    fn range_scan_beyond_bounds() {
        let t = seq_tree(10);
        assert_eq!(t.range(&0, &1000).len(), 10);
        assert!(t.range(&100, &200).is_empty());
        assert!(t.range(&5, &4).is_empty());
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let mut t = BPlusTree::new(4);
        for v in 0..50u64 {
            t.insert(7u64, v);
        }
        t.insert(6, 600);
        t.insert(8, 800);
        let got = t.get(&7);
        assert_eq!(got.len(), 50);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_one_with_predicate() {
        let mut t = BPlusTree::new(4);
        for v in 0..10u64 {
            t.insert(1u64, v);
        }
        let removed = t.remove_one(&1, |&v| v == 5);
        assert_eq!(removed, Some(5));
        assert_eq!(t.len(), 9);
        assert!(!t.get(&1).contains(&&5));
        assert_eq!(t.remove_one(&1, |&v| v == 5), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_missing_key_is_none() {
        let mut t = seq_tree(10);
        assert_eq!(t.remove_one(&99, |_| true), None);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = BPlusTree::new(6);
        let keys = [5u64, 3, 9, 1, 7, 3, 5, 5];
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let collected: Vec<u64> = t.iter().map(|(&k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort();
        assert_eq!(collected, want);
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = seq_tree(10_000);
        let h = t.height();
        assert!(h >= 3, "10k keys with order 8 needs height >= 3, got {h}");
        assert!(h <= 8, "height {h} too large for 10k keys");
    }

    #[test]
    fn stats_count_nodes_touched() {
        let t = seq_tree(10_000);
        let (_, touched_point) = t.get_with_stats(&5000);
        // Descent touches `height` nodes; the scan may step into one
        // extra leaf to confirm the run of duplicates has ended.
        assert!(touched_point >= t.height() && touched_point <= t.height() + 1);
        let (res, touched_range) = t.range_with_stats(&0, &9999);
        assert_eq!(res.len(), 10_000);
        assert!(
            touched_range > touched_point,
            "full scan touches many leaves"
        );
    }

    #[test]
    fn f64key_total_order() {
        let mut keys = [F64Key::new(3.5), F64Key::new(-1.0), F64Key::new(0.0)];
        keys.sort();
        assert_eq!(keys[0].get(), -1.0);
        assert_eq!(keys[2].get(), 3.5);
    }

    #[test]
    #[should_panic]
    fn f64key_rejects_nan() {
        F64Key::new(f64::NAN);
    }

    #[test]
    fn f64_keys_in_tree() {
        let mut t: BPlusTree<F64Key, u64> = BPlusTree::new(8);
        for i in 0..100 {
            t.insert(F64Key::new(i as f64 * 0.5), i);
        }
        let r = t.range(&F64Key::new(10.0), &F64Key::new(12.0));
        assert_eq!(r.len(), 5); // 10.0, 10.5, 11.0, 11.5, 12.0
    }
}
