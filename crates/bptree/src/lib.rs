//! B+-tree and the "DBMS" baseline of the paper's evaluation.
//!
//! The paper compares SmartStore against "a popular database approach
//! that uses a B+ tree to index each metadata attribute, denoted as DBMS
//! that here does not take into account database optimization" (§5.1).
//! This crate supplies both pieces:
//!
//! * [`BPlusTree`] — an in-memory B+-tree with duplicate-key support,
//!   leaf sibling links for ordered range scans, and node-level work
//!   counters so the simulator can charge latency per node touched;
//! * [`dbms::Dbms`] — one B+-tree per attribute plus a filename index,
//!   answering point queries by exact lookup and complex queries by
//!   scanning *every* attribute index and intersecting candidates, which
//!   is exactly the linear brute-force cost profile the paper ascribes
//!   to the baseline.

pub mod dbms;
pub mod tree;

pub use dbms::{Dbms, DbmsStats};
pub use tree::{BPlusTree, F64Key};
