//! The paper's "DBMS" baseline: one B+-tree per metadata attribute.
//!
//! "DBMS must check each B+-tree index for each attribute, resulting in
//! linear brute-force search costs" (§5.2) and "DBMS builds a B+-tree
//! for each attribute. As a result, DBMS has a large storage overhead"
//! (Fig. 7 discussion). The implementation below deliberately keeps that
//! cost profile: a complex query consults *every* attribute index and
//! intersects candidate sets; a top-k query has no better plan than a
//! range probe around the target point that widens until k matches are
//! found.

use crate::tree::{BPlusTree, F64Key};
use std::collections::HashMap;

/// Work/space accounting for the baseline comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbmsStats {
    /// B+-tree nodes touched by the last query.
    pub nodes_touched: usize,
    /// Candidate records materialized before intersection.
    pub candidates: usize,
}

/// One B+-tree per attribute dimension + a filename index.
#[derive(Clone, Debug)]
pub struct Dbms {
    /// `indexes[d]` maps attribute-d value → file id.
    indexes: Vec<BPlusTree<F64Key, u64>>,
    /// filename → file id.
    name_index: BPlusTree<String, u64>,
    /// file id → full attribute vector (the "table").
    records: HashMap<u64, Vec<f64>>,
    dims: usize,
}

impl Dbms {
    /// Creates a baseline over `dims` attribute dimensions with the given
    /// B+-tree order.
    pub fn new(dims: usize, order: usize) -> Self {
        Self {
            indexes: (0..dims).map(|_| BPlusTree::new(order)).collect(),
            name_index: BPlusTree::new(order),
            records: HashMap::new(),
            dims,
        }
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no files are indexed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Attribute dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Inserts a file with its name and attribute vector.
    ///
    /// # Panics
    /// If `attrs.len() != self.dims()`.
    pub fn insert(&mut self, file_id: u64, name: &str, attrs: &[f64]) {
        assert_eq!(attrs.len(), self.dims, "Dbms::insert: dimension mismatch");
        for (d, &v) in attrs.iter().enumerate() {
            self.indexes[d].insert(F64Key::new(v), file_id);
        }
        self.name_index.insert(name.to_string(), file_id);
        self.records.insert(file_id, attrs.to_vec());
    }

    /// Point query by filename.
    pub fn point_query(&self, name: &str) -> (Vec<u64>, DbmsStats) {
        let (vals, touched) = self.name_index.get_with_stats(&name.to_string());
        (
            vals.into_iter().copied().collect(),
            DbmsStats {
                nodes_touched: touched,
                candidates: 0,
            },
        )
    }

    /// Multi-dimensional range query: files with
    /// `lo[d] <= attr[d] <= hi[d]` for every `d`.
    ///
    /// Scans every attribute index (the baseline's defining cost) and
    /// intersects the candidate id sets.
    pub fn range_query(&self, lo: &[f64], hi: &[f64]) -> (Vec<u64>, DbmsStats) {
        assert_eq!(lo.len(), self.dims, "range_query: lo dimension mismatch");
        assert_eq!(hi.len(), self.dims, "range_query: hi dimension mismatch");
        let mut stats = DbmsStats::default();
        let mut result: Option<Vec<u64>> = None;
        for d in 0..self.dims {
            let (pairs, touched) =
                self.indexes[d].range_with_stats(&F64Key::new(lo[d]), &F64Key::new(hi[d]));
            stats.nodes_touched += touched;
            let mut ids: Vec<u64> = pairs.into_iter().map(|(_, &id)| id).collect();
            ids.sort_unstable();
            ids.dedup();
            stats.candidates += ids.len();
            result = Some(match result {
                None => ids,
                Some(prev) => intersect_sorted(&prev, &ids),
            });
        }
        (result.unwrap_or_default(), stats)
    }

    /// Top-k query: the k files whose attribute vectors are nearest to
    /// `point` in (normalized) Euclidean distance.
    ///
    /// The best available single-index plan: expand a symmetric window on
    /// each index around the query coordinate, doubling the radius until
    /// at least k candidates survive intersection or the window covers
    /// the whole domain, then rank candidates by true distance.
    pub fn topk_query(&self, point: &[f64], k: usize) -> (Vec<u64>, DbmsStats) {
        assert_eq!(point.len(), self.dims, "topk_query: dimension mismatch");
        let mut stats = DbmsStats::default();
        if self.records.is_empty() || k == 0 {
            return (Vec::new(), stats);
        }
        // Per-dimension domain width for the initial radius guess.
        let mut radius: Vec<f64> = (0..self.dims)
            .map(|d| {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for attrs in self.records.values() {
                    min = min.min(attrs[d]);
                    max = max.max(attrs[d]);
                }
                ((max - min) / 16.0).max(1e-9)
            })
            .collect();

        loop {
            let lo: Vec<f64> = point.iter().zip(&radius).map(|(&p, &r)| p - r).collect();
            let hi: Vec<f64> = point.iter().zip(&radius).map(|(&p, &r)| p + r).collect();
            let (cands, s) = self.range_query(&lo, &hi);
            stats.nodes_touched += s.nodes_touched;
            stats.candidates += s.candidates;
            let exhaustive = cands.len() == self.records.len();
            if cands.len() >= k || exhaustive {
                let mut scored: Vec<(u64, f64)> = cands
                    .into_iter()
                    .map(|id| {
                        let attrs = &self.records[&id];
                        let d = attrs
                            .iter()
                            .zip(point)
                            .map(|(&a, &q)| (a - q) * (a - q))
                            .sum::<f64>();
                        (id, d)
                    })
                    .collect();
                scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                scored.truncate(k);
                // The box result is exact only if the ball of radius
                // `r_k` (distance to the k-th candidate) fits inside the
                // probed box in every dimension; otherwise a nearer file
                // may lie outside the box. Widen and re-probe.
                let r_k = scored.last().map_or(0.0, |&(_, d)| d.sqrt());
                if exhaustive || radius.iter().all(|&rd| rd >= r_k) {
                    return (scored.into_iter().map(|(id, _)| id).collect(), stats);
                }
                for r in &mut radius {
                    *r = r.max(r_k);
                }
                continue;
            }
            for r in &mut radius {
                *r *= 2.0;
            }
        }
    }

    /// Total B+-tree nodes across all indexes (space-overhead proxy: the
    /// paper's Fig. 7 charges DBMS for one index per attribute).
    pub fn total_nodes(&self) -> usize {
        self.indexes.iter().map(|t| t.node_count()).sum::<usize>() + self.name_index.node_count()
    }

    /// Approximate resident bytes: nodes × (order keys + order ids).
    pub fn size_bytes(&self, order: usize) -> usize {
        self.total_nodes() * order * 16
    }
}

fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Dbms {
        let mut db = Dbms::new(3, 8);
        // attrs: (size, ctime, mtime)
        for i in 0..200u64 {
            let attrs = vec![(i % 50) as f64, (i / 10) as f64, (i % 7) as f64];
            db.insert(i, &format!("file_{i}"), &attrs);
        }
        db
    }

    #[test]
    fn point_query_finds_exact_file() {
        let db = sample_db();
        let (ids, stats) = db.point_query("file_42");
        assert_eq!(ids, vec![42]);
        assert!(stats.nodes_touched >= 1);
    }

    #[test]
    fn point_query_missing_file() {
        let db = sample_db();
        let (ids, _) = db.point_query("no_such_file");
        assert!(ids.is_empty());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let db = sample_db();
        let lo = [10.0, 2.0, 0.0];
        let hi = [20.0, 15.0, 3.0];
        let (mut got, stats) = db.range_query(&lo, &hi);
        got.sort_unstable();
        let mut want: Vec<u64> = (0..200u64)
            .filter(|&i| {
                let a = [(i % 50) as f64, (i / 10) as f64, (i % 7) as f64];
                a.iter()
                    .zip(lo.iter().zip(hi.iter()))
                    .all(|(&v, (&l, &h))| l <= v && v <= h)
            })
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // The defining baseline behaviour: all three indexes were probed.
        assert!(
            stats.candidates > got.len(),
            "intersection should discard candidates"
        );
    }

    #[test]
    fn topk_returns_k_nearest() {
        let db = sample_db();
        let point = [25.0, 10.0, 3.0];
        let k = 5;
        let (got, _) = db.topk_query(&point, k);
        assert_eq!(got.len(), k);
        // Verify against brute force.
        let mut scored: Vec<(u64, f64)> = (0..200u64)
            .map(|i| {
                let a = [(i % 50) as f64, (i / 10) as f64, (i % 7) as f64];
                let d: f64 = a.iter().zip(&point).map(|(&x, &q)| (x - q) * (x - q)).sum();
                (i, d)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let kth_dist = scored[k - 1].1;
        for id in &got {
            let a = [(id % 50) as f64, (id / 10) as f64, (id % 7) as f64];
            let d: f64 = a.iter().zip(&point).map(|(&x, &q)| (x - q) * (x - q)).sum();
            assert!(
                d <= kth_dist + 1e-9,
                "id {id} at distance {d} not in true top-{k}"
            );
        }
    }

    #[test]
    fn topk_k_exceeds_population() {
        let mut db = Dbms::new(2, 4);
        db.insert(1, "a", &[1.0, 1.0]);
        db.insert(2, "b", &[2.0, 2.0]);
        let (got, _) = db.topk_query(&[0.0, 0.0], 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], 1, "nearest first");
    }

    #[test]
    fn empty_db_queries() {
        let db = Dbms::new(2, 4);
        assert!(db.is_empty());
        assert!(db.range_query(&[0.0, 0.0], &[1.0, 1.0]).0.is_empty());
        assert!(db.topk_query(&[0.0, 0.0], 3).0.is_empty());
    }

    #[test]
    fn space_grows_with_dims() {
        let mut narrow = Dbms::new(2, 8);
        let mut wide = Dbms::new(8, 8);
        for i in 0..500u64 {
            let a2 = vec![i as f64, (i * 3) as f64];
            let a8: Vec<f64> = (0..8).map(|d| ((i + d) % 97) as f64).collect();
            narrow.insert(i, &format!("f{i}"), &a2);
            wide.insert(i, &format!("f{i}"), &a8);
        }
        assert!(
            wide.total_nodes() > narrow.total_nodes() * 2,
            "one B+-tree per attribute must inflate node count"
        );
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[2, 4], &[1, 3]), Vec::<u64>::new());
    }
}
