//! Property tests: the B+-tree must agree with a sorted reference model
//! (`Vec` of pairs) on every exact-match and range query.

use proptest::prelude::*;
use smartstore_bptree::BPlusTree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn agrees_with_reference_model(
        inserts in prop::collection::vec((0u64..50, 0u64..1000), 0..400),
        probes in prop::collection::vec(0u64..60, 1..20),
        order in 3usize..12,
    ) {
        let mut tree = BPlusTree::new(order);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for &(k, v) in &inserts {
            tree.insert(k, v);
            model.push((k, v));
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len(), model.len());
        for &p in &probes {
            let mut got: Vec<u64> = tree.get(&p).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<u64> = model.iter()
                .filter(|&&(k, _)| k == p)
                .map(|&(_, v)| v)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "mismatch for key {}", p);
        }
    }

    #[test]
    fn range_agrees_with_reference_model(
        inserts in prop::collection::vec((0u64..40, 0u64..1000), 0..300),
        lo in 0u64..45,
        span in 0u64..20,
    ) {
        let mut tree = BPlusTree::new(6);
        for &(k, v) in &inserts {
            tree.insert(k, v);
        }
        let hi = lo + span;
        let mut got: Vec<(u64, u64)> = tree.range(&lo, &hi)
            .into_iter().map(|(&k, &v)| (k, v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = inserts.iter()
            .filter(|&&(k, _)| lo <= k && k <= hi)
            .copied()
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn remove_then_queries_stay_consistent(
        inserts in prop::collection::vec((0u64..20, 0u64..100), 1..200),
        removals in prop::collection::vec((0u64..20, 0u64..100), 0..50),
    ) {
        let mut tree = BPlusTree::new(5);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for &(k, v) in &inserts {
            tree.insert(k, v);
            model.push((k, v));
        }
        for &(k, v) in &removals {
            let tree_removed = tree.remove_one(&k, |&x| x == v).is_some();
            let model_pos = model.iter().position(|&(mk, mv)| mk == k && mv == v);
            prop_assert_eq!(tree_removed, model_pos.is_some());
            if let Some(pos) = model_pos {
                model.remove(pos);
            }
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len(), model.len());
        // Full scan must match.
        let mut got: Vec<(u64, u64)> = tree.iter().map(|(&k, &v)| (k, v)).collect();
        got.sort_unstable();
        model.sort_unstable();
        prop_assert_eq!(got, model);
    }
}
