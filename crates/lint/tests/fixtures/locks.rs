//! Seeded L-rule violation (scanned as a lock-order crate).

use std::sync::Mutex;

struct S {
    state: Mutex<u32>,
    task: Mutex<u32>,
}

impl S {
    fn inverted(&self) {
        let _s = self.state.lock();
        let _t = self.task.lock();
    }

    fn ordered(&self) {
        let _t = self.task.lock();
        let _s = self.state.lock();
    }
}
