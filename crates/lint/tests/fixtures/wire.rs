//! Seeded W-rule violations (scanned as a wire crate).

pub const REQ_PING: u8 = 1;
pub const REQ_ECHO: u8 = 1;
pub const REQ_ORPHAN: u8 = 3;

pub fn put_ping(out: &mut Vec<u8>) {
    out.push(REQ_PING);
    out.push(REQ_ORPHAN);
}

pub fn get_ping(b: &[u8]) -> bool {
    b.first() == Some(&REQ_PING)
}
