//! Seeded W-rule violations (scanned as a wire crate).

pub const REQ_PING: u8 = 1;
pub const REQ_ECHO: u8 = 1;
pub const REQ_ORPHAN: u8 = 3;

pub fn put_ping(out: &mut Vec<u8>) {
    out.push(REQ_PING);
    out.push(REQ_ORPHAN);
}

pub fn get_ping(b: &[u8]) -> bool {
    b.first() == Some(&REQ_PING)
}

pub const FAMILY_PLAIN: u8 = 0;
pub const FAMILY_SPREAD: u8 = 1;

pub fn put_family(out: &mut Vec<u8>, fast: bool) {
    out.push(if fast { FAMILY_SPREAD } else { FAMILY_PLAIN });
}

pub fn get_family(b: &[u8]) -> u8 {
    match b.first() {
        Some(&FAMILY_SPREAD) => FAMILY_SPREAD,
        _ => FAMILY_PLAIN,
    }
}

pub fn get_family_elsewhere(b: &[u8]) -> bool {
    b.first() == Some(&FAMILY_SPREAD)
}
