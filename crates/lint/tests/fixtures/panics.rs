//! Seeded P-rule violations (scanned as a panic-free crate).

fn p001_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn p002_site(r: Result<u32, u32>) -> u32 {
    r.expect("boom")
}

fn p003_site(flag: bool) {
    if !flag {
        panic!("nope");
    }
}

fn not_flagged(v: Option<u32>) -> u32 {
    // .unwrap() in a comment must not fire
    let s = ".unwrap() and panic!(\"x\") in a string";
    let _ = s.len();
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        Some(1u32).unwrap();
        panic!("fine in test code");
    }
}
