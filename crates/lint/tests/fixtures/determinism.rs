//! Seeded D-rule violations. This file is test *data* — it is scanned
//! by `tests/lint_rules.rs`, never compiled.

use std::collections::HashMap;
use std::time::Instant;

fn d001_site(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn d002_site(m: &HashMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for (_k, v) in m.iter() {
        sum += v;
    }
    sum
}

fn d003_site() -> Instant {
    Instant::now()
}

fn decoys() {
    // partial_cmp(a).unwrap() in a comment must not fire
    let _s = "a.partial_cmp(b).unwrap() inside a string";
    let _t = "Instant::now() in a string";
}

#[cfg(test)]
mod tests {
    fn test_code_is_exempt(xs: &mut [f64]) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let _ = Instant::now();
    }
}
