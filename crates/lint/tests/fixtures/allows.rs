//! Suppression semantics: a justified allow silences its finding; a
//! bare allow silences nothing and is itself flagged (A001).

fn justified(v: Option<u32>) -> u32 {
    // lint:allow(P001) -- fixture: demonstrates a justified suppression
    v.unwrap()
}

fn unjustified(v: Option<u32>) -> u32 {
    // lint:allow(P001)
    v.unwrap()
}
