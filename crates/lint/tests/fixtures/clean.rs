//! Decoys only: every "violation" below lives inside a string or a
//! comment, so this file must produce zero findings even when scanned
//! as the strictest crate.
//! partial_cmp(a).unwrap() in a doc comment.

pub fn clean() -> usize {
    // .unwrap(), panic!("x"), Instant::now() in a comment
    let s = "a.partial_cmp(b).unwrap(); panic!(\"x\"); Instant::now()";
    let r = r#"for k in m.keys() { } and task.lock() after state.lock()"#;
    /* const REQ_DUP: u8 = 1; const REQ_DUP2: u8 = 1; unsafe { boom() } */
    s.len() + r.len()
}
