//! Seeded U-rule violation plus two documented sites.

fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

/// Reads through a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn doc_section(p: *const u32) -> u32 {
    *p
}
