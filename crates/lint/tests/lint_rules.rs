//! Rule-level acceptance: each fixture under `tests/fixtures/` seeds
//! known violations (and known decoys inside strings/comments), and the
//! scanner must report exactly the expected `file:line:rule` set — no
//! misses, no false positives.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_lint::report::Report;
use smartstore_lint::scan_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The findings as `file:line:rule` strings, in report order.
fn keys(r: &Report) -> Vec<String> {
    r.findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.rule))
        .collect()
}

#[test]
fn determinism_rules_fire_exactly_where_seeded() {
    let r = scan_source(
        "fx/determinism.rs",
        "smartstore-rtree",
        false,
        &fixture("determinism.rs"),
    );
    assert_eq!(
        keys(&r),
        vec![
            "fx/determinism.rs:8:D001",  // partial_cmp(..).unwrap() in sort_by
            "fx/determinism.rs:13:D002", // for (_k, v) in m.iter()
            "fx/determinism.rs:20:D003", // Instant::now()
        ],
        "{:#?}",
        r.findings
    );
}

#[test]
fn panic_rules_fire_exactly_where_seeded() {
    let r = scan_source(
        "fx/panics.rs",
        "smartstore-service",
        false,
        &fixture("panics.rs"),
    );
    assert_eq!(
        keys(&r),
        vec![
            "fx/panics.rs:4:P001",  // v.unwrap()
            "fx/panics.rs:8:P002",  // r.expect("boom")
            "fx/panics.rs:13:P003", // panic!("nope")
        ],
        "{:#?}",
        r.findings
    );
}

#[test]
fn wire_rules_catch_duplicate_one_sided_and_spread_tags() {
    let r = scan_source(
        "fx/wire.rs",
        "smartstore-service",
        false,
        &fixture("wire.rs"),
    );
    assert_eq!(
        keys(&r),
        vec![
            "fx/wire.rs:4:W001",  // REQ_ECHO duplicates REQ_PING's value
            "fx/wire.rs:4:W002",  // REQ_ECHO has neither encoder nor decoder
            "fx/wire.rs:5:W002",  // REQ_ORPHAN is encoder-only
            "fx/wire.rs:17:W003", // FAMILY_SPREAD is read by two decoder fns
        ],
        "{:#?}",
        r.findings
    );
}

#[test]
fn lock_order_rule_catches_the_inversion_only() {
    let r = scan_source("fx/locks.rs", "shim-rayon", false, &fixture("locks.rs"));
    assert_eq!(
        keys(&r),
        vec![
            "fx/locks.rs:13:L001", // task locked after state in `inverted`
        ],
        "{:#?}",
        r.findings
    );
}

#[test]
fn unsafe_rule_flags_undocumented_sites_and_inventories_all() {
    let r = scan_source(
        "fx/unsafety.rs",
        "smartstore-rtree",
        false,
        &fixture("unsafety.rs"),
    );
    assert_eq!(keys(&r), vec!["fx/unsafety.rs:4:U001"], "{:#?}", r.findings);
    assert_eq!(r.unsafe_inventory.len(), 3, "{:#?}", r.unsafe_inventory);
    assert_eq!(
        r.unsafe_inventory.iter().filter(|s| !s.documented).count(),
        1
    );
}

#[test]
fn violations_inside_strings_and_comments_never_fire() {
    // Scanned under the strictest identity: deterministic AND
    // panic-free AND a wire crate.
    let r = scan_source(
        "fx/clean.rs",
        "smartstore-service",
        false,
        &fixture("clean.rs"),
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
    assert!(r.unsafe_inventory.is_empty(), "{:#?}", r.unsafe_inventory);
}

#[test]
fn justified_allow_suppresses_bare_allow_is_flagged() {
    let r = scan_source(
        "fx/allows.rs",
        "smartstore-service",
        false,
        &fixture("allows.rs"),
    );
    assert_eq!(
        keys(&r),
        vec![
            "fx/allows.rs:10:A001", // bare lint:allow, no justification
            "fx/allows.rs:11:P001", // ...and it suppresses nothing
        ],
        "{:#?}",
        r.findings
    );
    // The justified allow is recorded in the audit trail.
    assert_eq!(r.allows.len(), 1);
    assert_eq!(r.allows[0].line, 5);
}

#[test]
fn dev_files_are_exempt_from_production_rules() {
    // The same panic fixture scanned as a tests/ file: nothing fires.
    let r = scan_source(
        "fx/panics.rs",
        "smartstore-service",
        true,
        &fixture("panics.rs"),
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let report = smartstore_lint::run(root).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; run `cargo run -p smartstore-lint` for details:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 100, "walk found the workspace");
    // Every unsafe site in the tree is documented.
    assert!(
        report.unsafe_inventory.iter().all(|s| s.documented),
        "{:#?}",
        report.unsafe_inventory
    );
}

#[test]
fn binary_exits_nonzero_on_findings_and_writes_json() {
    // A miniature one-crate workspace seeded with a P001 violation.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-seeded-ws");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        dir.join("Cargo.toml"),
        "[package]\nname = \"smartstore-service\"\nversion = \"0.0.0\"\n",
    )
    .unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .unwrap();
    let json_path = dir.join("lint.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_smartstore-lint"))
        .arg(&dir)
        .arg("--json-out")
        .arg(&json_path)
        .output()
        .expect("run smartstore-lint");
    assert!(
        !out.status.success(),
        "lint must exit nonzero on findings; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("src/lib.rs:2:P001"), "stdout: {stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"P001\""), "json: {json}");
}
