//! Per-file analysis context: the lexed token stream plus the
//! lightweight structure every rule needs — which crate the file
//! belongs to, which token ranges are test code, where functions begin
//! and end, and which lines carry `lint:allow` suppressions.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};

/// An inline suppression parsed from a comment:
/// `// lint:allow(<RULE>) -- the invariant is …` (one or more
/// comma-separated rule ids). The justification after ` -- ` is
/// mandatory; an allow without one is itself reported (rule `A001`).
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// Line the directive's comment ends on (its suppression anchor).
    pub end_line: u32,
    /// Rule ids named in the parentheses, e.g. `["P001", "D002"]`.
    pub rules: Vec<String>,
    /// Text after ` -- `; empty means unjustified.
    pub justification: String,
}

/// Span of a `fn` item in token indices, with its name.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// Index just past the body's closing `}` (or the `;` of a
    /// bodyless trait method).
    pub end: usize,
}

/// Everything the rules see for one file.
pub struct FileContext {
    /// Repo-relative path used in findings.
    pub path: String,
    /// Cargo package name of the owning crate (e.g. `smartstore-net`).
    pub crate_name: String,
    /// True for files under `tests/`, `benches/`, `examples/`, or
    /// `fixtures/` directories — dev code exempt from production rules.
    pub is_dev: bool,
    pub src: String,
    pub lexed: Lexed,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// All `fn` items, in source order (nested fns appear after their
    /// enclosing fn; innermost-containing lookup scans from the back).
    pub fns: Vec<FnSpan>,
    pub allows: Vec<AllowDirective>,
}

impl FileContext {
    /// Builds the context for one file's source text.
    pub fn new(path: String, crate_name: String, is_dev: bool, src: String) -> Self {
        let lexed = lex(&src);
        let test_spans = find_cfg_test_spans(&src, &lexed);
        let fns = find_fns(&src, &lexed);
        let allows = parse_allows(&lexed.comments);
        FileContext {
            path,
            crate_name,
            is_dev,
            src,
            lexed,
            test_spans,
            fns,
            allows,
        }
    }

    /// Tokens of the file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Source text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.lexed.text(&self.src, i)
    }

    /// True when token `i` is test/dev code (dev directory or inside a
    /// `#[cfg(test)]` item) — production-only rules skip it.
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.is_dev || self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Name of the innermost `fn` containing token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        // `rev()` finds the latest-starting span containing `i`, which
        // is the innermost for properly nested spans.
        self.fns.iter().rev().find(|f| i >= f.start && i < f.end)
    }

    /// True when a finding of `rule` on `line` is suppressed by an
    /// allow directive on the same line or the line directly above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            (a.end_line == line || a.end_line + 1 == line)
                && !a.justification.is_empty()
                && a.rules.iter().any(|r| r == rule)
        })
    }
}

/// A well-formed rule id: an uppercase letter and three digits
/// (`D001`, `P002`, …). Anything else inside `lint:allow(..)` — a
/// `<rule>` placeholder in prose, say — means the text is not a
/// directive.
fn is_rule_id(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 4 && b[0].is_ascii_uppercase() && b[1..].iter().all(|c| c.is_ascii_digit())
}

/// Parses `lint:allow(R1, R2) -- justification` out of comments.
fn parse_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || !rules.iter().all(|r| is_rule_id(r)) {
            continue;
        }
        let after = &rest[close + 1..];
        let justification = after
            .find("--")
            .map(|d| {
                after[d + 2..]
                    .trim_end_matches(['*', '/'])
                    .trim()
                    .to_string()
            })
            .unwrap_or_default();
        out.push(AllowDirective {
            line: c.line,
            end_line: c.end_line,
            rules,
            justification,
        });
    }
    out
}

/// Marks token ranges of items annotated `#[cfg(test)]` (and, for
/// robustness, bare `#[test]` functions). The item following the
/// attribute runs to its matching `}` (brace item) or `;`.
fn find_cfg_test_spans(src: &str, lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let text = |i: usize| lexed.text(src, i);
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && text(i) == "#") {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ … ]`.
        let Some((attr_end, is_test_attr)) = parse_attr(src, lexed, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the cfg(test) and its item.
        let mut j = attr_end;
        while j < toks.len() && toks[j].kind == TokKind::Punct && text(j) == "#" {
            match parse_attr(src, lexed, j) {
                Some((e, _)) => j = e,
                None => break,
            }
        }
        // The item body: first `{ … }` at bracket depth 0, or a `;`.
        let end = item_end(src, lexed, j);
        spans.push((i, end));
        i = end;
    }
    spans
}

/// Parses the attribute starting at `#` token `i`. Returns the token
/// index just past the closing `]` and whether the attribute is
/// `cfg(test)`-like (`cfg(test)`, `cfg(any(test, …))`, or `test`).
fn parse_attr(src: &str, lexed: &Lexed, i: usize) -> Option<(usize, bool)> {
    let toks = &lexed.tokens;
    let text = |k: usize| lexed.text(src, k);
    let mut j = i + 1;
    // Optional inner-attribute bang.
    if j < toks.len() && toks[j].kind == TokKind::Punct && text(j) == "!" {
        j += 1;
    }
    if !(j < toks.len() && toks[j].kind == TokKind::Punct && text(j) == "[") {
        return None;
    }
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut first_ident: Option<String> = None;
    while j < toks.len() {
        let t = text(j);
        match toks[j].kind {
            TokKind::Punct if t == "[" => depth += 1,
            TokKind::Punct if t == "]" => {
                depth -= 1;
                if depth == 0 {
                    let bare_test = first_ident.as_deref() == Some("test");
                    return Some((j + 1, (saw_cfg && saw_test) || bare_test));
                }
            }
            TokKind::Ident => {
                if first_ident.is_none() {
                    first_ident = Some(t.to_string());
                }
                if t == "cfg" {
                    saw_cfg = true;
                }
                if t == "test" {
                    saw_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Token index just past the end of the item starting at `i`: the
/// matching `}` of its first depth-0 brace, or its terminating `;`.
fn item_end(src: &str, lexed: &Lexed, i: usize) -> usize {
    let toks = &lexed.tokens;
    let text = |k: usize| lexed.text(src, k);
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Records every `fn` item span. The body is the first `{ … }` after
/// the name at paren/bracket depth 0 (return types never contain
/// depth-0 braces); a `;` first means a bodyless trait method.
fn find_fns(src: &str, lexed: &Lexed) -> Vec<FnSpan> {
    let toks = &lexed.tokens;
    let text = |k: usize| lexed.text(src, k);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && text(i) == "fn") {
            continue;
        }
        // Name (skip for `fn(` function-pointer types).
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let name = text(i + 1).to_string();
        // Find body start: first `{` at depth 0, stopping at `;`.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            if toks[j].kind == TokKind::Punct {
                match text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let end = match body {
            Some(b) => item_end(src, lexed, b),
            None => j.min(toks.len()),
        };
        out.push(FnSpan {
            name,
            start: i,
            end,
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(
            "test.rs".into(),
            "test-crate".into(),
            false,
            src.to_string(),
        )
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let c = ctx("fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn prod2() {}\n");
        let toks = c.tokens();
        let find = |name: &str| {
            (0..toks.len())
                .find(|&i| c.text(i) == name)
                .map(|i| c.is_test_tok(i))
        };
        assert_eq!(find("prod"), Some(false));
        assert_eq!(find("t"), Some(true));
        assert_eq!(find("prod2"), Some(false));
    }

    #[test]
    fn bare_test_attr_is_marked() {
        let c = ctx("#[test]\nfn a_test() { x.unwrap(); }\nfn prod() {}\n");
        let i = (0..c.tokens().len())
            .find(|&i| c.text(i) == "unwrap")
            .unwrap();
        assert!(c.is_test_tok(i));
    }

    #[test]
    fn fn_spans_and_nesting() {
        let c = ctx("fn outer() { fn inner() { a(); } b(); }\nfn later() {}\n");
        let i_a = (0..c.tokens().len()).find(|&i| c.text(i) == "a").unwrap();
        let i_b = (0..c.tokens().len()).find(|&i| c.text(i) == "b").unwrap();
        assert_eq!(c.enclosing_fn(i_a).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(c.enclosing_fn(i_b).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn allows_parse_and_apply() {
        let c = ctx("let a = 1; // lint:allow(P001) -- invariant: never None\nlet b = 2;\n// lint:allow(P002)\nlet d = 3;\n");
        assert!(c.is_allowed("P001", 1));
        assert!(c.is_allowed("P001", 2)); // next line also covered
        assert!(!c.is_allowed("P002", 1));
        // Unjustified allow never suppresses.
        assert!(!c.is_allowed("P002", 4));
        assert_eq!(c.allows.len(), 2);
        assert!(c.allows[1].justification.is_empty());
    }
}
