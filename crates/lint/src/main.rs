//! CLI driver: `cargo run -p smartstore-lint [--] [ROOT] [options]`.
//!
//! Prints findings as `file:line:rule: message`, writes the
//! machine-readable report to `results/lint.json` (override with
//! `--json-out PATH`, disable with `--no-json`), and exits nonzero on
//! any finding — the CI gate contract.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out = Some(PathBuf::from("results/lint.json"));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("smartstore-lint: --json-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--no-json" => json_out = None,
            "--help" | "-h" => {
                println!(
                    "usage: smartstore-lint [ROOT] [--json-out PATH | --no-json]\n\
                     Lints the workspace at ROOT (default `.`); exits 1 on findings."
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => root = PathBuf::from(p),
            other => {
                eprintln!("smartstore-lint: unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match smartstore_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smartstore-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    let undocumented = report
        .unsafe_inventory
        .iter()
        .filter(|u| !u.documented)
        .count();
    eprintln!(
        "smartstore-lint: {} finding(s) across {} file(s); {} unsafe site(s) \
         ({} undocumented); {} justified allow(s)",
        report.findings.len(),
        report.files_scanned,
        report.unsafe_inventory.len(),
        undocumented,
        report.allows.len()
    );

    if let Some(path) = json_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("smartstore-lint: create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("smartstore-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("smartstore-lint: report written to {}", path.display());
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
