//! Findings, the unsafe-block inventory, and the machine-readable
//! JSON report (hand-rolled — this crate is zero-dependency).

use std::fmt::Write as _;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`, `P002`, …).
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` site, documented or not — the U-rule audit inventory.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// `block` | `fn` | `impl` | `trait`.
    pub kind: &'static str,
    /// True when a `SAFETY`/`# Safety` comment covers the site.
    pub documented: bool,
}

/// One justified suppression, surfaced in the report so the audit
/// trail of accepted violations is reviewable in CI artifacts.
#[derive(Clone, Debug)]
pub struct AllowRecord {
    pub file: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub justification: String,
}

/// Everything one workspace run produces.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub unsafe_inventory: Vec<UnsafeSite>,
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"finding_count\": {},", self.findings.len());
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"unsafe_inventory\": [\n");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"documented\": {}}}",
                json_str(&u.file),
                u.line,
                json_str(u.kind),
                u.documented
            );
            s.push_str(if i + 1 < self.unsafe_inventory.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let rules: Vec<String> = a.rules.iter().map(|r| json_str(r)).collect();
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"justification\": {}}}",
                json_str(&a.file),
                a.line,
                rules.join(", "),
                json_str(&a.justification)
            );
            s.push_str(if i + 1 < self.allows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string literal with escaping.
fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(Finding {
            file: "a \"b\"\\c.rs".into(),
            line: 3,
            rule: "D001",
            message: "tab\there".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"a \\\"b\\\"\\\\c.rs\""));
        assert!(j.contains("\"tab\\there\""));
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\"files_scanned\": 2"));
    }
}
