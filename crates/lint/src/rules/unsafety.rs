//! U rule: every `unsafe` site must carry the invariant it relies on.
//! The audit also inventories *all* unsafe sites (documented or not)
//! into the report, so a reviewer can see the complete unsafe surface
//! of the workspace in one artifact.

use super::is_ident;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::{Finding, UnsafeSite};
use std::collections::BTreeMap;

/// U001 — an `unsafe` block/fn/impl/trait with no `SAFETY:` (or
/// rustdoc `# Safety`) comment covering it.
pub fn check(ctx: &FileContext, out: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    let toks = ctx.tokens();
    // First token on each line, to distinguish attribute-only lines
    // from code lines when walking upwards.
    let mut first_tok_on_line: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        first_tok_on_line.entry(t.line).or_insert(i);
    }

    for i in 0..toks.len() {
        if !is_ident(ctx, i, "unsafe") || ctx.is_test_tok(i) {
            continue;
        }
        let kind: &'static str = match toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => match ctx.text(i + 1) {
                "fn" => "fn",
                "impl" => "impl",
                "trait" => "trait",
                "extern" => "extern",
                _ => "block",
            },
            _ => "block",
        };
        // `unsafe` inside an `unsafe fn`'s own signature-line is the
        // declaration itself; operations inside the fn body need no
        // inner blocks, so the fn-level doc is the audit point.
        let line = toks[i].line;
        let documented = has_safety_comment(ctx, &first_tok_on_line, line);
        inventory.push(UnsafeSite {
            file: ctx.path.clone(),
            line,
            kind,
            documented,
        });
        if !documented {
            out.push(Finding {
                file: ctx.path.clone(),
                line,
                rule: "U001",
                message: format!(
                    "unsafe {kind} without a SAFETY comment; state the invariant that \
                     makes it sound (`// SAFETY: …` or a `# Safety` doc section)"
                ),
            });
        }
    }
}

/// Looks for a SAFETY marker in a comment on the same line, or in the
/// contiguous run of comment/attribute lines directly above.
fn has_safety_comment(
    ctx: &FileContext,
    first_tok_on_line: &BTreeMap<u32, usize>,
    line: u32,
) -> bool {
    let marker = |text: &str| text.to_ascii_uppercase().contains("SAFETY");
    // Trailing comment on the same line.
    if ctx
        .lexed
        .comments
        .iter()
        .any(|c| c.line == line && marker(&c.text))
    {
        return true;
    }
    // Walk upwards through comments and attribute lines.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        // A comment spanning this line?
        if let Some(c) = ctx
            .lexed
            .comments
            .iter()
            .find(|c| c.line <= l && l <= c.end_line && !c.trailing)
        {
            if marker(&c.text) {
                return true;
            }
            if c.line == 1 {
                break;
            }
            l = c.line - 1;
            continue;
        }
        // An attribute-only line (`#[inline]`, `#[allow(..)]`)?
        match first_tok_on_line.get(&l) {
            Some(&i) if ctx.text(i) == "#" => {
                l -= 1;
                continue;
            }
            // Code line or blank line without a comment: the
            // contiguous documentation run has ended.
            _ => break,
        }
    }
    false
}
