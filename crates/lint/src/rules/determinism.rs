//! D rules: the answers this workspace serves must be a pure function
//! of the data, never of NaN luck, hash seeds, or the wall clock.

use super::{is_ident, is_punct, skip_parens};
use crate::config;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::Finding;
use std::collections::BTreeSet;

/// D001 — `partial_cmp(..)` followed by `unwrap`/`expect`/`unwrap_or`.
///
/// On floats this panics (or silently degrades) the first time a NaN
/// reaches a comparator; `f64::total_cmp` gives the same order for the
/// finite values these code paths produce and a deterministic one for
/// everything else. Applies workspace-wide to non-test code.
pub fn check_partial_cmp(ctx: &FileContext, out: &mut Vec<Finding>) {
    let toks = ctx.tokens();
    for i in 0..toks.len() {
        if !is_ident(ctx, i, "partial_cmp") || ctx.is_test_tok(i) {
            continue;
        }
        // Skip the *definition* inside a PartialOrd impl.
        if i > 0 && is_ident(ctx, i - 1, "fn") {
            continue;
        }
        let Some(after) = skip_parens(ctx, i + 1) else {
            continue;
        };
        if !is_punct(ctx, after, ".") {
            continue;
        }
        let m = after + 1;
        if toks.get(m).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = ctx.text(m);
            if matches!(name, "unwrap" | "expect" | "unwrap_or") {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: toks[i].line,
                    rule: "D001",
                    message: format!(
                        "partial_cmp(..).{name}() is NaN-unsound; use f64::total_cmp \
                         for a total, deterministic order"
                    ),
                });
            }
        }
    }
}

/// D003 — `Instant::now` / `SystemTime::now` outside the timing
/// allowlist. A wall-clock read in answer-producing code makes replies
/// depend on when they were computed, which breaks replay and the
/// bit-identity parity gates.
pub fn check_wall_clock(ctx: &FileContext, out: &mut Vec<Finding>) {
    if config::WALL_CLOCK_ALLOWED_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = ctx.tokens();
    for (i, tok) in toks.iter().enumerate() {
        if ctx.is_test_tok(i) {
            continue;
        }
        let clock = if is_ident(ctx, i, "Instant") {
            "Instant"
        } else if is_ident(ctx, i, "SystemTime") {
            "SystemTime"
        } else {
            continue;
        };
        if is_punct(ctx, i + 1, ":") && is_punct(ctx, i + 2, ":") && is_ident(ctx, i + 3, "now") {
            out.push(Finding {
                file: ctx.path.clone(),
                line: tok.line,
                rule: "D003",
                message: format!(
                    "{clock}::now() outside the timing allowlist ({}); pass timestamps \
                     in as data or move the measurement to a bench/net crate",
                    config::WALL_CLOCK_ALLOWED_CRATES.join(", ")
                ),
            });
        }
    }
}

/// D002 — iteration over `HashMap`/`HashSet` in the deterministic
/// crates' production code.
///
/// Two passes: first collect every identifier the file declares with a
/// hash-container type (let bindings with annotations or
/// `HashMap::new()`-style initializers, struct fields, fn params);
/// then flag `for … in` heads and `.iter()`-family calls on those
/// names. Iteration order of std hash containers is seeded per
/// process, so any byte or answer derived from it differs run to run.
pub fn check_hash_iteration(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !config::DETERMINISTIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let names = collect_hash_names(ctx);
    if names.is_empty() {
        return;
    }
    let toks = ctx.tokens();
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut flag = |line: u32, name: &str, how: &str, out: &mut Vec<Finding>| {
        if seen.insert((line, name.to_string())) {
            out.push(Finding {
                file: ctx.path.clone(),
                line,
                rule: "D002",
                message: format!(
                    "iteration over hash container `{name}` ({how}) in a deterministic \
                     crate; iterate a sorted copy / BTreeMap, or justify with lint:allow"
                ),
            });
        }
    };

    for i in 0..toks.len() {
        if ctx.is_test_tok(i) {
            continue;
        }
        // `name.iter()` family, anywhere an expression can appear.
        if toks[i].kind == TokKind::Ident && names.contains(ctx.text(i)) {
            let name = ctx.text(i);
            if is_punct(ctx, i + 1, ".")
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                && config::HASH_ITER_METHODS.contains(&ctx.text(i + 2))
                && is_punct(ctx, i + 3, "(")
            {
                flag(toks[i].line, name, &format!(".{}()", ctx.text(i + 2)), out);
            }
        }
        // `for pat in <head> {` where the head *is* a tracked name
        // (possibly `&name`, `&mut name`, `self.name`).
        if is_ident(ctx, i, "for") {
            if let Some((head_start, head_end)) = for_head(ctx, i) {
                if let Some(name) = head_is_hash_path(ctx, head_start, head_end, &names) {
                    flag(toks[i].line, &name, "for-loop", out);
                }
            }
        }
    }
}

/// Collects identifiers this file associates with a hash-container
/// type: `NAME: …HashMap…` (bindings, fields, params) and
/// `let NAME = HashMap::…`.
fn collect_hash_names(ctx: &FileContext) -> BTreeSet<String> {
    let toks = ctx.tokens();
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = ctx.text(i);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Walk backwards, skipping type tokens, to the `NAME :` or
        // `let [mut] NAME =` that owns this mention. Bounded lookback
        // keeps pathological lines cheap.
        let lo = i.saturating_sub(40);
        let mut j = i;
        while j > lo {
            j -= 1;
            // `NAME : … HashMap` — but not a path `::`.
            if is_punct(ctx, j, ":")
                && !is_punct(ctx, j.wrapping_sub(1), ":")
                && !is_punct(ctx, j + 1, ":")
                && j >= 1
                && toks[j - 1].kind == TokKind::Ident
            {
                names.insert(ctx.text(j - 1).to_string());
                break;
            }
            // `let [mut] NAME = HashMap::…`
            if is_punct(ctx, j, "=") && j >= 1 && toks[j - 1].kind == TokKind::Ident {
                let name = ctx.text(j - 1);
                let prev = j.checked_sub(2);
                let is_let = prev.is_some_and(|p| {
                    is_ident(ctx, p, "let") || is_ident(ctx, p, "mut") || is_ident(ctx, p, "static")
                });
                if is_let {
                    names.insert(name.to_string());
                }
                break;
            }
            // A statement boundary before either pattern: unrelated
            // mention (turbofish, `use`, a bare constructor call).
            if is_punct(ctx, j, ";") || is_punct(ctx, j, "{") || is_punct(ctx, j, "}") {
                break;
            }
        }
    }
    names
}

/// Token range of a for-loop's iterable: after the `in` keyword, up to
/// the body's `{` at bracket depth 0.
fn for_head(ctx: &FileContext, for_tok: usize) -> Option<(usize, usize)> {
    let toks = ctx.tokens();
    let mut depth = 0i32;
    let mut j = for_tok + 1;
    let mut start = None;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match ctx.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 && start.is_some() => return Some((start?, j)),
                _ => {}
            }
        }
        if start.is_none() && is_ident(ctx, j, "in") && depth == 0 {
            start = Some(j + 1);
        }
        j += 1;
    }
    None
}

/// When the head expression reduces to a plain path ending in a
/// tracked name (`m`, `&m`, `&mut m`, `self.m`, `(&m)`), returns that
/// name. Method-call heads (`m.keys()`) are handled by the `.iter()`
/// check instead; computed heads (`0..m.len()`) are not iteration over
/// the container and stay silent.
fn head_is_hash_path(
    ctx: &FileContext,
    start: usize,
    end: usize,
    names: &BTreeSet<String>,
) -> Option<String> {
    let mut last_ident: Option<&str> = None;
    for i in start..end {
        match ctx.tokens()[i].kind {
            TokKind::Ident => {
                let t = ctx.text(i);
                if t == "mut" || t == "self" {
                    continue;
                }
                last_ident = Some(t);
            }
            TokKind::Punct if matches!(ctx.text(i), "&" | "(" | ")" | ".") => {}
            _ => return None,
        }
    }
    last_ident
        .filter(|n| names.contains(*n))
        .map(|n| n.to_string())
}
