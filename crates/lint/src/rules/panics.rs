//! P rules: production code of the serving/persistence crates must
//! degrade to typed errors, not panic. A panic in a shard kills the
//! fleet member; a panic in the WAL replay path turns a recoverable
//! torn tail into an outage.

use super::{is_ident, is_punct};
use crate::config;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::Finding;

/// P001/P002 — `.unwrap()` / `.expect(..)` in production code of the
/// panic-free crates. P003 — `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` likewise.
pub fn check(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !config::PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = ctx.tokens();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || ctx.is_test_tok(i) {
            continue;
        }
        let t = ctx.text(i);
        match t {
            // Method position only: `.unwrap(` — not `unwrap_or`,
            // which is a different identifier, and not fn defs.
            "unwrap" | "expect"
                if i > 0 && is_punct(ctx, i - 1, ".") && is_punct(ctx, i + 1, "(") =>
            {
                let (rule, msg): (&'static str, &str) = if t == "unwrap" {
                    (
                        "P001",
                        "convert the failure into a typed error or handle None explicitly",
                    )
                } else {
                    (
                        "P002",
                        "the message will never reach an operator; return a typed error",
                    )
                };
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: tok.line,
                    rule,
                    message: format!(".{t}() in panic-free production code; {msg}"),
                });
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if is_punct(ctx, i + 1, "!") && !is_ident(ctx, i.wrapping_sub(1), "fn") =>
            {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: tok.line,
                    rule: "P003",
                    message: format!(
                        "{t}! in panic-free production code; degrade to a typed error \
                         (Response::Error / PersistError) instead of killing the worker"
                    ),
                });
            }
            _ => {}
        }
    }
}
