//! L rule: mutex acquisition order. The work-stealing pool and the
//! fault VFS together hold a handful of mutexes; a function that locks
//! them against the declared order is one scheduler interleaving away
//! from a deadlock that no test will reproduce.
//!
//! The check is conservative: within one function, every `.lock()` on
//! a known mutex is treated as potentially held across the later ones
//! (guard lifetimes are not tracked), so the discipline is
//! *sequential* consistency with the declared order — which the
//! current code satisfies and new code should keep satisfying.

use super::{is_ident, is_punct};
use crate::config;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::Finding;
use std::collections::BTreeSet;

/// L001 — a known mutex locked after one that the declared order puts
/// later.
pub fn check(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !config::LOCK_ORDER_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = ctx.tokens();
    let order_of = |name: &str| config::LOCK_ORDER.iter().position(|&m| m == name);

    for f in &ctx.fns {
        // Acquisition sequence of known mutexes in this fn.
        let mut seq: Vec<(usize, &str, u32)> = Vec::new();
        for i in f.start..f.end.min(toks.len()) {
            if ctx.is_test_tok(i) {
                break; // whole fn is test code
            }
            // `<recv>.lock()` — the receiver is the ident before `.lock`.
            if is_ident(ctx, i, "lock")
                && i >= 2
                && is_punct(ctx, i - 1, ".")
                && toks[i - 2].kind == TokKind::Ident
                && is_punct(ctx, i + 1, "(")
                && is_punct(ctx, i + 2, ")")
            {
                let recv = ctx.text(i - 2);
                if let Some(rank) = order_of(recv) {
                    seq.push((rank, recv, toks[i].line));
                }
            }
        }
        let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
        for a in 0..seq.len() {
            for b in a + 1..seq.len() {
                let (ra, na, _) = seq[a];
                let (rb, nb, line_b) = seq[b];
                if ra > rb && reported.insert((na, nb)) {
                    out.push(Finding {
                        file: ctx.path.clone(),
                        line: line_b,
                        rule: "L001",
                        message: format!(
                            "mutex `{nb}` locked after `{na}` in fn `{}`; declared order \
                             is {}",
                            f.name,
                            config::LOCK_ORDER.join(" -> ")
                        ),
                    });
                }
            }
        }
    }
}
