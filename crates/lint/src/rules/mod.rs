//! The rule classes, each in its own module:
//!
//! * `determinism` — D001 float-order panics, D002 hash-container
//!   iteration, D003 wall-clock reads
//! * `panics` — P001 `unwrap`, P002 `expect`, P003 panic macros
//! * `wire` — W001 duplicate protocol tags, W002 encoder/decoder pairing
//! * `locks` — L001 declared mutex acquisition order
//! * `unsafety` — U001 `SAFETY`-comment audit + inventory
//!
//! All rules walk the lexed token stream through [`FileContext`], so
//! text inside strings and comments never matches.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod unsafety;
pub mod wire;

use crate::context::FileContext;
use crate::lexer::TokKind;

/// True when token `i` is an identifier with this exact text.
pub(crate) fn is_ident(ctx: &FileContext, i: usize, text: &str) -> bool {
    ctx.tokens()
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && ctx.text(i) == text)
}

/// True when token `i` is this punctuation character.
pub(crate) fn is_punct(ctx: &FileContext, i: usize, text: &str) -> bool {
    ctx.tokens()
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && ctx.text(i) == text)
}

/// Given `i` at an opening `(`, returns the index just past its
/// matching `)`; `None` when unbalanced.
pub(crate) fn skip_parens(ctx: &FileContext, i: usize) -> Option<usize> {
    if !is_punct(ctx, i, "(") {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < ctx.tokens().len() {
        if ctx.tokens()[j].kind == TokKind::Punct {
            match ctx.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}
