//! W rules: the wire protocol's tag space is append-only and must stay
//! self-consistent. Every `REQ_*`/`RESP_*`/`MODE_*`/`FAMILY_*` tag,
//! file magic, and the `FORMAT_VERSION` must be unique within its
//! family (W001) and referenced by both an encoder and a decoder
//! (W002) — a tag that only one side knows is either dead weight or,
//! worse, a frame the peer cannot parse. `FAMILY_*` tags (the Bloom
//! hash-family bytes) additionally must round-trip through exactly one
//! encoder/decoder function pair (W003): a second function interpreting
//! the tag bytes is how the two sides' mappings silently drift apart.
//!
//! This is a workspace-global check: constants are collected across
//! every file of the wire crates, then verified once at the end.

use super::is_ident;
use crate::config;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Which namespace a constant's uniqueness is checked within.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Family {
    Req,
    Resp,
    Mode,
    Magic,
    Version,
    /// Bloom hash-family tag bytes (`FAMILY_*`).
    BloomHash,
}

fn family_of(name: &str) -> Option<Family> {
    if name.starts_with("REQ_") {
        Some(Family::Req)
    } else if name.starts_with("RESP_") {
        Some(Family::Resp)
    } else if name.starts_with("MODE_") {
        Some(Family::Mode)
    } else if name.starts_with("FAMILY_") {
        Some(Family::BloomHash)
    } else if name.ends_with("_MAGIC") {
        Some(Family::Magic)
    } else if name == "FORMAT_VERSION" {
        Some(Family::Version)
    } else {
        None
    }
}

#[derive(Debug)]
struct WireConst {
    crate_name: String,
    file: String,
    line: u32,
    name: String,
    family: Family,
    /// Raw token text of the initializer, for same-value detection.
    value: String,
    used_in_encoder: bool,
    used_in_decoder: bool,
}

/// The encoder/decoder functions observed referencing one constant.
#[derive(Debug, Default, Clone)]
struct Usage {
    encoder_fns: BTreeSet<String>,
    decoder_fns: BTreeSet<String>,
}

/// Accumulates definitions and usages across files, then reports.
#[derive(Debug, Default)]
pub struct WireCheck {
    consts: Vec<WireConst>,
    /// (crate, ident) → referencing encoder/decoder fns, collected
    /// before the defining file may even have been scanned.
    usages: BTreeMap<(String, String), Usage>,
}

impl WireCheck {
    /// Scans one file for wire-constant definitions and usages.
    pub fn collect(&mut self, ctx: &FileContext) {
        if !config::WIRE_CRATES.contains(&ctx.crate_name.as_str()) {
            return;
        }
        let toks = ctx.tokens();
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || ctx.is_test_tok(i) {
                continue;
            }
            // Definition: `const NAME : … = value ;`
            if ctx.text(i) == "const" && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = ctx.text(i + 1).to_string();
                if let Some(family) = family_of(&name) {
                    if let Some(value) = const_value_text(ctx, i) {
                        self.consts.push(WireConst {
                            crate_name: ctx.crate_name.clone(),
                            file: ctx.path.clone(),
                            line: toks[i].line,
                            name,
                            family,
                            value,
                            used_in_encoder: false,
                            used_in_decoder: false,
                        });
                        continue;
                    }
                }
            }
            // Usage: a tracked name inside an encoder/decoder fn.
            let t = ctx.text(i);
            if family_of(t).is_none() {
                continue;
            }
            // Skip the name token of the definition itself.
            if i > 0 && is_ident(ctx, i - 1, "const") {
                continue;
            }
            let Some(f) = ctx.enclosing_fn(i) else {
                continue;
            };
            let entry = self
                .usages
                .entry((ctx.crate_name.clone(), t.to_string()))
                .or_default();
            if config::name_matches(&f.name, config::ENCODER_FN_HINTS) {
                entry.encoder_fns.insert(f.name.clone());
            }
            if config::name_matches(&f.name, config::DECODER_FN_HINTS) {
                entry.decoder_fns.insert(f.name.clone());
            }
        }
    }

    /// Emits W001/W002/W003 findings after every file has been
    /// collected.
    pub fn finalize(mut self, out: &mut Vec<Finding>) {
        for c in &mut self.consts {
            if let Some(u) = self.usages.get(&(c.crate_name.clone(), c.name.clone())) {
                c.used_in_encoder = !u.encoder_fns.is_empty();
                c.used_in_decoder = !u.decoder_fns.is_empty();
            }
        }
        // W001: duplicate value within (crate, family).
        let mut by_value: BTreeMap<(String, Family, String), &WireConst> = BTreeMap::new();
        for c in &self.consts {
            if c.family == Family::Version {
                continue; // a single version constant; nothing to collide with
            }
            let key = (c.crate_name.clone(), c.family, c.value.clone());
            match by_value.get(&key) {
                Some(first) => out.push(Finding {
                    file: c.file.clone(),
                    line: c.line,
                    rule: "W001",
                    message: format!(
                        "wire tag {} duplicates the value of {} ({}); tag values must be \
                         unique within their family",
                        c.name, first.name, c.value
                    ),
                }),
                None => {
                    by_value.insert(key, c);
                }
            }
        }
        // W002: every tag must appear on both sides of the wire.
        for c in &self.consts {
            let missing = match (c.used_in_encoder, c.used_in_decoder) {
                (true, true) => continue,
                (false, true) => "an encoder",
                (true, false) => "a decoder",
                (false, false) => "both an encoder and a decoder",
            };
            out.push(Finding {
                file: c.file.clone(),
                line: c.line,
                rule: "W002",
                message: format!(
                    "wire constant {} is never referenced by {missing}; a tag only one \
                     side knows cannot round-trip",
                    c.name
                ),
            });
        }
        // W003: a Bloom hash-family tag must round-trip through exactly
        // one encoder/decoder fn pair. Absence of a side is W002's job;
        // this catches the *spread* — a second fn interpreting the tag
        // bytes lets the two mappings drift independently.
        for c in &self.consts {
            if c.family != Family::BloomHash || !(c.used_in_encoder && c.used_in_decoder) {
                continue;
            }
            let Some(u) = self.usages.get(&(c.crate_name.clone(), c.name.clone())) else {
                continue;
            };
            if u.encoder_fns.len() == 1 && u.decoder_fns.len() == 1 {
                continue;
            }
            let spread = |fns: &BTreeSet<String>, side: &str| {
                if fns.len() > 1 {
                    Some(format!("{side} fns {:?}", fns.iter().collect::<Vec<_>>()))
                } else {
                    None
                }
            };
            let sides: Vec<String> = [
                spread(&u.encoder_fns, "encoder"),
                spread(&u.decoder_fns, "decoder"),
            ]
            .into_iter()
            .flatten()
            .collect();
            out.push(Finding {
                file: c.file.clone(),
                line: c.line,
                rule: "W003",
                message: format!(
                    "hash-family tag {} must round-trip through exactly one \
                     encoder/decoder pair, but is interpreted by {}; duplicate \
                     interpreters let the family mappings drift apart",
                    c.name,
                    sides.join(" and ")
                ),
            });
        }
    }
}

/// Raw text of `const NAME: T = <value>;` between `=` and `;`.
fn const_value_text(ctx: &FileContext, const_tok: usize) -> Option<String> {
    let toks = ctx.tokens();
    let mut j = const_tok + 2;
    // Find the `=` at depth 0 (the type may contain generics/arrays).
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match ctx.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => break,
                ";" if depth == 0 => return None, // no initializer
                _ => {}
            }
        }
        j += 1;
    }
    let mut parts = Vec::new();
    j += 1;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct && ctx.text(j) == ";" {
            return Some(parts.join(" "));
        }
        parts.push(ctx.text(j).to_string());
        j += 1;
        if parts.len() > 64 {
            return Some(parts.join(" ")); // defensive bound
        }
    }
    None
}
