//! W rules: the wire protocol's tag space is append-only and must stay
//! self-consistent. Every `REQ_*`/`RESP_*`/`MODE_*` tag, file magic,
//! and the `FORMAT_VERSION` must be unique within its family (W001)
//! and referenced by both an encoder and a decoder (W002) — a tag that
//! only one side knows is either dead weight or, worse, a frame the
//! peer cannot parse.
//!
//! This is a workspace-global check: constants are collected across
//! every file of the wire crates, then verified once at the end.

use super::is_ident;
use crate::config;
use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::report::Finding;
use std::collections::BTreeMap;

/// Which namespace a constant's uniqueness is checked within.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Family {
    Req,
    Resp,
    Mode,
    Magic,
    Version,
}

fn family_of(name: &str) -> Option<Family> {
    if name.starts_with("REQ_") {
        Some(Family::Req)
    } else if name.starts_with("RESP_") {
        Some(Family::Resp)
    } else if name.starts_with("MODE_") {
        Some(Family::Mode)
    } else if name.ends_with("_MAGIC") {
        Some(Family::Magic)
    } else if name == "FORMAT_VERSION" {
        Some(Family::Version)
    } else {
        None
    }
}

#[derive(Debug)]
struct WireConst {
    crate_name: String,
    file: String,
    line: u32,
    name: String,
    family: Family,
    /// Raw token text of the initializer, for same-value detection.
    value: String,
    used_in_encoder: bool,
    used_in_decoder: bool,
}

/// Accumulates definitions and usages across files, then reports.
#[derive(Debug, Default)]
pub struct WireCheck {
    consts: Vec<WireConst>,
    /// (crate, ident) → (encoder_seen, decoder_seen), collected before
    /// the defining file may even have been scanned.
    usages: BTreeMap<(String, String), (bool, bool)>,
}

impl WireCheck {
    /// Scans one file for wire-constant definitions and usages.
    pub fn collect(&mut self, ctx: &FileContext) {
        if !config::WIRE_CRATES.contains(&ctx.crate_name.as_str()) {
            return;
        }
        let toks = ctx.tokens();
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || ctx.is_test_tok(i) {
                continue;
            }
            // Definition: `const NAME : … = value ;`
            if ctx.text(i) == "const" && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = ctx.text(i + 1).to_string();
                if let Some(family) = family_of(&name) {
                    if let Some(value) = const_value_text(ctx, i) {
                        self.consts.push(WireConst {
                            crate_name: ctx.crate_name.clone(),
                            file: ctx.path.clone(),
                            line: toks[i].line,
                            name,
                            family,
                            value,
                            used_in_encoder: false,
                            used_in_decoder: false,
                        });
                        continue;
                    }
                }
            }
            // Usage: a tracked name inside an encoder/decoder fn.
            let t = ctx.text(i);
            if family_of(t).is_none() {
                continue;
            }
            // Skip the name token of the definition itself.
            if i > 0 && is_ident(ctx, i - 1, "const") {
                continue;
            }
            let Some(f) = ctx.enclosing_fn(i) else {
                continue;
            };
            let entry = self
                .usages
                .entry((ctx.crate_name.clone(), t.to_string()))
                .or_insert((false, false));
            if config::name_matches(&f.name, config::ENCODER_FN_HINTS) {
                entry.0 = true;
            }
            if config::name_matches(&f.name, config::DECODER_FN_HINTS) {
                entry.1 = true;
            }
        }
    }

    /// Emits W001/W002 findings after every file has been collected.
    pub fn finalize(mut self, out: &mut Vec<Finding>) {
        for c in &mut self.consts {
            if let Some(&(enc, dec)) = self.usages.get(&(c.crate_name.clone(), c.name.clone())) {
                c.used_in_encoder = enc;
                c.used_in_decoder = dec;
            }
        }
        // W001: duplicate value within (crate, family).
        let mut by_value: BTreeMap<(String, Family, String), &WireConst> = BTreeMap::new();
        for c in &self.consts {
            if c.family == Family::Version {
                continue; // a single version constant; nothing to collide with
            }
            let key = (c.crate_name.clone(), c.family, c.value.clone());
            match by_value.get(&key) {
                Some(first) => out.push(Finding {
                    file: c.file.clone(),
                    line: c.line,
                    rule: "W001",
                    message: format!(
                        "wire tag {} duplicates the value of {} ({}); tag values must be \
                         unique within their family",
                        c.name, first.name, c.value
                    ),
                }),
                None => {
                    by_value.insert(key, c);
                }
            }
        }
        // W002: every tag must appear on both sides of the wire.
        for c in &self.consts {
            let missing = match (c.used_in_encoder, c.used_in_decoder) {
                (true, true) => continue,
                (false, true) => "an encoder",
                (true, false) => "a decoder",
                (false, false) => "both an encoder and a decoder",
            };
            out.push(Finding {
                file: c.file.clone(),
                line: c.line,
                rule: "W002",
                message: format!(
                    "wire constant {} is never referenced by {missing}; a tag only one \
                     side knows cannot round-trip",
                    c.name
                ),
            });
        }
    }
}

/// Raw text of `const NAME: T = <value>;` between `=` and `;`.
fn const_value_text(ctx: &FileContext, const_tok: usize) -> Option<String> {
    let toks = ctx.tokens();
    let mut j = const_tok + 2;
    // Find the `=` at depth 0 (the type may contain generics/arrays).
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match ctx.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => break,
                ";" if depth == 0 => return None, // no initializer
                _ => {}
            }
        }
        j += 1;
    }
    let mut parts = Vec::new();
    j += 1;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct && ctx.text(j) == ";" {
            return Some(parts.join(" "));
        }
        parts.push(ctx.text(j).to_string());
        j += 1;
        if parts.len() > 64 {
            return Some(parts.join(" ")); // defensive bound
        }
    }
    None
}
