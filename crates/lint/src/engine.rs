//! Drives the rule set over a set of file contexts: local rules per
//! file, the cross-file wire/lock accumulators, then centralized
//! suppression (`lint:allow`) and ordering.

use crate::context::FileContext;
use crate::report::{AllowRecord, Finding, Report};
use crate::rules;

/// Runs every rule over `ctxs` and assembles the report. Findings on a
/// line covered by a *justified* `lint:allow(<rule>)` directive (same
/// line or the line above) are suppressed; an allow without a
/// ` -- justification` is itself a finding (A001) and suppresses
/// nothing.
pub fn scan(ctxs: &[FileContext]) -> Report {
    let mut findings = Vec::new();
    let mut report = Report {
        files_scanned: ctxs.len(),
        ..Report::default()
    };
    let mut wire = rules::wire::WireCheck::default();

    for ctx in ctxs {
        rules::determinism::check_partial_cmp(ctx, &mut findings);
        rules::determinism::check_hash_iteration(ctx, &mut findings);
        rules::determinism::check_wall_clock(ctx, &mut findings);
        rules::panics::check(ctx, &mut findings);
        rules::locks::check(ctx, &mut findings);
        rules::unsafety::check(ctx, &mut findings, &mut report.unsafe_inventory);
        wire.collect(ctx);

        // Allow hygiene applies to production files only — fixtures and
        // tests may demonstrate bare directives.
        for a in ctx.allows.iter().filter(|_| !ctx.is_dev) {
            if a.justification.is_empty() {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: a.line,
                    rule: "A001",
                    message: format!(
                        "lint:allow({}) without a ` -- justification`; an unexplained \
                         suppression is not an audit trail",
                        a.rules.join(",")
                    ),
                });
            } else {
                report.allows.push(AllowRecord {
                    file: ctx.path.clone(),
                    line: a.line,
                    rules: a.rules.clone(),
                    justification: a.justification.clone(),
                });
            }
        }
    }
    wire.finalize(&mut findings);

    // Centralized suppression: A001 is never suppressible.
    findings.retain(|f| {
        if f.rule == "A001" {
            return true;
        }
        let Some(ctx) = ctxs.iter().find(|c| c.path == f.file) else {
            return true;
        };
        !ctx.is_allowed(f.rule, f.line)
    });
    findings.sort();
    findings.dedup();
    report.findings = findings;
    report
        .unsafe_inventory
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    report
}
