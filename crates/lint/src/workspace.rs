//! Workspace discovery: walk the tree for `.rs` files, attribute each
//! to its owning crate (nearest ancestor `Cargo.toml`'s package name),
//! and classify dev directories. Deterministic: directory entries are
//! visited in sorted order, so the report is byte-stable run to run.

use crate::context::FileContext;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directory names whose contents are dev/test code, exempt from
/// production-only rules.
const DEV_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Builds a [`FileContext`] for every `.rs` file under `root`.
pub fn load(root: &Path) -> Result<Vec<FileContext>, String> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut crate_names: BTreeMap<PathBuf, String> = BTreeMap::new();
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = crate_of(root, &f, &mut crate_names);
        let is_dev = rel.split('/').any(|seg| DEV_DIRS.contains(&seg));
        let src = std::fs::read_to_string(&f).map_err(|e| format!("read {}: {e}", f.display()))?;
        out.push(FileContext::new(rel, crate_name, is_dev, src));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in rd {
        let e = e.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        entries.push(e.path());
    }
    entries.sort();
    for p in entries {
        let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if p.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Package name from the nearest ancestor `Cargo.toml` (at or below
/// `root`); falls back to the directory name when no manifest parses.
fn crate_of(root: &Path, file: &Path, cache: &mut BTreeMap<PathBuf, String>) -> String {
    let mut dir = file.parent();
    while let Some(d) = dir {
        if let Some(name) = cache.get(d) {
            return name.clone();
        }
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let name = package_name(&manifest).unwrap_or_else(|| {
                d.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            });
            cache.insert(d.to_path_buf(), name.clone());
            return name;
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    String::new()
}

/// Minimal TOML scan: the first `name = "…"` line after `[package]`.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            let (_, rhs) = line.split_once('=')?;
            return Some(rhs.trim().trim_matches('"').to_string());
        }
    }
    None
}
