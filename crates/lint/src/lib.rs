//! `smartstore-lint` — zero-dependency workspace static analysis.
//!
//! Every guarantee this workspace sells — bit-identical answers across
//! thread counts, shards, transports, and crash recoveries — is a
//! *convention* the compiler does not check. This crate makes the
//! conventions machine-enforced: a hand-rolled Rust lexer
//! ([`lexer`]) feeds a rule engine ([`engine`]) that walks the token
//! stream with lightweight context (crate, test spans, fn boundaries;
//! [`context`]) and applies five rule classes ([`rules`]):
//!
//! | rule | class | what it catches |
//! |------|-------|-----------------|
//! | D001 | determinism | `partial_cmp(..).unwrap/expect/unwrap_or` on floats |
//! | D002 | determinism | iteration over `HashMap`/`HashSet` in answer-producing crates |
//! | D003 | determinism | `Instant::now`/`SystemTime::now` outside the timing allowlist |
//! | P001–P003 | panic-freedom | `.unwrap()`, `.expect()`, panic macros in serving/persistence production code |
//! | W001–W002 | wire protocol | duplicate tags; tags missing an encoder or decoder |
//! | L001 | lock order | mutex acquisition against the declared order |
//! | U001 | unsafe audit | `unsafe` without a `SAFETY` comment (plus a full inventory) |
//! | A001 | hygiene | `lint:allow` without a justification |
//!
//! Suppression is inline only:
//! `// lint:allow(<RULE>) -- why this site is sound`, covering the
//! same line and the next. Run with `cargo run -p smartstore-lint`; the
//! process exits nonzero on any finding and writes
//! `results/lint.json`.

pub mod config;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use context::FileContext;
use report::Report;
use std::path::Path;

/// Lints every `.rs` file under `root` (a workspace checkout).
pub fn run(root: &Path) -> Result<Report, String> {
    let ctxs = workspace::load(root)?;
    Ok(engine::scan(&ctxs))
}

/// Lints a single source text under an explicit identity — the
/// fixture-test entry point, where a file on disk is scanned *as if*
/// it were production code of a given crate.
pub fn scan_source(path_label: &str, crate_name: &str, is_dev: bool, src: &str) -> Report {
    let ctx = FileContext::new(
        path_label.to_string(),
        crate_name.to_string(),
        is_dev,
        src.to_string(),
    );
    engine::scan(std::slice::from_ref(&ctx))
}
