//! A hand-rolled Rust lexer, sufficient for token-level static
//! analysis.
//!
//! The lexer's one job is to never confuse *code* with *text*: rule
//! patterns must not fire on `"partial_cmp"` inside a string literal,
//! a `// HashMap` comment, or a `r#"…unwrap()…"#` raw string. It
//! therefore handles the full literal surface of the language —
//! line/block comments (nested), string/char/byte/raw-string literals
//! (with hash fences), lifetimes vs. char literals, numeric literals
//! with tuple-field ambiguity (`a.1.partial_cmp` lexes as field `1`
//! then a method call, not the float `1.`) — while treating everything
//! else as identifiers and single-character punctuation.
//!
//! Comments are captured out-of-band (they carry `// SAFETY:` audits
//! and `// lint:allow(..)` suppressions) and never appear in the token
//! stream the rules walk.

/// What a token is; rules mostly dispatch on `Ident` vs. `Punct`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `partial_cmp`, …).
    Ident,
    /// Numeric literal (`0`, `1.5e-3`, `0xFF`, `1_000u64`).
    Num,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`, `c"x"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`.`  `:`  `{`  `#` …).
    Punct,
}

/// One token: kind, byte span into the source, and 1-based line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// One comment (line or block, doc or plain), with the lines it spans.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full raw text including the `//` / `/*` markers.
    pub text: String,
    /// True when the comment shares its start line with earlier code.
    pub trailing: bool,
}

/// Lexing output: the token stream plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The source text of token `i` (caller supplies the same source).
    pub fn text<'a>(&self, src: &'a str, i: usize) -> &'a str {
        let t = &self.tokens[i];
        &src[t.start..t.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens + comments. Malformed input (unterminated
/// strings or comments) is tolerated: the open literal runs to EOF.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_token = false;
    let mut out = Lexed::default();

    macro_rules! bump_lines {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if b[k] == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
                line_had_token = false;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n && (b[i + 1] == b'/' || b[i + 1] == b'*') {
            let start = i;
            let start_line = line;
            let trailing = line_had_token;
            if b[i + 1] == b'/' {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            } else {
                // Nested block comments.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                            line_had_token = false;
                        }
                        i += 1;
                    }
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: src[start..i].to_string(),
                trailing,
            });
            continue;
        }
        // String-ish literals, including raw/byte/c-string prefixes.
        if let Some((end, kind)) = match_string_like(b, i) {
            bump_lines!(i, end);
            out.tokens.push(Token {
                kind,
                start: i,
                end,
                line,
            });
            // `line` already advanced past the literal; the token keeps
            // its *ending* line, which is what suppression matching and
            // diagnostics want for multi-line strings.
            line_had_token = true;
            i = end;
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            let (end, kind) = match_quote(b, i);
            out.tokens.push(Token {
                kind,
                start: i,
                end,
                line,
            });
            line_had_token = true;
            i = end;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let end = match_number(b, i);
            out.tokens.push(Token {
                kind: TokKind::Num,
                start: i,
                end,
                line,
            });
            line_had_token = true;
            i = end;
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                start: i,
                end: j,
                line,
            });
            line_had_token = true;
            i = j;
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            start: i,
            end: i + 1,
            line,
        });
        line_had_token = true;
        i += 1;
    }
    out
}

/// Matches a string literal starting at `i`, including `r`/`b`/`c`
/// prefixes and raw hash fences. Returns the end offset, or `None`
/// when `i` does not start a string (e.g. `r` beginning an identifier).
fn match_string_like(b: &[u8], i: usize) -> Option<(usize, TokKind)> {
    let n = b.len();
    let mut j = i;
    // Optional one- or two-character prefix: r, b, c, br, rb (rb is not
    // legal Rust but harmless to accept).
    let mut raw = false;
    let mut saw_prefix = false;
    while j < n && (b[j] == b'r' || b[j] == b'b' || b[j] == b'c') && j - i < 2 {
        if b[j] == b'r' {
            raw = true;
        }
        saw_prefix = true;
        j += 1;
    }
    if saw_prefix && j < n && is_ident_continue(b[j]) && b[j] != b'"' && b[j] != b'#' {
        // `raw_value`, `break`, … — an identifier, not a literal prefix.
        return None;
    }
    if raw {
        // Count the hash fence.
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || b[j] != b'"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hashes.
        while j < n {
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, TokKind::Str));
                }
            }
            j += 1;
        }
        return Some((n, TokKind::Str));
    }
    if j < n && b[j] == b'"' {
        j += 1;
        while j < n {
            match b[j] {
                b'\\' => j = (j + 2).min(n),
                b'"' => return Some((j + 1, TokKind::Str)),
                _ => j += 1,
            }
        }
        return Some((n, TokKind::Str));
    }
    if saw_prefix && j < n && b[j] == b'\'' {
        // Byte literal b'x'.
        let (end, _) = match_quote(b, j);
        return Some((end, TokKind::Char));
    }
    None
}

/// Disambiguates a `'` at `i`: lifetime (`'a`, `'static`) vs. char
/// literal (`'a'`, `'\n'`, `'é'`). A lifetime is an identifier after
/// the quote with *no* closing quote; anything else scans as a char.
fn match_quote(b: &[u8], i: usize) -> (usize, TokKind) {
    let n = b.len();
    let mut j = i + 1;
    if j < n && is_ident_start(b[j]) && b[j] != b'\\' {
        let mut k = j + 1;
        while k < n && is_ident_continue(b[k]) {
            k += 1;
        }
        if k >= n || b[k] != b'\'' {
            return (k, TokKind::Lifetime);
        }
        // 'a' — single ident char then a quote: char literal.
        return (k + 1, TokKind::Char);
    }
    // Escape or punctuation char literal: scan to the closing quote.
    while j < n {
        match b[j] {
            b'\\' => j = (j + 2).min(n),
            b'\'' => return (j + 1, TokKind::Char),
            b'\n' => return (j, TokKind::Char), // malformed; don't eat the file
            _ => j += 1,
        }
    }
    (n, TokKind::Char)
}

/// Matches a numeric literal starting at a digit. A `.` joins the
/// number only when followed by a digit (so `0..n` and `a.1.method()`
/// lex correctly); `e`/`E` exponents may take a sign.
fn match_number(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    let mut seen_dot = false;
    while j < n {
        let c = b[j];
        if c.is_ascii_alphanumeric() || c == b'_' {
            // Exponent sign: 1e-5 / 1E+5.
            if (c == b'e' || c == b'E')
                && j + 1 < n
                && (b[j + 1] == b'+' || b[j + 1] == b'-')
                && j + 2 < n
                && b[j + 2].is_ascii_digit()
            {
                j += 2;
            }
            j += 1;
        } else if c == b'.' && !seen_dot && j + 1 < n && b[j + 1].is_ascii_digit() {
            seen_dot = true;
            j += 1;
        } else {
            break;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let l = lex(src);
        l.tokens
            .iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let l = lex(r#"let s = "partial_cmp().unwrap()";"#);
        let idents = l.tokens.iter().filter(|t| t.kind == TokKind::Ident).count();
        assert_eq!(idents, 2); // let, s
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"an "unwrap()" inside"#; let t = 1;"##;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("unwrap")));
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Ident && s == "t"));
    }

    #[test]
    fn byte_and_c_strings() {
        let ks = kinds(r#"const M: &[u8; 4] = b"SS\x00\x00"; let c = c"x";"#);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn comments_are_out_of_band_and_nested() {
        let src = "// standalone\na /* outer /* inner */ still */ b // trailing unwrap()\nc";
        let l = lex(src);
        let idents: Vec<String> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| src[t.start..t.end].to_string())
            .collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(l.comments.len(), 3);
        assert!(!l.comments[0].trailing); // standalone line
        assert!(l.comments[1].trailing); // block comment after `a`
        assert!(l.comments[2].trailing); // line comment after `b`
    }

    #[test]
    fn lifetime_vs_char() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let ks = kinds("a.1.partial_cmp(&b.1)");
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "partial_cmp"));
        assert_eq!(
            ks.iter()
                .filter(|(k, s)| *k == TokKind::Num && s == "1")
                .count(),
            2
        );
    }

    #[test]
    fn ranges_and_floats() {
        let ks = kinds("for i in 0..10 { let x = 1.5e-3; }");
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Num && s == "0"));
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Num && s == "10"));
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Num && s == "1.5e-3"));
    }

    #[test]
    fn lines_tracked_through_literals() {
        let src = "a\nb \"two\nline\" c\nd";
        let l = lex(src);
        let line_of = |name: &str| {
            l.tokens
                .iter()
                .find(|t| &src[t.start..t.end] == name)
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(2));
        assert_eq!(line_of("c"), Some(3));
        assert_eq!(line_of("d"), Some(4));
    }
}
