//! The workspace policy the rules enforce: which crates each rule
//! class covers, the wall-clock allowlist, and the declared lock
//! order. Kept in one place so tightening the policy is a one-file
//! change (and so the README's rule catalog has a single source of
//! truth to mirror).

/// Crates whose replies/bytes must be bit-identical across runs,
/// thread counts, shards, and recoveries: iteration over hash
/// containers in their production code is a determinism hazard (D002).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "smartstore",
    "smartstore-service",
    "smartstore-net",
    "smartstore-persist",
    "smartstore-rtree",
];

/// Crates whose production code must be panic-free (P001–P003): a
/// panic in any of these kills a shard or poisons a connection instead
/// of degrading to a typed error.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "smartstore-persist",
    "smartstore-service",
    "smartstore-net",
    "smartstore",
];

/// Crates allowed to read wall clocks (D003). Benchmarks and the
/// socket front end (latency accounting, load generation) legitimately
/// measure time; everything else must stay a pure function of its
/// inputs so replays and parity gates stay bit-identical.
pub const WALL_CLOCK_ALLOWED_CRATES: &[&str] =
    &["smartstore-bench", "smartstore-net", "shim-criterion"];

/// Crates carrying wire-protocol constants (W001–W002): request and
/// response tags, file magics, and the format version.
pub const WIRE_CRATES: &[&str] = &["smartstore-service", "smartstore-persist"];

/// Crates whose mutexes participate in the declared lock order (L001).
pub const LOCK_ORDER_CRATES: &[&str] = &["shim-rayon", "smartstore-persist"];

/// The declared mutex acquisition order, outermost first. Within one
/// function, a known mutex may only be locked after mutexes that
/// appear *earlier* in this list. Names are the field identifiers the
/// `.lock()` receiver ends with:
///
/// * `task`  — a scope task's payload slot (`shim-rayon`)
/// * `state` — drive/join/scope shared state (`shim-rayon`)
/// * `queue` — the pool's injector queue (`shim-rayon`)
/// * `inner` — the fault-VFS in-memory disk (`smartstore-persist`)
pub const LOCK_ORDER: &[&str] = &["task", "state", "queue", "inner"];

/// Method names that iterate a hash container (D002). `get`, `insert`,
/// `contains_key`, `len` and friends are order-blind and fine.
pub const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Function-name fragments classifying a fn as a wire *encoder*.
pub const ENCODER_FN_HINTS: &[&str] = &["put", "encode", "write", "header", "frame", "append"];

/// Function-name fragments classifying a fn as a wire *decoder*.
pub const DECODER_FN_HINTS: &[&str] = &[
    "get", "decode", "read", "parse", "open", "scan", "salvage", "replay", "load",
];

/// True when `name` contains any of the fragments.
pub fn name_matches(name: &str, hints: &[&str]) -> bool {
    hints.iter().any(|h| name.contains(h))
}
