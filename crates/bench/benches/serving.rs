//! Serving-layer throughput: requests/sec through the typed protocol
//! at 1, 2 and 4 shards.
//!
//! Builds a single reference system and sharded `MetadataServer`
//! deployments over the same MSN-model trace, verifies every shard
//! count answers the workload **bit-identically** to the reference
//! (a throughput number for a wrong answer is worthless), then times
//! batched query serving through the `Client` wire path. The table is
//! printed and written as JSON (`serving.json`) under
//! `target/bench-reports` (override with `BENCH_REPORT_DIR`) so the
//! serving trajectory is machine-trackable across PRs.
//!
//! Run with `cargo bench -p smartstore-bench --bench serving`
//! (`-- --quick` for the CI smoke size).

use smartstore::{QueryOptions, SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_bench::Report;
use smartstore_service::{Client, MetadataServer, Request, Response, ServerConfig};
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{QueryDistribution, QueryWorkload, TraceKind};
use std::time::Instant;

const TOTAL_UNITS: usize = 60;
const BATCH: usize = 64;

fn requests_of(w: &QueryWorkload) -> Vec<Request> {
    let mut reqs = Vec::new();
    for q in &w.points {
        reqs.push(Request::Point {
            name: q.name.clone(),
        });
    }
    for q in &w.ranges {
        reqs.push(Request::Range {
            lo: q.lo.clone(),
            hi: q.hi.clone(),
            opts: QueryOptions::offline(),
        });
    }
    for q in &w.topks {
        reqs.push(Request::TopK {
            point: q.point.clone(),
            opts: QueryOptions::offline().with_k(q.k),
        });
    }
    reqs
}

/// Answer ids per request — the bit-identity fingerprint.
fn answers(responses: &[Response]) -> Vec<Vec<u64>> {
    responses
        .iter()
        .map(|r| r.file_ids().expect("query responses only"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let (n_files, n_each) = if quick { (2_000, 30) } else { (10_000, 120) };

    let pop = population(TraceKind::Msn, n_files, 11);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: n_each,
            n_topk: n_each,
            n_point: n_each,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed: 13,
            ..Default::default()
        },
    );
    let reqs = requests_of(&w);
    println!(
        "== serving bench: {n_files} files, {} requests, batch {BATCH} ==",
        reqs.len()
    );

    // Reference answers from a single unsharded system.
    let reference = SmartStoreSystem::build(
        pop.files.clone(),
        TOTAL_UNITS,
        SmartStoreConfig::default(),
        11,
    );
    let engine = reference.query();
    let expected: Vec<Vec<u64>> = w
        .points
        .iter()
        .map(|q| engine.point(&q.name).file_ids)
        .chain(w.ranges.iter().map(|q| {
            engine
                .range(&q.lo, &q.hi, &QueryOptions::offline())
                .file_ids
        }))
        .chain(w.topks.iter().map(|q| {
            engine
                .topk(&q.point, &QueryOptions::offline().with_k(q.k))
                .file_ids
        }))
        .collect();

    let mut report = Report::new(
        "serving",
        "Request serving throughput vs shard count (typed protocol, wire codec)",
        &[
            "shards",
            "requests",
            "wall_ms",
            "req_per_s",
            "sim_latency_ms_mean",
            "wire_kb",
        ],
    );

    for shards in [1usize, 2, 4] {
        let mut srv = MetadataServer::build(
            pop.files.clone(),
            &ServerConfig {
                n_shards: shards,
                units_per_shard: TOTAL_UNITS / shards,
                seed: 11,
                store_dir: None,
                ..ServerConfig::default()
            },
        )
        .expect("server builds");

        // Bit-identity gate before timing.
        let mut client = Client::new();
        let mut all = Vec::new();
        for chunk in reqs.chunks(BATCH) {
            for r in chunk {
                client.enqueue(r.clone());
            }
            all.extend(client.flush(&mut srv).expect("wire ok"));
        }
        assert_eq!(
            answers(&all),
            expected,
            "{shards}-shard answers diverged from the single-system reference"
        );

        // Timed serving pass.
        let mut client = Client::new();
        let t = Instant::now();
        let mut sim_latency_ns = 0u64;
        let mut served = 0usize;
        for chunk in reqs.chunks(BATCH) {
            for r in chunk {
                client.enqueue(r.clone());
            }
            for resp in client.flush(&mut srv).expect("wire ok") {
                sim_latency_ns += resp.cost().map_or(0, |c| c.latency_ns);
                served += 1;
            }
        }
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let stats = client.stats();
        report.row(&[
            shards.to_string(),
            served.to_string(),
            format!("{wall_ms:.1}"),
            format!("{:.0}", served as f64 / (wall_ms / 1e3)),
            format!("{:.3}", sim_latency_ns as f64 / served as f64 / 1e6),
            format!(
                "{:.1}",
                (stats.bytes_sent + stats.bytes_received) as f64 / 1024.0
            ),
        ]);
    }

    report.note(format!(
        "all shard counts verified bit-identical to a single {TOTAL_UNITS}-unit system before timing"
    ));
    report.note(
        "shard fan-out runs on the shared thread pool (order-preserving collect keeps the \
         merge deterministic); on a 1-core host wall-clock still tracks total work, while \
         simulated latency models shards as parallel (max across shards)",
    );
    report.note(format!(
        "host has {} hardware thread(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    print!("{}", report.render());
    let dir = smartstore_bench::report::default_report_dir();
    if let Err(e) = report.write_json(&dir) {
        eprintln!("warning: could not write JSON report: {e}");
    } else {
        println!("json report: {}", dir.join("serving.json").display());
    }
}
