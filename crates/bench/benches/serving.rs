//! Network serving: open-loop load over real sockets, per
//! (transport × shard count × arrival rate) cell.
//!
//! Each cell spawns a `NetServer` (TCP or UDS), first runs the
//! **bit-identity parity gate** — the same mixed request stream
//! (point/range/top-k/mutation/stats) is driven through a
//! `SocketTransport` and through the in-process wire path against an
//! identically built server, and the response *bytes* must be equal;
//! a throughput number from a front end that changes answers is
//! worthless — and only then times open-loop load at fixed arrival
//! rates, recording p50/p99/p999 latency, achieved req/s, and shed
//! rate from a log-bucketed histogram. A final constrained-budget cell
//! demonstrates overload: typed `Overloaded` sheds with the p99 of
//! admitted requests staying bounded instead of queueing unboundedly.
//!
//! The table is printed and written as JSON (`serving.json`) under
//! `target/bench-reports` (override with `BENCH_REPORT_DIR`); CI
//! copies it to `results/serving.json`.
//!
//! Run with `cargo bench -p smartstore-bench --bench serving`
//! (`-- --quick` for the CI smoke size).

use smartstore_bench::fixture::population;
use smartstore_bench::Report;
use smartstore_net::loadgen::{generate_requests, run_open_loop, LoadMixConfig};
use smartstore_net::{NetAddr, NetServer, NetServerConfig, SocketTransport};
use smartstore_service::codec::encode_request_batch;
use smartstore_service::{MetadataServer, Request, ServerConfig, Transport};
use smartstore_trace::{ArrivalConfig, ArrivalSchedule, MetadataPopulation, TraceKind};

const TOTAL_UNITS: usize = 60;
const CONNECTIONS: usize = 4;

fn build_server(pop: &MetadataPopulation, shards: usize) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: shards,
            units_per_shard: (TOTAL_UNITS / shards).max(1),
            seed: 11,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds")
}

/// The parity gate: identical mixed streams through the socket and the
/// in-process wire path must produce identical response bytes.
fn parity_gate(addr: &NetAddr, reference: &mut MetadataServer, reqs: &[Request]) {
    let mut socket = SocketTransport::connect(addr.clone()).expect("parity connect");
    for batch in reqs.chunks(16) {
        let wire = encode_request_batch(batch);
        let over_socket = socket.exchange(&wire, batch.len()).expect("socket leg");
        let in_process = reference.exchange(&wire, batch.len()).expect("local leg");
        assert_eq!(
            over_socket, in_process,
            "socket answers diverged from the in-process wire path"
        );
    }
}

struct Cell {
    transport: &'static str,
    shards: usize,
    budget: usize,
    rate_rps: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let (n_files, shard_counts, rates, cell_secs, parity_n): (usize, &[usize], &[f64], f64, usize) =
        if quick {
            (2_000, &[1, 2], &[2_000.0, 8_000.0], 0.4, 200)
        } else {
            (10_000, &[1, 2, 4], &[1_000.0, 4_000.0, 16_000.0], 1.25, 400)
        };
    let pop = population(TraceKind::Msn, n_files, 11);
    println!(
        "== net serving bench: {n_files} files, {CONNECTIONS} connections, \
         ~{cell_secs:.2}s per cell =="
    );

    let mut report = Report::new(
        "serving",
        "Open-loop socket serving: latency percentiles, throughput, and shed rate per \
         (transport, shard count, arrival rate)",
        &[
            "transport",
            "shards",
            "budget",
            "rate_rps",
            "requests",
            "req_per_s",
            "shed_pct",
            "p50_ms",
            "p99_ms",
            "p999_ms",
        ],
    );

    let uds_dir = std::env::temp_dir().join(format!("smartstore_serving_{}", std::process::id()));
    std::fs::create_dir_all(&uds_dir).expect("uds dir");

    let run_cell = |cell: &Cell, gate: bool| -> smartstore_net::LoadReport {
        let uds_path = uds_dir.join(format!("{}s_{}.sock", cell.shards, cell.rate_rps as u64));
        let cfg = NetServerConfig {
            tcp: cell.transport == "tcp",
            uds_path: (cell.transport == "uds").then(|| uds_path.clone()),
            max_inflight: cell.budget,
            ..NetServerConfig::default()
        };
        let handle = NetServer::spawn(build_server(&pop, cell.shards), cfg).expect("spawn");
        let addr = match cell.transport {
            "tcp" => NetAddr::Tcp(handle.tcp_addr().expect("tcp addr")),
            _ => NetAddr::Uds(uds_path),
        };
        if gate {
            let stream = generate_requests(
                &pop,
                &LoadMixConfig {
                    n_requests: parity_n,
                    seed: 0x9a7e ^ cell.shards as u64,
                    ..LoadMixConfig::default()
                },
            );
            let mut with_stats = stream;
            with_stats.push(Request::Stats);
            parity_gate(&addr, &mut build_server(&pop, cell.shards), &with_stats);
        }
        let n_requests = (cell.rate_rps * cell_secs) as usize;
        let seed = 0x5e41 ^ (cell.rate_rps as u64) ^ ((cell.shards as u64) << 32);
        let reqs = generate_requests(
            &pop,
            &LoadMixConfig {
                n_requests,
                seed,
                ..LoadMixConfig::default()
            },
        );
        let schedule = ArrivalSchedule::generate(&ArrivalConfig {
            rate_rps: cell.rate_rps,
            n_arrivals: reqs.len(),
            burstiness: 2.0,
            seed,
            ..ArrivalConfig::default()
        });
        let out = run_open_loop(&addr, &reqs, &schedule, CONNECTIONS).expect("load run");
        assert_eq!(out.errors, 0, "loopback load must not hit transport errors");
        handle.shutdown().expect("clean shutdown");
        out
    };

    for transport in ["tcp", "uds"] {
        for &shards in shard_counts {
            for (i, &rate_rps) in rates.iter().enumerate() {
                let cell = Cell {
                    transport,
                    shards,
                    budget: NetServerConfig::default().max_inflight,
                    rate_rps,
                };
                // Gate once per (transport, shards); rates reuse it.
                let out = run_cell(&cell, i == 0);
                report.row(&[
                    transport.to_string(),
                    shards.to_string(),
                    cell.budget.to_string(),
                    format!("{rate_rps:.0}"),
                    out.sent.to_string(),
                    format!("{:.0}", out.achieved_rps()),
                    format!("{:.1}", out.shed_rate() * 100.0),
                    format!("{:.3}", out.latency_ms(0.50)),
                    format!("{:.3}", out.latency_ms(0.99)),
                    format!("{:.3}", out.latency_ms(0.999)),
                ]);
            }
        }
    }

    // Overload cell: a deliberately tiny admission budget at an arrival
    // rate far above capacity. The server must shed (typed Overloaded),
    // and the p99 of *admitted* requests must stay bounded — shedding at
    // the door instead of queueing unboundedly is the whole point.
    let overload = Cell {
        transport: "tcp",
        shards: shard_counts[shard_counts.len() - 1],
        budget: 4,
        rate_rps: if quick { 20_000.0 } else { 40_000.0 },
    };
    let out = run_cell(&overload, false);
    assert!(
        out.shed > 0,
        "an above-capacity rate against a 4-permit budget must shed"
    );
    let p99_admitted = out.latency_ms(0.99);
    assert!(
        p99_admitted < 1_500.0,
        "p99 of admitted requests must stay bounded under overload, got {p99_admitted:.1}ms"
    );
    report.row(&[
        "tcp*".to_string(),
        overload.shards.to_string(),
        overload.budget.to_string(),
        format!("{:.0}", overload.rate_rps),
        out.sent.to_string(),
        format!("{:.0}", out.achieved_rps()),
        format!("{:.1}", out.shed_rate() * 100.0),
        format!("{:.3}", out.latency_ms(0.50)),
        format!("{:.3}", p99_admitted),
        format!("{:.3}", out.latency_ms(0.999)),
    ]);

    report.note(
        "every (transport, shards) pair passed the bit-identity parity gate before timing: \
         socket response bytes equal the in-process wire path over a mixed \
         point/range/top-k/mutation/stats stream",
    );
    report.note(
        "open-loop driver: arrival schedule fixed in advance (bursty, time-balanced), latency \
         measured from the *scheduled* arrival — queueing delay is charged to the server, \
         avoiding coordinated omission; quantiles from a log-bucketed histogram \
         (≤3.125% bucket error)",
    );
    report.note(
        "tcp* row: overload demonstration — 4-permit admission budget at an above-capacity \
         rate sheds with typed Overloaded responses (shed_pct) while the p99 of admitted \
         requests stays bounded (asserted < 1.5s)",
    );
    report.note(
        "rates above host capacity under the generous default budget show honest open-loop \
         queueing delay in the percentiles; the tcp* row is the contrast — a tight budget \
         sheds at the door and keeps admitted latency low",
    );
    report.note(format!(
        "host has {} hardware thread(s); {CONNECTIONS} client connections per cell",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    print!("{}", report.render());
    let dir = smartstore_bench::report::default_report_dir();
    if let Err(e) = report.write_json(&dir) {
        eprintln!("warning: could not write JSON report: {e}");
    } else {
        println!("json report: {}", dir.join("serving.json").display());
    }
    let _ = std::fs::remove_dir_all(&uds_dir);
}
