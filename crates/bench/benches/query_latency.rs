//! Criterion micro-benchmarks for single-query latency (wall-clock of
//! the actual Rust code, complementing the simulated-cost Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartstore::QueryOptions;
use smartstore_bench::baselines::{DbmsBaseline, RTreeBaseline};
use smartstore_bench::fixture::{population, system, workload};
use smartstore_trace::{QueryDistribution, TraceKind};

fn bench_queries(c: &mut Criterion) {
    let pop = population(TraceKind::Msn, 4000, 1);
    let db = DbmsBaseline::build(&pop.files);
    let rt = RTreeBaseline::build(&pop.files);
    let sys = system(&pop, 40, 1);
    let w = workload(&pop, QueryDistribution::Zipf, 32, 2);

    let mut g = c.benchmark_group("range_query");
    g.bench_function(BenchmarkId::new("dbms", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.ranges[i % w.ranges.len()];
            i += 1;
            std::hint::black_box(db.range(&q.lo, &q.hi))
        })
    });
    g.bench_function(BenchmarkId::new("rtree", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.ranges[i % w.ranges.len()];
            i += 1;
            std::hint::black_box(rt.range(&q.lo, &q.hi))
        })
    });
    g.bench_function(BenchmarkId::new("smartstore", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.ranges[i % w.ranges.len()];
            i += 1;
            std::hint::black_box(sys.query().range(&q.lo, &q.hi, &QueryOptions::offline()))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("topk_query");
    g.bench_function(BenchmarkId::new("dbms", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.topks[i % w.topks.len()];
            i += 1;
            std::hint::black_box(db.topk(&q.point, q.k))
        })
    });
    g.bench_function(BenchmarkId::new("rtree", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.topks[i % w.topks.len()];
            i += 1;
            std::hint::black_box(rt.topk(&q.point, q.k))
        })
    });
    g.bench_function(BenchmarkId::new("smartstore", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.topks[i % w.topks.len()];
            i += 1;
            std::hint::black_box(
                sys.query()
                    .topk(&q.point, &QueryOptions::offline().with_k(q.k)),
            )
        })
    });
    g.finish();

    let mut g = c.benchmark_group("point_query");
    g.bench_function(BenchmarkId::new("dbms", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.points[i % w.points.len()];
            i += 1;
            std::hint::black_box(db.point(&q.name))
        })
    });
    g.bench_function(BenchmarkId::new("smartstore", 4000), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &w.points[i % w.points.len()];
            i += 1;
            std::hint::black_box(sys.query().point(&q.name))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries
}
criterion_main!(benches);
