//! Query-latency benchmark: the columnar read path vs the pre-columnar
//! record walk, with a JSON trajectory report.
//!
//! The storage-unit scan used to re-project every record per query
//! (four `ln()` calls + divides in `attr_vector`), full-sort all n
//! records to keep k, and prefix-scan names behind the Bloom probe.
//! The columnar path scans a flat SoA coordinate table, keeps k in a
//! bounded heap, and resolves names through a slot map. This bench
//! keeps the *pre-columnar implementation alive as a reference*:
//! identical routing (the shared semantic R-tree), per-unit evaluation
//! by record walk, and the old sort-merge for top-k.
//!
//! Every query's answer is checked **bit-identical** between the two
//! paths before timing (ids and squared distances; a latency number
//! for a wrong answer is worthless), then both paths are timed over
//! the same workload. The table is printed and written as JSON
//! (`query_latency.json`) under `target/bench-reports` (override with
//! `BENCH_REPORT_DIR`); CI copies it into `results/` so the perf
//! trajectory accumulates per PR.
//!
//! Run with `cargo bench -p smartstore-bench --bench query_latency`
//! (`-- --quick` for the CI smoke: 4k files only; the default runs
//! 4k and 50k).

use smartstore::{HashFamily, QueryOptions, SmartStoreSystem};
use smartstore_bench::fixture::{population, system, system_with_family, workload};
use smartstore_bench::Report;
use smartstore_bloom::BloomHierarchy;
use smartstore_rtree::Rect;
use smartstore_trace::{QueryDistribution, QueryWorkload, TraceKind};
use std::time::Instant;

/// Minimum speedup the columnar path must show on the unit-scan-bound
/// query kinds (range, top-k) at every scale — the PR's acceptance
/// gate. Single-core valid: nothing here depends on thread count.
const MIN_SPEEDUP: f64 = 1.3;

/// Minimum full-path point-query speedup the fast hash family must
/// show over the MD5 family at the 50k-file scale. The point path is
/// Bloom-probe-bound, so swapping ~2 MD5 compressions per probe for
/// one multiply-xor pass must show up end to end.
const FAMILY_GATE: f64 = 5.0;

// ---------------------------------------------------------------------
// Reference ("before"): the pre-columnar record walk, same routing.
// ---------------------------------------------------------------------

fn ref_unit_range(u: &smartstore::StorageUnit, lo: &[f64], hi: &[f64], out: &mut Vec<u64>) {
    if let Some(m) = u.mbr() {
        let q = Rect::new(lo.to_vec(), hi.to_vec());
        if !m.intersects(&q) {
            return;
        }
    }
    for f in u.files() {
        let v = f.attr_vector();
        if v.iter()
            .zip(lo.iter().zip(hi))
            .all(|(&x, (&l, &h))| l <= x && x <= h)
        {
            out.push(f.file_id);
        }
    }
}

fn ref_unit_topk(u: &smartstore::StorageUnit, point: &[f64], k: usize) -> Vec<(u64, f64)> {
    let mut scored: Vec<(u64, f64)> = u
        .files()
        .iter()
        .map(|f| {
            let d = f
                .attr_vector()
                .iter()
                .zip(point)
                .map(|(&a, &q)| (a - q) * (a - q))
                .sum::<f64>();
            (f.file_id, d)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

fn ref_range(sys: &SmartStoreSystem, lo: &[f64], hi: &[f64]) -> Vec<u64> {
    let route = sys.tree().route_range(lo, hi);
    let mut out = Vec::new();
    for &u in &route.target_units {
        ref_unit_range(&sys.units()[u], lo, hi, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The pre-columnar MaxD walk: best-first unit order, per-unit
/// full-sort top-k, re-sort the merged list after every unit.
fn ref_topk(sys: &SmartStoreSystem, point: &[f64], k: usize) -> Vec<(u64, f64)> {
    let (order, _) = sys.tree().route_topk(point);
    let mut best: Vec<(u64, f64)> = Vec::new();
    for &(u, lower_bound) in &order {
        let max_d = if best.len() == k {
            best.last().map(|&(_, d)| d).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };
        if lower_bound > max_d {
            break;
        }
        best.extend(ref_unit_topk(&sys.units()[u], point, k));
        best.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        best.truncate(k);
    }
    best
}

fn ref_point(sys: &SmartStoreSystem, name: &str) -> Vec<u64> {
    let route = sys.tree().route_point(name);
    let mut out = Vec::new();
    for &u in &route.target_units {
        let unit = &sys.units()[u];
        if !unit.bloom().contains(name.as_bytes()) {
            continue;
        }
        for f in unit.files() {
            if f.name == name {
                out.push(f.file_id);
                break;
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

fn identity_gate(sys: &SmartStoreSystem, w: &QueryWorkload, opts: &QueryOptions) {
    let engine = sys.query();
    for q in &w.ranges {
        assert_eq!(
            ref_range(sys, &q.lo, &q.hi),
            engine.range(&q.lo, &q.hi, opts).file_ids,
            "range answers diverged from the record-walk reference"
        );
    }
    for q in &w.topks {
        let want = ref_topk(sys, &q.point, q.k);
        let (got, _) = engine.topk_scored(&q.point, &opts.with_k(q.k));
        assert_eq!(got.len(), want.len(), "top-k cardinality diverged");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.0, b.0, "top-k ids diverged");
            assert!(
                a.1.to_bits() == b.1.to_bits(),
                "top-k distance bits diverged: {} vs {}",
                a.1,
                b.1
            );
        }
    }
    for q in &w.points {
        assert_eq!(
            ref_point(sys, &q.name),
            engine.point(&q.name).file_ids,
            "point answers diverged from the prefix-scan reference"
        );
    }
}

/// Best-round ns/query of `f` over `rounds` passes of a
/// `queries`-query workload. Min-over-rounds filters scheduler
/// preemptions — on a shared 1-core host a single 10 ms tick landing
/// inside a ~ms timing loop would otherwise swamp the mean.
fn time_ns(rounds: usize, queries: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64 / queries as f64);
    }
    best
}

fn bench_scale(n_files: usize, rounds: usize, report: &mut Report) {
    let n_units = (n_files / 100).max(4);
    println!("== query latency: {n_files} files, {n_units} units, {rounds} rounds ==");
    let pop = population(TraceKind::Msn, n_files, 1);
    let mut sys = system(&pop, n_units, 1);
    // Version chains are empty here; disable the overlay so both paths
    // evaluate exactly the unit scans plus routing.
    sys.set_versioning(false);
    let w = workload(&pop, QueryDistribution::Zipf, 48, 2);
    let opts = QueryOptions::offline();

    identity_gate(&sys, &w, &opts);

    let engine = sys.query();
    let before_range = time_ns(rounds, w.ranges.len(), || {
        for q in &w.ranges {
            std::hint::black_box(ref_range(&sys, &q.lo, &q.hi));
        }
    });
    let after_range = time_ns(rounds, w.ranges.len(), || {
        for q in &w.ranges {
            std::hint::black_box(engine.range(&q.lo, &q.hi, &opts));
        }
    });
    let before_topk = time_ns(rounds, w.topks.len(), || {
        for q in &w.topks {
            std::hint::black_box(ref_topk(&sys, &q.point, q.k));
        }
    });
    let after_topk = time_ns(rounds, w.topks.len(), || {
        for q in &w.topks {
            std::hint::black_box(engine.topk(&q.point, &opts.with_k(q.k)));
        }
    });
    let before_point = time_ns(rounds, w.points.len(), || {
        for q in &w.points {
            std::hint::black_box(ref_point(&sys, &q.name));
        }
    });
    let after_point = time_ns(rounds, w.points.len(), || {
        for q in &w.points {
            std::hint::black_box(engine.point(&q.name));
        }
    });

    // Unit-local name resolution with routing and Bloom probes factored
    // out: the full point path is dominated by MD5 Bloom hashing
    // (identical in both paths), so the indexed-lookup win only shows
    // on the raw lookup itself.
    let point_targets: Vec<(usize, &str)> = w
        .points
        .iter()
        .flat_map(|q| {
            sys.tree()
                .route_point(&q.name)
                .target_units
                .into_iter()
                .map(move |u| (u, q.name.as_str()))
        })
        .collect();
    let point_rounds = rounds * 50;
    let before_point_unit = time_ns(point_rounds, point_targets.len(), || {
        for &(u, name) in &point_targets {
            std::hint::black_box(sys.units()[u].files().iter().find(|f| f.name == name));
        }
    });
    let after_point_unit = time_ns(point_rounds, point_targets.len(), || {
        for &(u, name) in &point_targets {
            std::hint::black_box(sys.units()[u].lookup_name(name));
        }
    });

    // Hash-family rows: the same corpus indexed under the MD5 family
    // (the paper's derivation) vs the fast family the system now
    // defaults to. Routing false positives never change answers (exact
    // name matching sits behind the filters), but the gate below proves
    // it per workload before any timing.
    let md5_sys = {
        let mut s = system_with_family(&pop, n_units, 1, HashFamily::Md5);
        s.set_versioning(false);
        s
    };
    let md5_engine = md5_sys.query();
    for q in &w.points {
        assert_eq!(
            md5_engine.point(&q.name).file_ids,
            engine.point(&q.name).file_ids,
            "point answers diverged between hash families"
        );
    }
    let before_family = time_ns(rounds, w.points.len(), || {
        for q in &w.points {
            std::hint::black_box(md5_engine.point(&q.name));
        }
    });
    let after_family = time_ns(rounds, w.points.len(), || {
        for q in &w.points {
            std::hint::black_box(engine.point(&q.name));
        }
    });

    // Routing-probe micro-row: ns per Bloom-hierarchy filter probe,
    // isolated from unit-local name resolution. One hierarchy per
    // family over the same leaves (units) and the same probe stream.
    let (before_probe, after_probe) = {
        let mut per_family = [0.0f64; 2];
        for (slot, family) in [HashFamily::Md5, HashFamily::Fast].into_iter().enumerate() {
            let mut h =
                BloomHierarchy::with_family(sys.cfg.bloom_bits, sys.cfg.bloom_hashes, family);
            let leaves: Vec<_> = sys
                .units()
                .iter()
                .map(|u| h.add_leaf(u.id, u.files().iter().map(|f| f.name.as_bytes())))
                .collect();
            let root = h.add_internal(leaves);
            h.set_root(root);
            let mut probes = 0usize;
            for q in &w.points {
                probes += h.query(q.name.as_bytes()).1;
            }
            per_family[slot] = time_ns(rounds * 4, probes, || {
                for q in &w.points {
                    std::hint::black_box(h.query(q.name.as_bytes()));
                }
            });
        }
        (per_family[0], per_family[1])
    };

    for (kind, before, after, gate) in [
        ("range", before_range, after_range, Some(MIN_SPEEDUP)),
        ("topk", before_topk, after_topk, Some(MIN_SPEEDUP)),
        ("point", before_point, after_point, None),
        ("point_unit", before_point_unit, after_point_unit, None),
        (
            "point_family",
            before_family,
            after_family,
            (n_files >= 50_000).then_some(FAMILY_GATE),
        ),
        ("hierarchy_probe", before_probe, after_probe, None),
    ] {
        let speedup = before / after.max(1e-9);
        report.row(&[
            n_files.to_string(),
            kind.to_string(),
            format!("{before:.0}"),
            format!("{after:.0}"),
            format!("{speedup:.2}"),
        ]);
        println!("  {kind:<16} {before:>10.0} ns -> {after:>8.0} ns  ({speedup:.2}x)");
        if let Some(g) = gate {
            assert!(
                speedup >= g,
                "{kind} at {n_files} files: speedup {speedup:.2}x below the {g}x gate"
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");

    let mut report = Report::new(
        "query_latency",
        "Columnar read path vs pre-columnar record walk (mean ns/query, best of R rounds, identical routing)",
        &["files", "kind", "before_ns", "after_ns", "speedup"],
    );

    bench_scale(4_000, if quick { 5 } else { 12 }, &mut report);
    if !quick {
        bench_scale(50_000, 4, &mut report);
    }

    report.note(
        "before = record walk (per-record attr_vector projection, full-sort top-k, \
         prefix name scan); after = columnar path (flat SoA coords, bounded heap, \
         name→slot map). Both route through the same semantic R-tree and every \
         answer is verified bit-identical before timing.",
    );
    report.note(format!(
        "range and top-k are gated at ≥{MIN_SPEEDUP}x; results are single-thread \
         (no thread-count dependence), valid on a 1-core host"
    ));
    report.note(
        "full-path point latency is dominated by the Bloom probes of routing and \
         admission (identical in both paths); point_unit isolates the raw name \
         resolution the columnar path changed (name→slot map vs prefix scan)",
    );
    report.note(format!(
        "point_family re-indexes the same corpus under the paper's MD5 hash \
         family (before) vs the fast Kirsch–Mitzenmacher family (after) and runs \
         the full point path on each; answers are checked identical between \
         families before timing, and the speedup is gated at ≥{FAMILY_GATE}x at \
         50k files. hierarchy_probe is the routing micro-row: ns per Bloom-\
         hierarchy filter probe, MD5 vs fast, no name resolution"
    ));
    report.note(
        "point-query simulated cost follows the indexed-lookup rule (1 record on a \
         hit); see LocalWork / routing::point_query_cost",
    );
    print!("{}", report.render());
    let dir = smartstore_bench::report::default_report_dir();
    if let Err(e) = report.write_json(&dir) {
        eprintln!("warning: could not write JSON report: {e}");
    } else {
        println!("json report: {}", dir.join("query_latency.json").display());
    }
}
