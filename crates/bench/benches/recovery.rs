//! Crash-recovery benchmark: how long does a cold start take as the
//! WAL grows, and what does salvaging a torn tail cost?
//!
//! Two sweeps feed `target/bench-reports/recovery.json` (the CI
//! perf-trajectory artifact):
//!
//! * **churn sweep** — snapshot a system, journal N changes, drop the
//!   store, and time `open_from_dir`. Recovery time should be the
//!   snapshot-decode floor plus a per-frame replay cost, so the sweep
//!   exposes the slope the `wal_compact_bytes` knob trades against
//!   write-path latency. Every recovery is gated bit-identical to the
//!   live system before its row is reported.
//! * **torn-tail salvage** — truncate the live WAL segment mid-frame
//!   (the bytes an honest disk loses in a crash between `write` and
//!   `fsync`) and time the salvage path: recovery must keep every
//!   complete frame, quarantine the torn bytes to a side file, and
//!   still open to a valid prefix state.
//!
//! Run with `cargo bench -p smartstore-bench --bench recovery`
//! (`--quick` for the CI smoke scale).

use criterion::{criterion_group, criterion_main, Criterion};
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_bench::Report;
use smartstore_persist::{snapshot, SystemPersist as _};
use smartstore_trace::{FileMetadata, TraceKind};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn quick() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn scale() -> (usize, usize, Vec<u64>) {
    if quick() {
        (2_000, 10, vec![0, 100, 400])
    } else {
        (20_000, 40, vec![0, 500, 2_000, 8_000])
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "smartstore_recovery_bench_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn churn_change(base: &[FileMetadata], i: u64) -> Change {
    match i % 3 {
        0 => {
            let mut f = base[(i as usize * 37) % base.len()].clone();
            f.file_id = 60_000_000 + i;
            f.name = format!("churn_{i}");
            Change::Insert(f)
        }
        1 => Change::Delete(base[(i as usize * 11) % base.len()].file_id),
        _ => {
            let mut f = base[(i as usize * 13) % base.len()].clone();
            f.size = f.size.wrapping_mul(2).max(1);
            f.mtime += 1.0;
            Change::Modify(f)
        }
    }
}

/// The live WAL segment of a store directory (largest generation — the
/// zero-padded names sort lexicographically).
fn live_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .collect();
    wals.sort();
    dir.join(wals.last().expect("store has a WAL segment"))
}

/// Recovery time as a function of WAL length, bit-identity gated.
fn churn_sweep(n_files: usize, n_units: usize, levels: &[u64], report_dir: &Path) {
    let pop = population(TraceKind::Msn, n_files, 41);
    let base_sys = SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), 41);
    let fingerprint = |sys: &SmartStoreSystem| snapshot::encode_snapshot(&sys.to_parts()).0;

    let mut report = Report::new(
        "recovery",
        "Cold-start recovery time vs. WAL churn level",
        &[
            "wal_changes",
            "replayed_frames",
            "wal_segments",
            "snapshot_mib",
            "recovery_ms",
            "frames_per_s",
            "torn_tail",
            "dropped_bytes",
            "quarantined_bytes",
        ],
    );

    for &n_changes in levels {
        // A fresh twin per level: compaction thresholds are left at
        // their defaults, so high churn levels also exercise recovery
        // across whatever delta chain the store cut along the way.
        let mut parts = base_sys.to_parts();
        // Keep the WAL un-compacted across the sweep so `n_changes`
        // really is the replay length being measured.
        parts.cfg.persist.wal_compact_bytes = u64::MAX;
        let mut sys = SmartStoreSystem::from_parts(parts);
        let dir = bench_dir(&format!("churn{n_changes}"));
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let base = sys.current_files();
        for i in 0..n_changes {
            sys.apply_journaled(&mut store, churn_change(&base, i))
                .unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let t0 = Instant::now();
        let (recovered, _, rep) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        let recovery = t0.elapsed();

        assert_eq!(
            fingerprint(&recovered),
            fingerprint(&sys),
            "recovery diverged from the live system at churn level {n_changes}"
        );
        assert_eq!(rep.replayed_frames as u64, n_changes);
        assert_eq!(rep.dropped_tail_bytes, 0, "clean shutdown drops nothing");

        report.row(&[
            n_changes.to_string(),
            rep.replayed_frames.to_string(),
            rep.wal_segments.to_string(),
            format!("{:.1}", rep.snapshot_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", recovery.as_secs_f64() * 1e3),
            format!(
                "{:.0}",
                rep.replayed_frames as f64 / recovery.as_secs_f64().max(1e-9)
            ),
            "no".to_string(),
            "0".to_string(),
            "0".to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Torn-tail salvage at the highest churn level: chop the live WAL
    // mid-frame and time the prefix-first salvage.
    let n_changes = *levels.iter().max().unwrap();
    if n_changes > 0 {
        let mut parts = base_sys.to_parts();
        parts.cfg.persist.wal_compact_bytes = u64::MAX;
        let mut sys = SmartStoreSystem::from_parts(parts);
        let dir = bench_dir("torn");
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let base = sys.current_files();
        for i in 0..n_changes {
            sys.apply_journaled(&mut store, churn_change(&base, i))
                .unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let wal = live_wal(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let torn_len = len - 7; // mid-frame: no frame is 7 bytes
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(torn_len).unwrap();
        drop(f);

        let t0 = Instant::now();
        let (recovered, _, rep) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        let recovery = t0.elapsed();
        assert!(
            rep.dropped_tail_bytes > 0,
            "a mid-frame truncation must report dropped bytes"
        );
        assert_eq!(
            rep.replayed_frames as u64,
            n_changes - 1,
            "salvage keeps every complete frame"
        );
        assert!(!recovered.current_files().is_empty());

        report.row(&[
            n_changes.to_string(),
            rep.replayed_frames.to_string(),
            rep.wal_segments.to_string(),
            format!("{:.1}", rep.snapshot_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", recovery.as_secs_f64() * 1e3),
            format!(
                "{:.0}",
                rep.replayed_frames as f64 / recovery.as_secs_f64().max(1e-9)
            ),
            "yes".to_string(),
            rep.dropped_tail_bytes.to_string(),
            rep.quarantined_bytes.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    report.note(format!(
        "{n_files}-file / {n_units}-unit system; every recovery gated bit-identical to the live \
         state (torn-tail row: to the longest valid prefix) before its row is reported; torn \
         bytes are preserved in a .quarantine side file, never silently discarded"
    ));
    print!("{}", report.render());
    if let Err(e) = report.write_json(report_dir) {
        eprintln!("warning: could not write JSON report: {e}");
    }
}

fn bench_recovery(c: &mut Criterion) {
    let (n_files, n_units, levels) = scale();
    println!("== recovery benchmark: {n_files} files, {n_units} units, churn levels {levels:?} ==");
    let report_dir = smartstore_bench::report::default_report_dir();
    churn_sweep(n_files, n_units, &levels, &report_dir);

    // Criterion entry: steady-state reopen at the mid churn level.
    let pop = population(TraceKind::Msn, n_files.min(4_000), 41);
    let mut sys = SmartStoreSystem::build(pop.files, 10, SmartStoreConfig::default(), 41);
    let dir = bench_dir("criterion");
    let (mut store, _) = sys.save_snapshot(&dir).unwrap();
    let base = sys.current_files();
    for i in 0..200 {
        sys.apply_journaled(&mut store, churn_change(&base, i))
            .unwrap();
    }
    store.sync().unwrap();
    drop(store);
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    g.bench_function("open_from_dir_200_frames", |b| {
        b.iter(|| {
            std::hint::black_box(SmartStoreSystem::open_from_dir(&dir).unwrap())
                .0
                .units()
                .len()
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_recovery
}
criterion_main!(benches);
