//! Criterion benchmarks for the semantic-grouping pipeline: LSI fit,
//! one-level grouping, balanced partitioning, full system build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartstore::grouping::{group_level, partition_balanced};
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_linalg::{Lsi, LsiConfig};
use smartstore_trace::TraceKind;

fn bench_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsi_fit");
    for n in [100usize, 400, 1600] {
        let pop = population(TraceKind::Msn, n, 1);
        let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, v| {
            b.iter(|| std::hint::black_box(Lsi::fit_items(v, LsiConfig::default())))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("group_level");
    for n in [50usize, 100, 200] {
        let pop = population(TraceKind::Msn, n * 10, 2);
        // Group unit-like centroids, the realistic input size.
        let vectors: Vec<Vec<f64>> = pop
            .files
            .chunks(10)
            .map(|chunk| {
                let mut c = vec![0.0; 8];
                for f in chunk {
                    for (acc, v) in c.iter_mut().zip(f.attr_vector()) {
                        *acc += v / chunk.len() as f64;
                    }
                }
                c
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, v| {
            b.iter(|| std::hint::black_box(group_level(v, 0.85, 3, 10)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("partition_balanced");
    g.sample_size(10);
    for n in [1000usize, 4000] {
        let pop = population(TraceKind::Msn, n, 3);
        let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, v| {
            b.iter(|| std::hint::black_box(partition_balanced(v, 40, 3, 7)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("system_build");
    g.sample_size(10);
    for n in [1000usize, 3000] {
        let pop = population(TraceKind::Msn, n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pop, |b, p| {
            b.iter(|| {
                std::hint::black_box(SmartStoreSystem::build(
                    p.files.clone(),
                    30,
                    SmartStoreConfig::default(),
                    4,
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_grouping
}
criterion_main!(benches);
