//! Criterion benchmarks for the substrate crates: R-tree, B+-tree,
//! Bloom filter / MD5, Jacobi SVD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartstore_bloom::{md5::md5, BloomFilter};
use smartstore_bptree::BPlusTree;
use smartstore_linalg::{jacobi_svd, Matrix};
use smartstore_rtree::{RTree, RTreeConfig, Rect};

fn scattered(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 7919 + d * 104729) % 100_000) as f64) / 100.0)
                .collect()
        })
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree_insert");
    for n in [1000usize, 10_000] {
        let pts = scattered(n, 8);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let mut t = RTree::new(8, RTreeConfig::new(16, 6));
                for (i, p) in pts.iter().enumerate() {
                    t.insert(Rect::point(p), i);
                }
                std::hint::black_box(t.len())
            })
        });
    }
    g.finish();

    let pts = scattered(10_000, 8);
    let mut tree = RTree::new(8, RTreeConfig::new(16, 6));
    for (i, p) in pts.iter().enumerate() {
        tree.insert(Rect::point(p), i);
    }
    let mut g = c.benchmark_group("rtree_query");
    g.bench_function("range", |b| {
        let q = Rect::new(vec![100.0; 8], vec![400.0; 8]);
        b.iter(|| std::hint::black_box(tree.range(&q).len()))
    });
    g.bench_function("knn8", |b| {
        b.iter(|| std::hint::black_box(tree.knn(&[500.0; 8], 8)))
    });
    g.finish();
}

fn bench_bptree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    g.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new(32);
            for i in 0..10_000u64 {
                t.insert(i.wrapping_mul(2654435761) % 65536, i);
            }
            std::hint::black_box(t.len())
        })
    });
    let mut t = BPlusTree::new(32);
    for i in 0..100_000u64 {
        t.insert(i.wrapping_mul(2654435761) % 65536, i);
    }
    g.bench_function("range_scan", |b| {
        b.iter(|| std::hint::black_box(t.range(&1000, &2000).len()))
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.bench_function("md5_64B", |b| {
        let data = [0x5au8; 64];
        b.iter(|| std::hint::black_box(md5(&data)))
    });
    g.bench_function("insert_1024b_k7", |b| {
        let mut f = BloomFilter::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(&i.to_le_bytes());
        })
    });
    let mut f = BloomFilter::paper_default();
    for i in 0..200u64 {
        f.insert(&i.to_le_bytes());
    }
    g.bench_function("contains", |b| {
        let probe = 9999u64.to_le_bytes();
        b.iter(|| std::hint::black_box(f.contains(&probe)))
    });
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_svd");
    for (rows, cols) in [(8usize, 64usize), (8, 256), (16, 256)] {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let m = Matrix::from_vec(rows, cols, data);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| std::hint::black_box(jacobi_svd(m))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rtree, bench_bptree, bench_bloom, bench_svd
}
criterion_main!(benches);
