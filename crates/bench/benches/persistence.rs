//! Persistence benchmark: snapshot write/load throughput, WAL append
//! rate, and the headline comparison — cold-starting a ≥50k-file
//! system from disk versus regrouping it from scratch with the full
//! LSI pipeline (the ISSUE's acceptance scenario).
//!
//! Run with `cargo bench -p smartstore-bench --bench persistence`.

use criterion::{criterion_group, criterion_main, Criterion};
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_persist::{snapshot, PersistentStore, SystemPersist as _};
use smartstore_trace::TraceKind;
use std::path::PathBuf;
use std::time::Instant;

/// Acceptance scale: ≥50k files; trimmed under `--quick`/`--test` so
/// smoke runs stay fast.
fn scale() -> (usize, usize, u64) {
    let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
    if quick {
        (2_000, 10, 100)
    } else {
        (50_000, 60, 1_000)
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "smartstore_persist_bench_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn journaled_churn(sys: &mut SmartStoreSystem, store: &mut PersistentStore, n: u64) {
    let base = sys.current_files();
    for i in 0..n {
        let change = match i % 3 {
            0 => {
                let mut f = base[(i as usize * 37) % base.len()].clone();
                f.file_id = 50_000_000 + i;
                f.name = format!("churn_{i}");
                Change::Insert(f)
            }
            1 => Change::Delete(base[(i as usize * 11) % base.len()].file_id),
            _ => {
                let mut f = base[(i as usize * 13) % base.len()].clone();
                f.size = f.size.wrapping_mul(2).max(1);
                Change::Modify(f)
            }
        };
        sys.apply_journaled(store, change).unwrap();
    }
    store.sync().unwrap();
}

fn bench_persistence(c: &mut Criterion) {
    let (n_files, n_units, n_changes) = scale();
    println!("== persistence benchmark: {n_files} files, {n_units} units, {n_changes} journaled changes ==");

    // Build once (expensive at 50k) and time it — this is the "full
    // regroup" cost a restart would pay without persistence.
    let pop = population(TraceKind::Msn, n_files, 7);
    let t0 = Instant::now();
    let mut sys =
        SmartStoreSystem::build(pop.files.clone(), n_units, SmartStoreConfig::default(), 7);
    let rebuild_time = t0.elapsed();
    println!("full regroup (LSI build): {rebuild_time:?}");

    // Seed the store and journal the churn.
    let dir = bench_dir("main");
    let (mut store, stats) = sys.save_snapshot(&dir).unwrap();
    println!(
        "snapshot: {} units / {} files / {} tree nodes / {:.1} MiB",
        stats.n_units,
        stats.n_files,
        stats.n_nodes,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );
    let t0 = Instant::now();
    journaled_churn(&mut sys, &mut store, n_changes);
    let churn_time = t0.elapsed();
    let rate = n_changes as f64 / churn_time.as_secs_f64();
    println!(
        "WAL append: {n_changes} journaled changes in {churn_time:?} ({rate:.0} changes/s, {} bytes)",
        store.wal_bytes()
    );

    // Headline: cold start from disk vs. regroup from scratch.
    let t0 = Instant::now();
    let (reopened, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    let cold_start = t0.elapsed();
    println!(
        "cold start (snapshot + {} WAL frames): {cold_start:?}  —  {:.1}× faster than regroup",
        report.replayed_frames,
        rebuild_time.as_secs_f64() / cold_start.as_secs_f64().max(1e-9)
    );
    assert_eq!(reopened.units().len(), sys.units().len());
    drop(reopened);
    drop(store);

    // Criterion micro-benchmarks on the same state.
    let parts = sys.to_parts();
    let mut g = c.benchmark_group("persistence");
    g.sample_size(10);
    g.bench_function("snapshot_encode", |b| {
        b.iter(|| {
            std::hint::black_box(snapshot::encode_snapshot(&parts))
                .1
                .bytes
        })
    });
    let (bytes, _) = snapshot::encode_snapshot(&parts);
    g.bench_function("snapshot_decode", |b| {
        b.iter(|| {
            std::hint::black_box(
                snapshot::decode_snapshot(&bytes, std::path::Path::new("mem")).unwrap(),
            )
            .units
            .len()
        })
    });
    g.bench_function("snapshot_write_fsync", |b| {
        let d = bench_dir("write");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            smartstore_persist::write_snapshot(&parts, &d.join(format!("s{i}.snap"))).unwrap()
        })
    });
    g.bench_function("open_from_dir_cold_start", |b| {
        b.iter(|| {
            std::hint::black_box(SmartStoreSystem::open_from_dir(&dir).unwrap())
                .0
                .units()
                .len()
        })
    });
    g.bench_function("wal_append_sync_batch64", |b| {
        let d = bench_dir("wal");
        let (mut s2, _) = sys.save_snapshot(&d).unwrap();
        let change = Change::Delete(123_456_789);
        b.iter(|| s2.append(0, &change).unwrap())
    });
    g.finish();

    // Rebuild comparison as a criterion entry too (quick scale only —
    // at 50k a single build already ran above).
    if n_files <= 5_000 {
        let mut g = c.benchmark_group("rebuild");
        g.sample_size(10);
        g.bench_function("full_regroup", |b| {
            b.iter(|| {
                SmartStoreSystem::build(pop.files.clone(), n_units, SmartStoreConfig::default(), 7)
                    .units()
                    .len()
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_persistence
}
criterion_main!(benches);
