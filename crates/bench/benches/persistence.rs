//! Persistence benchmark: snapshot write/load throughput, WAL append
//! rate, the group-commit (`wal_sync_every`) durability/latency knob
//! sweep, and the headline comparison — cold-starting a ≥50k-file
//! system from disk versus regrouping it from scratch with the full
//! LSI pipeline (the ISSUE's acceptance scenario).
//!
//! Run with `cargo bench -p smartstore-bench --bench persistence`.

use criterion::{criterion_group, criterion_main, Criterion};
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_bench::Report;
use smartstore_persist::{snapshot, PersistentStore, SystemPersist as _};
use smartstore_trace::{FileMetadata, TraceKind};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Acceptance scale: ≥50k files; trimmed under `--quick`/`--test` so
/// smoke runs stay fast.
fn scale() -> (usize, usize, u64) {
    let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
    if quick {
        (2_000, 10, 100)
    } else {
        (50_000, 60, 1_000)
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "smartstore_persist_bench_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One synthetic change against `base`, the file population captured
/// once before the churn loop (capturing per change would clone the
/// whole population into the timed region).
fn churn_change(base: &[FileMetadata], i: u64) -> Change {
    match i % 3 {
        0 => {
            let mut f = base[(i as usize * 37) % base.len()].clone();
            f.file_id = 50_000_000 + i;
            f.name = format!("churn_{i}");
            Change::Insert(f)
        }
        1 => Change::Delete(base[(i as usize * 11) % base.len()].file_id),
        _ => {
            let mut f = base[(i as usize * 13) % base.len()].clone();
            f.size = f.size.wrapping_mul(2).max(1);
            Change::Modify(f)
        }
    }
}

fn journaled_churn(sys: &mut SmartStoreSystem, store: &mut PersistentStore, n: u64) {
    let base = sys.current_files();
    for i in 0..n {
        let change = churn_change(&base, i);
        sys.apply_journaled(store, change).unwrap();
    }
    store.sync().unwrap();
}

/// The group-commit knob sweep (ROADMAP persistence follow-up): how
/// does `wal_sync_every` — fsync every append vs. every 64 vs. every
/// 1024 — trade journaling throughput against per-append latency?
fn wal_knob_sweep(n_files: usize, n_changes: u64, report_dir: &Path) {
    let pop = population(TraceKind::Msn, n_files, 11);
    let sys = SmartStoreSystem::build(pop.files, 10, SmartStoreConfig::default(), 11);

    let mut report = Report::new(
        "wal_knob_sweep",
        "WAL group-commit knob sweep (wal_sync_every)",
        &[
            "sync_every",
            "changes",
            "total_ms",
            "changes_per_s",
            "mean_append_us",
            "p99_append_us",
        ],
    );
    for sync_every in [1usize, 64, 1024] {
        let mut parts = sys.to_parts();
        parts.cfg.persist.wal_sync_every = sync_every;
        let mut sys2 = SmartStoreSystem::from_parts(parts);
        let dir = bench_dir(&format!("knob{sync_every}"));
        let (mut store, _) = sys2.save_snapshot(&dir).unwrap();

        let base = sys2.current_files();
        let mut latencies_us: Vec<f64> = Vec::with_capacity(n_changes as usize);
        let t0 = Instant::now();
        for i in 0..n_changes {
            let change = churn_change(&base, i);
            let t = Instant::now();
            sys2.apply_journaled(&mut store, change).unwrap();
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
        store.sync().unwrap();
        let total = t0.elapsed();

        latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
        let p99 = latencies_us[(latencies_us.len() * 99 / 100).min(latencies_us.len() - 1)];
        report.row(&[
            sync_every.to_string(),
            n_changes.to_string(),
            format!("{:.1}", total.as_secs_f64() * 1e3),
            format!("{:.0}", n_changes as f64 / total.as_secs_f64()),
            format!("{mean:.1}"),
            format!("{p99:.1}"),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    report.note(format!(
        "{n_files}-file system, 10 units; each append journals the change before the \
         in-memory mutation, fsync batched every sync_every frames"
    ));
    print!("{}", report.render());
    if let Err(e) = report.write_json(report_dir) {
        eprintln!("warning: could not write JSON report: {e}");
    }
}

/// The differential-compaction sweep (the ISSUE's acceptance
/// scenario): concentrate churn on a small *hot* fraction of the
/// units, then compare what a delta generation writes against what a
/// full-image rewrite of the same state writes. Delta cost must track
/// the churn footprint, not the corpus size — and recovery from
/// base + delta must be bit-identical to recovery from a full image.
fn delta_churn_sweep(n_files: usize, n_units: usize, n_changes: u64, report_dir: &Path) {
    let pop = population(TraceKind::Msn, n_files, 23);
    let base_sys = SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), 23);
    let fingerprint = |sys: &SmartStoreSystem| snapshot::encode_snapshot(&sys.to_parts()).0;

    let mut report = Report::new(
        "delta_churn_sweep",
        "Differential vs full compaction under churn-skewed workloads",
        &[
            "hot_unit_pct",
            "dirty_units",
            "total_units",
            "delta_bytes",
            "full_bytes",
            "bytes_ratio_pct",
            "delta_encode_ms",
            "full_compact_ms",
        ],
    );

    for hot_frac in [0.05f64, 0.25, 0.50] {
        // Two identical replicas: one compacts differentially, the
        // other rewrites the full image from the same state.
        let mut sys_d = SmartStoreSystem::from_parts(base_sys.to_parts());
        let mut sys_f = SmartStoreSystem::from_parts(base_sys.to_parts());
        let dir_d = bench_dir(&format!("delta{}", (hot_frac * 100.0) as u32));
        let dir_f = bench_dir(&format!("full{}", (hot_frac * 100.0) as u32));
        let (mut st_d, _) = sys_d.save_snapshot(&dir_d).unwrap();
        let (mut st_f, _) = sys_f.save_snapshot(&dir_f).unwrap();

        // Hot set: the files of the first `hot_frac` of units. Deletes
        // and modifies route to the owner, so the churn footprint
        // stays inside the hot units (plus any group-mates a lazy
        // refresh touches).
        let hot_units = ((n_units as f64 * hot_frac).ceil() as usize).max(1);
        let hot_files: Vec<FileMetadata> = sys_d.units()[..hot_units]
            .iter()
            .flat_map(|u| u.files().iter().cloned())
            .collect();
        for i in 0..n_changes {
            let mut f = hot_files[(i as usize * 17) % hot_files.len()].clone();
            f.size = f.size.wrapping_add(1 + i).max(1);
            f.mtime += 1.0;
            let ch = Change::Modify(f);
            sys_d.apply_journaled(&mut st_d, ch.clone()).unwrap();
            sys_f.apply_journaled(&mut st_f, ch).unwrap();
        }
        st_d.sync().unwrap();
        st_f.sync().unwrap();

        let dirty = sys_d.dirty_count();
        // Differential path, two-phase: the cut is the only writer-side
        // work; the encode runs off the write path.
        let cut = st_d.begin_delta_compaction(&mut sys_d).unwrap();
        let t0 = Instant::now();
        let encoded = cut.encode();
        let delta_encode_ms = t0.elapsed().as_secs_f64() * 1e3;
        let delta_stats = st_d.install_delta(encoded).unwrap();

        // Full-image path on the identical twin.
        let t0 = Instant::now();
        let full_stats = st_f.compact(&mut sys_f).unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert!(
            delta_stats.bytes < full_stats.bytes,
            "delta generation ({} B) must write fewer bytes than the full image ({} B)",
            delta_stats.bytes,
            full_stats.bytes
        );

        // Recovery bit-identity: base + delta vs the fresh full image
        // must reproduce the same (identical) live state exactly.
        drop(st_d);
        drop(st_f);
        let (rec_d, _, rep_d) = SmartStoreSystem::open_from_dir(&dir_d).unwrap();
        let (rec_f, _, rep_f) = SmartStoreSystem::open_from_dir(&dir_f).unwrap();
        assert_eq!(rep_d.deltas_folded, 1);
        assert_eq!(rep_f.deltas_folded, 0);
        let live_print = fingerprint(&sys_d);
        assert_eq!(
            fingerprint(&rec_d),
            live_print,
            "delta-chain recovery diverged"
        );
        assert_eq!(
            fingerprint(&rec_f),
            live_print,
            "full-image recovery diverged"
        );

        report.row(&[
            format!("{:.0}", hot_frac * 100.0),
            dirty.to_string(),
            n_units.to_string(),
            delta_stats.bytes.to_string(),
            full_stats.bytes.to_string(),
            format!(
                "{:.1}",
                delta_stats.bytes as f64 / full_stats.bytes as f64 * 100.0
            ),
            format!("{delta_encode_ms:.1}"),
            format!("{full_ms:.1}"),
        ]);
        let _ = std::fs::remove_dir_all(&dir_d);
        let _ = std::fs::remove_dir_all(&dir_f);
    }
    report.note(format!(
        "{n_files}-file / {n_units}-unit system, {n_changes} modifies concentrated on the hot \
         fraction; delta bytes track the dirty footprint while full bytes stay O(corpus); \
         recovery verified bit-identical to a full-snapshot open before reporting"
    ));
    print!("{}", report.render());
    if let Err(e) = report.write_json(report_dir) {
        eprintln!("warning: could not write JSON report: {e}");
    }
}

fn bench_persistence(c: &mut Criterion) {
    let (n_files, n_units, n_changes) = scale();
    println!("== persistence benchmark: {n_files} files, {n_units} units, {n_changes} journaled changes ==");

    // Group-commit knob sweep on a smaller population (the knob only
    // affects WAL fsync cadence, not grouping scale).
    let report_dir = smartstore_bench::report::default_report_dir();
    let (knob_files, knob_changes) = if n_files <= 5_000 {
        (1_000, 300)
    } else {
        (5_000, 2_000)
    };
    wal_knob_sweep(knob_files, knob_changes, &report_dir);

    // Churn-skewed differential-compaction sweep: delta cost must
    // scale with the hot footprint, not the corpus.
    // Enough units that the corpus spans several first-level groups —
    // with a single group, a lazy refresh dirties every unit and no
    // skew is expressible.
    let (sweep_files, sweep_units, sweep_changes) = if n_files <= 5_000 {
        (4_000, 40, 120)
    } else {
        (20_000, 60, 1_200)
    };
    delta_churn_sweep(sweep_files, sweep_units, sweep_changes, &report_dir);

    // Build once (expensive at 50k) and time it — this is the "full
    // regroup" cost a restart would pay without persistence.
    let pop = population(TraceKind::Msn, n_files, 7);
    let t0 = Instant::now();
    let mut sys =
        SmartStoreSystem::build(pop.files.clone(), n_units, SmartStoreConfig::default(), 7);
    let rebuild_time = t0.elapsed();
    println!("full regroup (LSI build): {rebuild_time:?}");

    // Seed the store and journal the churn.
    let dir = bench_dir("main");
    let (mut store, stats) = sys.save_snapshot(&dir).unwrap();
    println!(
        "snapshot: {} units / {} files / {} tree nodes / {:.1} MiB",
        stats.n_units,
        stats.n_files,
        stats.n_nodes,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );
    let t0 = Instant::now();
    journaled_churn(&mut sys, &mut store, n_changes);
    let churn_time = t0.elapsed();
    let rate = n_changes as f64 / churn_time.as_secs_f64();
    println!(
        "WAL append: {n_changes} journaled changes in {churn_time:?} ({rate:.0} changes/s, {} bytes)",
        store.wal_bytes()
    );

    // Headline: cold start from disk vs. regroup from scratch.
    let t0 = Instant::now();
    let (reopened, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    let cold_start = t0.elapsed();
    println!(
        "cold start (snapshot + {} WAL frames): {cold_start:?}  —  {:.1}× faster than regroup",
        report.replayed_frames,
        rebuild_time.as_secs_f64() / cold_start.as_secs_f64().max(1e-9)
    );
    assert_eq!(reopened.units().len(), sys.units().len());
    drop(reopened);
    drop(store);

    // Criterion micro-benchmarks on the same state.
    let parts = sys.to_parts();
    let mut g = c.benchmark_group("persistence");
    g.sample_size(10);
    g.bench_function("snapshot_encode", |b| {
        b.iter(|| {
            std::hint::black_box(snapshot::encode_snapshot(&parts))
                .1
                .bytes
        })
    });
    let (bytes, _) = snapshot::encode_snapshot(&parts);
    g.bench_function("snapshot_decode", |b| {
        b.iter(|| {
            std::hint::black_box(
                snapshot::decode_snapshot(&bytes, std::path::Path::new("mem")).unwrap(),
            )
            .units
            .len()
        })
    });
    g.bench_function("snapshot_write_fsync", |b| {
        let d = bench_dir("write");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            smartstore_persist::write_snapshot(
                &smartstore_persist::RealVfs,
                &parts,
                &d.join(format!("s{i}.snap")),
            )
            .unwrap()
        })
    });
    g.bench_function("open_from_dir_cold_start", |b| {
        b.iter(|| {
            std::hint::black_box(SmartStoreSystem::open_from_dir(&dir).unwrap())
                .0
                .units()
                .len()
        })
    });
    g.bench_function("wal_append_sync_batch64", |b| {
        let d = bench_dir("wal");
        let (mut s2, _) = sys.save_snapshot(&d).unwrap();
        let change = Change::Delete(123_456_789);
        b.iter(|| s2.append(0, &change).unwrap())
    });
    g.finish();

    // Rebuild comparison as a criterion entry too (quick scale only —
    // at 50k a single build already ran above).
    if n_files <= 5_000 {
        let mut g = c.benchmark_group("rebuild");
        g.sample_size(10);
        g.bench_function("full_regroup", |b| {
            b.iter(|| {
                SmartStoreSystem::build(pop.files.clone(), n_units, SmartStoreConfig::default(), 7)
                    .units()
                    .len()
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_persistence
}
criterion_main!(benches);
