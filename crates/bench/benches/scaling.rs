//! Thread-scaling benchmark for the parallel grouping/LSI hot path.
//!
//! Sweeps the shim-rayon pool over 1/2/4/8 threads and times the four
//! parallel kernels of the pipeline at a 10k-file population
//! (2k under `--quick`/`--test`, plus a 50k size under `--full`):
//!
//! 1. `partition_tiled` — LSI fit (standardize + SVD) and semantic
//!    sort-tile placement;
//! 2. `partition_balanced` — LSI fit + parallel K-means assignment;
//! 3. `group_level` — the O(n²) pairwise kernel-similarity grouping,
//!    on a subsample sized so the quadratic term dominates;
//! 4. `encode_snapshot` — parallel per-unit record encode + CRC.
//!
//! Every run is checked **bit-identical** against the 1-thread
//! (sequential) reference before its time is reported — a scaling
//! number for a wrong answer is worthless. The table is printed and
//! written as JSON (`scaling_<n>.json`) under `target/bench-reports`
//! (override with `BENCH_REPORT_DIR`) so the perf trajectory is
//! machine-trackable across PRs.
//!
//! Run with `cargo bench -p smartstore-bench --bench scaling`
//! (`-- --quick` for the CI smoke size, `-- --threads 1,2` to
//! restrict the sweep).

use rayon::ThreadPoolBuilder;
use smartstore::grouping::{group_level, partition_balanced, partition_tiled, LevelGrouping};
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_bench::fixture::population;
use smartstore_bench::Report;
use smartstore_persist::snapshot::encode_snapshot;
use smartstore_trace::TraceKind;
use std::path::Path;
use std::time::Instant;

const LSI_RANK: usize = 3;
const UNITS: usize = 60;

struct RunResult {
    tiled: Vec<usize>,
    balanced: Vec<usize>,
    grouping: LevelGrouping,
    snapshot: Vec<u8>,
    tiled_ms: f64,
    balanced_ms: f64,
    kernel_ms: f64,
    encode_ms: f64,
}

impl RunResult {
    fn total_ms(&self) -> f64 {
        self.tiled_ms + self.balanced_ms + self.kernel_ms + self.encode_ms
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn run_workload(
    vectors: &[Vec<f64>],
    kernel_sub: &[Vec<f64>],
    parts: &smartstore::system::SystemParts,
) -> RunResult {
    let t = Instant::now();
    let tiled = partition_tiled(vectors, UNITS, LSI_RANK);
    let tiled_ms = ms(t);

    let t = Instant::now();
    let balanced = partition_balanced(vectors, UNITS, LSI_RANK, 7);
    let balanced_ms = ms(t);

    let t = Instant::now();
    let grouping = group_level(kernel_sub, 0.9, LSI_RANK, 10);
    let kernel_ms = ms(t);

    let t = Instant::now();
    let (snapshot, _) = encode_snapshot(parts);
    let encode_ms = ms(t);

    RunResult {
        tiled,
        balanced,
        grouping,
        snapshot,
        tiled_ms,
        balanced_ms,
        kernel_ms,
        encode_ms,
    }
}

fn assert_bit_identical(reference: &RunResult, run: &RunResult, threads: usize) {
    assert_eq!(
        reference.tiled, run.tiled,
        "partition_tiled diverged at {threads} threads"
    );
    assert_eq!(
        reference.balanced, run.balanced,
        "partition_balanced diverged at {threads} threads"
    );
    assert_eq!(
        reference.grouping.groups, run.grouping.groups,
        "group_level groups diverged at {threads} threads"
    );
    for (a, b) in reference
        .grouping
        .centroids
        .iter()
        .zip(&run.grouping.centroids)
    {
        for (x, y) in a.iter().zip(b) {
            assert!(
                x.to_bits() == y.to_bits(),
                "group_level centroid bits diverged at {threads} threads"
            );
        }
    }
    assert_eq!(
        reference.snapshot, run.snapshot,
        "snapshot bytes diverged at {threads} threads"
    );
}

fn sweep(n_files: usize, thread_counts: &[usize], report_dir: &Path) {
    println!("== scaling sweep: {n_files} files, threads {thread_counts:?} ==");
    let pop = population(TraceKind::Msn, n_files, 7);
    let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
    // Subsample for the O(n²) kernel so its cost stays comparable to
    // the linear phases.
    let kernel_n = (n_files / 10).clamp(100, 1_500);
    let kernel_sub: Vec<Vec<f64>> = vectors[..kernel_n].to_vec();
    // One system build for the snapshot-encode phase.
    let sys = SmartStoreSystem::build(pop.files.clone(), UNITS, SmartStoreConfig::default(), 7);
    let parts = sys.to_parts();

    let mut report = Report::new(
        &format!("scaling_{n_files}"),
        "Thread scaling of the grouping/LSI/persist hot path",
        &[
            "threads",
            "tiled_ms",
            "kmeans_ms",
            "kernel_ms",
            "encode_ms",
            "total_ms",
            "speedup_vs_1t",
        ],
    );

    let mut reference: Option<RunResult> = None;
    for &threads in thread_counts {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let run = pool.install(|| run_workload(&vectors, &kernel_sub, &parts));
        let baseline_ms = reference
            .as_ref()
            .map_or(run.total_ms(), RunResult::total_ms);
        let speedup = baseline_ms / run.total_ms().max(1e-9);
        report.row(&[
            threads.to_string(),
            format!("{:.1}", run.tiled_ms),
            format!("{:.1}", run.balanced_ms),
            format!("{:.1}", run.kernel_ms),
            format!("{:.1}", run.encode_ms),
            format!("{:.1}", run.total_ms()),
            format!("{speedup:.2}"),
        ]);
        match &reference {
            None => reference = Some(run),
            Some(r) => assert_bit_identical(r, &run, threads),
        }
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.note(format!(
        "host has {host} hardware thread(s); speedups are bounded by physical cores, \
         not pool size"
    ));
    report.note(format!(
        "kernel phase runs group_level on a {kernel_n}-item subsample (O(n²) term)"
    ));
    report.note("all multi-thread runs verified bit-identical to the 1-thread reference");
    print!("{}", report.render());
    if let Err(e) = report.write_json(report_dir) {
        eprintln!("warning: could not write JSON report: {e}");
    } else {
        println!(
            "json report: {}",
            report_dir.join(format!("scaling_{n_files}.json")).display()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let full = args.iter().any(|a| a == "--full");
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|spec| {
            spec.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect()
        })
        .unwrap_or_else(|| if quick { vec![1, 2] } else { vec![1, 2, 4, 8] });
    assert!(
        threads.first() == Some(&1),
        "the sweep needs the 1-thread run first as the bit-identity reference"
    );

    let report_dir = smartstore_bench::report::default_report_dir();

    let sizes: Vec<usize> = if quick {
        vec![2_000]
    } else if full {
        vec![10_000, 50_000]
    } else {
        vec![10_000]
    };
    for n in sizes {
        sweep(n, &threads, &report_dir);
    }
}
