//! Benchmark harness regenerating every table and figure of the
//! SmartStore paper (§5), plus the ablations called out in DESIGN.md.
//!
//! The `repro` binary (`cargo run --release -p smartstore-bench --bin
//! repro -- <experiment>`) runs one experiment per paper artifact and
//! prints the same rows/series the paper reports; absolute values come
//! from the simulator's cost model, so the *shape* (orderings, ratios,
//! crossovers) is the reproduction target, per DESIGN.md §2.

pub mod baselines;
pub mod experiments;
pub mod fixture;
pub mod report;
pub mod sched;

pub use report::Report;
