//! Shared experiment fixtures: populations, systems, query workloads.

use smartstore::{HashFamily, SmartStoreConfig, SmartStoreSystem};
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{
    MetadataPopulation, QueryDistribution, QueryWorkload, TraceKind, WorkloadModel,
};

/// Default storage-unit count (the paper's cluster has 60, §5.1).
pub const PAPER_UNITS: usize = 60;

/// Builds a population for a trace at a simulation size.
pub fn population(kind: TraceKind, n_files: usize, seed: u64) -> MetadataPopulation {
    WorkloadModel::new(kind).generate(n_files, seed)
}

/// Builds a SmartStore system over a population.
pub fn system(pop: &MetadataPopulation, n_units: usize, seed: u64) -> SmartStoreSystem {
    SmartStoreSystem::build(
        pop.files.clone(),
        n_units,
        SmartStoreConfig::default(),
        seed,
    )
}

/// Builds a SmartStore system with an explicit Bloom hash family —
/// grouping is attribute-driven, so two systems built from the same
/// population and seed differ only in their filters.
pub fn system_with_family(
    pop: &MetadataPopulation,
    n_units: usize,
    seed: u64,
    family: HashFamily,
) -> SmartStoreSystem {
    let cfg = SmartStoreConfig {
        bloom_family: family,
        ..SmartStoreConfig::default()
    };
    SmartStoreSystem::build(pop.files.clone(), n_units, cfg, seed)
}

/// Builds a query workload with the paper's defaults (k = 8).
pub fn workload(
    pop: &MetadataPopulation,
    dist: QueryDistribution,
    n_each: usize,
    seed: u64,
) -> QueryWorkload {
    QueryWorkload::generate(
        pop,
        &QueryGenConfig {
            n_range: n_each,
            n_topk: n_each,
            n_point: n_each,
            k: 8,
            range_width: 0.02,
            distribution: dist,
            seed,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_compose() {
        let pop = population(TraceKind::Msn, 600, 1);
        let sys = system(&pop, 10, 1);
        assert_eq!(sys.units().len(), 10);
        let w = workload(&pop, QueryDistribution::Zipf, 5, 1);
        assert_eq!(w.ranges.len(), 5);
        assert_eq!(w.topks[0].k, 8);
    }
}
