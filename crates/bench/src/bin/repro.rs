//! `repro` — regenerate the SmartStore paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro <experiment> [..]     # table1 table2 table3 table4 fig7..fig14
//!                             # table5 table6 ablation-grouping
//!                             # ablation-autoconfig ablation-bloom
//!                             # ablation-replica
//! repro all                   # everything, in paper order
//! repro list                  # show available experiments
//! ```
//!
//! Each report prints as an aligned table and is also written to
//! `results/<id>.json`.

use smartstore_bench::experiments as ex;
use smartstore_bench::Report;
use smartstore_trace::TraceKind;
use std::path::PathBuf;

fn run_one(name: &str) -> Option<Vec<Report>> {
    let reports = match name {
        "table1" => vec![ex::tables123().remove(0)],
        "table2" => vec![ex::tables123().remove(1)],
        "table3" => vec![ex::tables123().remove(2)],
        "tables123" => ex::tables123(),
        "table4" => vec![ex::table4()],
        "table5" => vec![ex::table56(TraceKind::Msn)],
        "table6" => vec![ex::table56(TraceKind::Eecs)],
        "fig7" => vec![ex::fig7()],
        "fig8" => vec![ex::fig8()],
        "fig9" => vec![ex::fig9()],
        "fig10" => vec![ex::fig10()],
        "fig11" => vec![ex::fig11()],
        "fig12" => vec![ex::fig12()],
        "fig13" => vec![ex::fig13()],
        "fig14" => vec![ex::fig14()],
        "ablation-grouping" => vec![ex::ablation_grouping()],
        "ablation-autoconfig" => vec![ex::ablation_autoconfig()],
        "ablation-bloom" => vec![ex::ablation_bloom()],
        "ablation-replica" => vec![ex::ablation_replica()],
        "ext-load" => vec![ex::ext_load_sweep()],
        "all" => ex::all(),
        _ => return None,
    };
    Some(reports)
}

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation-grouping",
    "ablation-autoconfig",
    "ablation-bloom",
    "ablation-replica",
    "ext-load",
    "all",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        eprintln!("usage: repro <experiment> [..] | all | list");
        eprintln!("experiments:");
        for e in EXPERIMENTS {
            eprintln!("  {e}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let out_dir = PathBuf::from("results");
    let mut failed = false;
    for arg in &args {
        match run_one(arg) {
            Some(reports) => {
                for r in reports {
                    println!("{}", r.render());
                    if let Err(e) = r.write_json(&out_dir) {
                        eprintln!(
                            "warning: could not write {}/{}.json: {e}",
                            out_dir.display(),
                            r.id
                        );
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {arg} (try `repro list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
