//! One function per paper artifact (Tables 1–6, Figures 7–14) plus the
//! DESIGN.md ablations. Each returns a [`Report`] whose rows mirror the
//! paper's rows/series.
//!
//! Scale note: populations are simulation-sized (thousands of files, not
//! billions); every experiment prints the workload parameters it used so
//! EXPERIMENTS.md can record paper-vs-measured comparisons of *shape*.

use crate::baselines::{DbmsBaseline, RTreeBaseline};
use crate::fixture::{population, system, workload};
use crate::report::{ms, pct, Report};
use crate::sched::{run_batch, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartstore::autoconfig::AutoConfig;
use smartstore::grouping::{optimal_threshold, partition_balanced_raw};
use smartstore::versioning::Change;
use smartstore::QueryOptions;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_simnet::CostModel;
use smartstore_trace::query_gen::{recall, QueryGenConfig};
use smartstore_trace::scaleup::scale_nominal;
use smartstore_trace::{
    AttributeKind, MetadataPopulation, QueryDistribution, QueryWorkload, TraceKind, WorkloadModel,
};

/// Tables 1–3: the trace scale-up statistics (pure TIF arithmetic on the
/// published originals).
pub fn tables123() -> Vec<Report> {
    let specs = [
        ("table1", TraceKind::Hp),
        ("table2", TraceKind::Msn),
        ("table3", TraceKind::Eecs),
    ];
    specs
        .iter()
        .map(|&(id, kind)| {
            let model = WorkloadModel::new(kind);
            let tif = kind.paper_tif();
            let s = scale_nominal(&model, tif);
            let mut r = Report::new(
                id,
                &format!("Scaled-up {} (TIF={tif})", kind.name()),
                &["metric", "Original", &format!("TIF={tif}")],
            );
            let fmt = |x: f64| {
                if (x - x.round()).abs() < 1e-6 {
                    format!("{}", x.round() as i64)
                } else {
                    let s = format!("{x:.4}");
                    s.trim_end_matches('0').trim_end_matches('.').to_string()
                }
            };
            let mut push = |name: &str, o: Option<f64>, v: Option<f64>| {
                if let (Some(o), Some(v)) = (o, v) {
                    r.row(&[name.to_string(), fmt(o), fmt(v)]);
                }
            };
            push(
                "requests (million)",
                s.original.requests_m,
                s.scaled.requests_m,
            );
            push(
                "active users",
                s.original.active_users.map(|x| x as f64),
                s.scaled.active_users.map(|x| x as f64),
            );
            push(
                "user accounts",
                s.original.user_accounts.map(|x| x as f64),
                s.scaled.user_accounts.map(|x| x as f64),
            );
            push(
                "active files (million)",
                s.original.active_files_m,
                s.scaled.active_files_m,
            );
            push(
                "total files (million)",
                s.original.total_files_m,
                s.scaled.total_files_m,
            );
            push("total READ (million)", s.original.reads_m, s.scaled.reads_m);
            push(
                "total WRITE (million)",
                s.original.writes_m,
                s.scaled.writes_m,
            );
            push("READ size (GB)", s.original.read_gb, s.scaled.read_gb);
            push("WRITE size (GB)", s.original.write_gb, s.scaled.write_gb);
            push(
                "duration (hours)",
                s.original.duration_hours,
                s.scaled.duration_hours,
            );
            push(
                "total ops/IO (million)",
                s.original.total_ops_m,
                s.scaled.total_ops_m,
            );
            r
        })
        .collect()
}

/// Table 4: query latency of SmartStore vs R-tree vs DBMS on MSN and
/// EECS at TIF 120/160, for point / range / top-k batches.
///
/// Each batch of `Q` queries arrives at t = 0; DBMS and R-tree serialize
/// on one server while SmartStore spreads over 60 storage units — the
/// structural source of the paper's 1000× gap.
pub fn table4() -> Report {
    const N_UNITS: usize = 60;
    const Q: usize = 240;
    let cost = CostModel::default();
    let mut r = Report::new(
        "table4",
        "Query latency (ms) — SmartStore vs R-tree vs DBMS",
        &["query", "trace", "TIF", "DBMS", "R-tree", "SmartStore"],
    );
    for kind in [TraceKind::Msn, TraceKind::Eecs] {
        for tif in [120u32, 160] {
            // Population size scales with TIF (constant per-TIF factor
            // keeps runtime sane while preserving relative growth).
            let n_files = 40 * tif as usize;
            let pop = population(kind, n_files, 1000 + tif as u64);
            let db = DbmsBaseline::build(&pop.files);
            let rt = RTreeBaseline::build(&pop.files);
            let mut sys = system(&pop, N_UNITS, 42);
            let w = workload(&pop, QueryDistribution::Zipf, Q, 7 + tif as u64);

            let (d, t, s) = batch_point(&db, &rt, &mut sys, &w, &cost, N_UNITS);
            r.row(&[
                "point".into(),
                kind.name().to_string(),
                tif.to_string(),
                ms(d),
                ms(t),
                ms(s),
            ]);
            let (d, t, s) = batch_range(&db, &rt, &mut sys, &w, &cost, N_UNITS);
            r.row(&[
                "range".into(),
                kind.name().to_string(),
                tif.to_string(),
                ms(d),
                ms(t),
                ms(s),
            ]);
            let (d, t, s) = batch_topk(&db, &rt, &mut sys, &w, &cost, N_UNITS);
            r.row(&[
                "top-k".into(),
                kind.name().to_string(),
                tif.to_string(),
                ms(d),
                ms(t),
                ms(s),
            ]);
        }
    }
    r.note(format!(
        "batch of {Q} concurrent queries, mean completion latency; \
         centralized baselines queue on one server, SmartStore on {N_UNITS} units"
    ));
    r.note("paper shape: SmartStore << R-tree << DBMS, gap growing with TIF");
    r
}

fn baseline_jobs(costs: &[crate::baselines::BaselineCost]) -> Vec<Job> {
    costs
        .iter()
        .map(|c| Job {
            server: 0,
            service_ns: c.service_ns,
            wire_ns: c.latency_ns - c.service_ns,
        })
        .collect()
}

fn smartstore_jobs(
    outcomes: &[(usize, smartstore::routing::QueryCost)],
    cost: &CostModel,
) -> Vec<Job> {
    let wire = 2 * cost.wire_ns(256);
    outcomes
        .iter()
        .map(|&(server, qc)| Job {
            server,
            service_ns: qc.latency_ns.saturating_sub(wire),
            wire_ns: wire,
        })
        .collect()
}

fn batch_point(
    db: &DbmsBaseline,
    rt: &RTreeBaseline,
    sys: &mut SmartStoreSystem,
    w: &QueryWorkload,
    cost: &CostModel,
    n_units: usize,
) -> (f64, f64, f64) {
    let dc: Vec<_> = w.points.iter().map(|q| db.point(&q.name).1).collect();
    let tc: Vec<_> = w.points.iter().map(|q| rt.point(&q.name).1).collect();
    let mut rng = StdRng::seed_from_u64(98);
    let sc: Vec<_> = w
        .points
        .iter()
        .map(|q| {
            let out = sys.query().point(&q.name);
            (rng.gen_range(0..n_units), out.cost)
        })
        .collect();
    (
        run_batch(&baseline_jobs(&dc), n_units).mean_latency_ns,
        run_batch(&baseline_jobs(&tc), n_units).mean_latency_ns,
        run_batch(&smartstore_jobs(&sc, cost), n_units).mean_latency_ns,
    )
}

fn batch_range(
    db: &DbmsBaseline,
    rt: &RTreeBaseline,
    sys: &mut SmartStoreSystem,
    w: &QueryWorkload,
    cost: &CostModel,
    n_units: usize,
) -> (f64, f64, f64) {
    let dc: Vec<_> = w.ranges.iter().map(|q| db.range(&q.lo, &q.hi).1).collect();
    let tc: Vec<_> = w.ranges.iter().map(|q| rt.range(&q.lo, &q.hi).1).collect();
    let mut rng = StdRng::seed_from_u64(99);
    let sc: Vec<_> = w
        .ranges
        .iter()
        .map(|q| {
            let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
            (rng.gen_range(0..n_units), out.cost)
        })
        .collect();
    (
        run_batch(&baseline_jobs(&dc), n_units).mean_latency_ns,
        run_batch(&baseline_jobs(&tc), n_units).mean_latency_ns,
        run_batch(&smartstore_jobs(&sc, cost), n_units).mean_latency_ns,
    )
}

fn batch_topk(
    db: &DbmsBaseline,
    rt: &RTreeBaseline,
    sys: &mut SmartStoreSystem,
    w: &QueryWorkload,
    cost: &CostModel,
    n_units: usize,
) -> (f64, f64, f64) {
    let dc: Vec<_> = w.topks.iter().map(|q| db.topk(&q.point, q.k).1).collect();
    let tc: Vec<_> = w.topks.iter().map(|q| rt.topk(&q.point, q.k).1).collect();
    let mut rng = StdRng::seed_from_u64(100);
    let sc: Vec<_> = w
        .topks
        .iter()
        .map(|q| {
            let out = sys
                .query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k));
            (rng.gen_range(0..n_units), out.cost)
        })
        .collect();
    (
        run_batch(&baseline_jobs(&dc), n_units).mean_latency_ns,
        run_batch(&baseline_jobs(&tc), n_units).mean_latency_ns,
        run_batch(&smartstore_jobs(&sc, cost), n_units).mean_latency_ns,
    )
}

/// Fig. 7: per-node space overhead of the three systems.
pub fn fig7() -> Report {
    const N_UNITS: usize = 60;
    let mut r = Report::new(
        "fig7",
        "Space overhead per node (KB)",
        &["trace", "DBMS", "R-tree", "SmartStore"],
    );
    for kind in TraceKind::ALL {
        let pop = population(kind, 6000, 3);
        let db = DbmsBaseline::build(&pop.files);
        let rt = RTreeBaseline::build(&pop.files);
        let sys = system(&pop, N_UNITS, 3);
        let st = sys.stats();
        // Centralized structures sit on one node; SmartStore spreads.
        let smart = (st.tree_index_bytes + st.per_unit_index_bytes * N_UNITS) / N_UNITS;
        r.row(&[
            kind.name().to_string(),
            format!("{:.1}", db.index_bytes() as f64 / 1024.0),
            format!("{:.1}", rt.index_bytes() as f64 / 1024.0),
            format!("{:.1}", smart as f64 / 1024.0),
        ]);
    }
    r.note("paper shape: DBMS >> R-tree >> SmartStore (about 20x smaller than DBMS)");
    r
}

/// Fig. 8: routing-distance hops for complex queries under three
/// distributions.
pub fn fig8() -> Report {
    const N_UNITS: usize = 60;
    let pop = population(TraceKind::Msn, 6000, 4);
    let mut r = Report::new(
        "fig8",
        "Routing distance (fraction of queries at each hop count, %)",
        &["distribution", "0 hop", "1 hop", "2 hops", ">=3 hops"],
    );
    for dist in QueryDistribution::ALL {
        let sys = system(&pop, N_UNITS, 4);
        let w = workload(&pop, dist, 150, 5);
        let mut hist = [0usize; 4];
        let mut total = 0usize;
        for q in &w.ranges {
            let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
            hist[out.cost.group_hops.min(3)] += 1;
            total += 1;
        }
        for q in &w.topks {
            let out = sys
                .query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k));
            hist[out.cost.group_hops.min(3)] += 1;
            total += 1;
        }
        r.row(&[
            dist.name().to_string(),
            pct(hist[0] as f64 / total as f64),
            pct(hist[1] as f64 / total as f64),
            pct(hist[2] as f64 / total as f64),
            pct(hist[3] as f64 / total as f64),
        ]);
    }
    r.note("paper: 87.3%-90.6% of operations served by one group (0 hops)");
    r
}

/// Fig. 9: average hit rate for filename point queries.
pub fn fig9() -> Report {
    const N_UNITS: usize = 60;
    let mut r = Report::new("fig9", "Point-query hit rate (%)", &["trace", "hit rate"]);
    for kind in TraceKind::ALL {
        let pop = population(kind, 3000, 5);
        let mut sys = system(&pop, N_UNITS, 5);
        // Staleness pressure: insert 5% new files after the index is
        // built (their names are missing from the tree's Bloom replicas).
        let mut rng = StdRng::seed_from_u64(6);
        let mut fresh_names = Vec::new();
        for i in 0..(pop.files.len() / 20) {
            let mut f = pop.files[rng.gen_range(0..pop.files.len())].clone();
            f.file_id = 5_000_000 + i as u64;
            f.name = format!("fresh_{}_{i}", kind.name());
            fresh_names.push((f.name.clone(), f.file_id));
            sys.apply_change(Change::Insert(f));
        }
        // A query is "served accurately by the Bloom filters" when the
        // Bloom-guided descent lands on exactly the owning unit — no
        // false-positive detours, no staleness fallback (§5.4.1).
        let mut hits = 0usize;
        let mut total = 0usize;
        for f in pop.files.iter().step_by(9) {
            total += 1;
            let out = sys.query().point(&f.name);
            if out.file_ids.contains(&f.file_id) && out.cost.units_probed <= 1 {
                hits += 1;
            }
        }
        for (name, id) in &fresh_names {
            total += 1;
            let out = sys.query().point(name);
            if out.file_ids.contains(id) && out.cost.units_probed <= 1 {
                hits += 1;
            }
        }
        r.row(&[kind.name().to_string(), pct(hits as f64 / total as f64)]);
    }
    r.note("paper: over 88.2% of point queries served accurately by Bloom filters");
    r
}

/// Shared recall runner: mutate a fraction of files, then measure mean
/// recall of range and top-8 queries against fresh exhaustive ideals.
fn recall_run(
    pop: &MetadataPopulation,
    n_units: usize,
    dist: QueryDistribution,
    n_queries: usize,
    mutate_fraction: f64,
    versioning: bool,
    seed: u64,
) -> (f64, f64) {
    // Lazy replica refresh is disabled here so the experiment isolates
    // index staleness: the contrast under study (Tables 5-6, Fig. 10)
    // is "stale replicas + versioning" vs "stale replicas alone".
    let cfg = SmartStoreConfig {
        lazy_update_threshold: f64::INFINITY,
        ..Default::default()
    };
    let mut sys = SmartStoreSystem::build(pop.files.clone(), n_units, cfg, seed);
    sys.set_versioning(versioning);
    // Mutation stream: every (1/f)-th file is rewritten to a fresh
    // in-domain attribute position (as a software update or migration
    // would). The file stays on its original unit but now "belongs"
    // semantically elsewhere: queries aimed at its new position are
    // routed — via stale index replicas — to other units and miss it
    // unless versioning recovers the change.
    let mut current = pop.files.clone();
    if mutate_fraction > 0.0 {
        let mut mrng = StdRng::seed_from_u64(seed ^ 0x77aa);
        let step = (1.0 / mutate_fraction).round() as usize;
        let horizon = pop.config.duration;
        let n = pop.files.len();
        let mut idx = 0usize;
        while idx < n {
            // Adopt the attribute neighbourhood of a random other file
            // (the mutated file semantically "joins another campaign").
            let donor = &pop.files[mrng.gen_range(0..n)];
            let f = &mut current[idx];
            let jitter = 0.9 + mrng.gen::<f64>() * 0.2;
            f.ctime = (donor.ctime * jitter).min(horizon);
            f.mtime = (donor.mtime * jitter).min(horizon);
            f.atime = (donor.atime * jitter).min(horizon);
            f.size = ((donor.size as f64) * jitter).max(1.0) as u64;
            f.read_bytes = (donor.read_bytes as f64 * jitter) as u64;
            f.write_bytes = (donor.write_bytes as f64 * jitter) as u64;
            f.access_count = ((donor.access_count as f64) * jitter).max(1.0) as u32;
            sys.apply_change(Change::Modify(f.clone()));
            idx += step.max(1);
        }
    }
    let scratch = MetadataPopulation {
        files: current,
        config: pop.config.clone(),
    };
    let w = QueryWorkload::generate(
        &scratch,
        &QueryGenConfig {
            // Ranges over-sampled: sparse-region centers often have
            // empty ideals (skipped), so the effective sample shrinks.
            n_range: n_queries * 3,
            n_topk: n_queries,
            n_point: 0,
            k: 8,
            distribution: dist,
            seed: seed ^ 0xabc,
            ..Default::default()
        },
    );
    let mut range_recall = 0.0;
    let mut range_n = 0usize;
    for q in &w.ranges {
        if q.ideal.is_empty() {
            continue;
        }
        let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        range_recall += recall(&q.ideal, &out.file_ids);
        range_n += 1;
    }
    let mut topk_recall = 0.0;
    for q in &w.topks {
        let out = sys
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k));
        topk_recall += recall(&q.ideal, &out.file_ids);
    }
    (
        range_recall / range_n.max(1) as f64,
        topk_recall / w.topks.len().max(1) as f64,
    )
}

/// Fig. 10: recall of top-8 and range queries on the HP trace under the
/// three distributions.
pub fn fig10() -> Report {
    let pop = population(TraceKind::Hp, 4000, 8);
    let mut r = Report::new(
        "fig10",
        "Recall of complex queries, HP trace (%)",
        &["distribution", "range query", "top-8 query"],
    );
    for dist in QueryDistribution::ALL {
        let (rr, tr) = recall_run(&pop, 40, dist, 150, 0.10, false, 8);
        r.row(&[dist.name().to_string(), pct(rr), pct(tr)]);
    }
    r.note("paper shape: top-k >= range; Zipf/Gauss >= Uniform");
    r
}

/// Fig. 11: optimal admission threshold vs system scale and vs tree
/// level (60 units).
pub fn fig11() -> Report {
    let mut r = Report::new(
        "fig11",
        "Optimal thresholds",
        &["x", "optimal threshold", "series"],
    );
    // (a) vs number of storage units.
    for n_units in [20usize, 40, 60, 80, 100] {
        let pop = population(TraceKind::Msn, n_units * 60, 9);
        let sys = system(&pop, n_units, 9);
        let vectors: Vec<Vec<f64>> = sys.units().iter().map(|u| u.centroid().to_vec()).collect();
        let (eps, _) = optimal_threshold(&vectors, 3, 10, 0.5);
        r.row(&[
            n_units.to_string(),
            format!("{eps:.2}"),
            "system scale".into(),
        ]);
    }
    // (b) per tree level at 60 units.
    let pop = population(TraceKind::Msn, 3600, 9);
    let sys = system(&pop, 60, 9);
    let tree = sys.tree();
    for level in 1..tree.height() as u32 {
        let nodes = tree.index_units_at_level(level);
        if nodes.len() < 2 {
            continue;
        }
        let vectors: Vec<Vec<f64>> = nodes
            .iter()
            .map(|&n| tree.node(n).centroid.clone())
            .collect();
        let (eps, _) = optimal_threshold(&vectors, 3, 10, 0.5);
        r.row(&[
            format!("level {level}"),
            format!("{eps:.2}"),
            "tree level (60 nodes)".into(),
        ]);
    }
    r.note(
        "paper shape: threshold varies smoothly with scale; deeper levels need lower thresholds",
    );
    r
}

/// Fig. 12: recall as a function of system scale (Gauss and Zipf);
/// the paper runs 1000 range + 1000 top-k queries, sampled
/// proportionally here.
pub fn fig12() -> Report {
    let mut r = Report::new(
        "fig12",
        "Recall vs system scale (%)",
        &[
            "units",
            "range (Gauss)",
            "top-8 (Gauss)",
            "range (Zipf)",
            "top-8 (Zipf)",
        ],
    );
    for n_units in [20usize, 40, 60, 80, 100] {
        let pop = population(TraceKind::Msn, n_units * 50, 10);
        let (rg, tg) = recall_run(&pop, n_units, QueryDistribution::Gauss, 60, 0.10, false, 10);
        let (rz, tz) = recall_run(&pop, n_units, QueryDistribution::Zipf, 60, 0.10, false, 10);
        r.row(&[n_units.to_string(), pct(rg), pct(tg), pct(rz), pct(tz)]);
    }
    r.note("paper: high recall maintained as the number of storage units grows");
    r
}

/// Fig. 13: on-line vs off-line query latency and message count vs
/// system scale (Zipf queries).
pub fn fig13() -> Report {
    let mut r = Report::new(
        "fig13",
        "On-line vs off-line (Zipf complex queries)",
        &[
            "units",
            "on-line ms",
            "off-line ms",
            "on-line msgs",
            "off-line msgs",
        ],
    );
    for n_units in [20usize, 40, 60, 80, 100] {
        let pop = population(TraceKind::Msn, n_units * 50, 11);
        let sys = system(&pop, n_units, 11);
        let w = workload(&pop, QueryDistribution::Zipf, 80, 11);
        let (mut on_lat, mut off_lat, mut on_m, mut off_m) = (0u64, 0u64, 0u64, 0u64);
        let mut n = 0u64;
        for q in &w.ranges {
            let on = sys.query().range(&q.lo, &q.hi, &QueryOptions::online());
            let off = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
            on_lat += on.cost.latency_ns;
            off_lat += off.cost.latency_ns;
            on_m += on.cost.messages;
            off_m += off.cost.messages;
            n += 1;
        }
        for q in &w.topks {
            let on = sys
                .query()
                .topk(&q.point, &QueryOptions::online().with_k(q.k));
            let off = sys
                .query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k));
            on_lat += on.cost.latency_ns;
            off_lat += off.cost.latency_ns;
            on_m += on.cost.messages;
            off_m += off.cost.messages;
            n += 1;
        }
        r.row(&[
            n_units.to_string(),
            ms(on_lat as f64 / n as f64),
            ms(off_lat as f64 / n as f64),
            format!("{:.1}", on_m as f64 / n as f64),
            format!("{:.1}", off_m as f64 / n as f64),
        ]);
    }
    r.note(
        "paper shape: off-line cuts messages sharply and latency moderately; gap widens with scale",
    );
    r
}

/// Fig. 14: versioning overhead — space per index unit and extra query
/// latency vs the version ratio.
pub fn fig14() -> Report {
    let mut r = Report::new(
        "fig14",
        "Versioning overhead vs version ratio",
        &["trace", "ratio", "space/group (KB)", "extra latency (%)"],
    );
    for kind in [TraceKind::Msn, TraceKind::Eecs] {
        let pop = population(kind, 3000, 12);
        for ratio in [1u32, 2, 4, 8, 16, 32] {
            let mut cfg = SmartStoreConfig {
                version_ratio: ratio,
                ..Default::default()
            };
            // Disable lazy refresh so all changes stay in chains (pure
            // versioning overhead measurement).
            cfg.lazy_update_threshold = f64::INFINITY;
            let mut sys = SmartStoreSystem::build(pop.files.clone(), 30, cfg.clone(), 12);
            sys.set_versioning(true);
            let mut sys_nv = SmartStoreSystem::build(pop.files.clone(), 30, cfg, 12);
            sys_nv.set_versioning(false);
            for f in pop.files.iter().step_by(16) {
                let mut g = f.clone();
                g.access_count += 7;
                g.read_bytes += 1 << 20;
                sys.apply_change(Change::Modify(g.clone()));
                sys_nv.apply_change(Change::Modify(g));
            }
            let w = workload(&pop, QueryDistribution::Zipf, 40, 12);
            let (mut with_v, mut without_v) = (0u64, 0u64);
            for q in &w.ranges {
                with_v += sys
                    .query()
                    .range(&q.lo, &q.hi, &QueryOptions::offline())
                    .cost
                    .latency_ns;
                without_v += sys_nv
                    .query()
                    .range(&q.lo, &q.hi, &QueryOptions::offline())
                    .cost
                    .latency_ns;
            }
            let extra = (with_v as f64 - without_v as f64) / without_v as f64;
            r.row(&[
                kind.name().to_string(),
                ratio.to_string(),
                format!("{:.2}", sys.version_space_per_group() / 1024.0),
                format!("{:.1}", extra * 100.0),
            ]);
        }
    }
    r.note("paper shape: space falls as ratio grows; extra latency stays under ~10%");
    r
}

/// Tables 5–6: recall of range and top-8 queries with and without
/// versioning as the query count grows, for the MSN or EECS trace.
pub fn table56(kind: TraceKind) -> Report {
    let id = if kind == TraceKind::Msn {
        "table5"
    } else {
        "table6"
    };
    let mut r = Report::new(
        id,
        &format!("Recall +/- versioning, {} trace (%)", kind.name()),
        &[
            "distribution",
            "kind",
            "1000",
            "2000",
            "3000",
            "4000",
            "5000",
        ],
    );
    let pop = population(kind, 3000, 13);
    for dist in QueryDistribution::ALL {
        let mut rows: [Vec<String>; 4] = [
            vec![dist.name().to_string(), "Range Query".into()],
            vec![dist.name().to_string(), "Range + Versioning".into()],
            vec![dist.name().to_string(), "K=8".into()],
            vec![dist.name().to_string(), "K=8 + Versioning".into()],
        ];
        for (qi, _n_queries) in [1000usize, 2000, 3000, 4000, 5000].iter().enumerate() {
            // More queries = a longer horizon = more accumulated changes
            // before the average query runs: the mutation fraction grows
            // with the query count; recall is estimated on a fixed
            // query sample.
            let mutate = 0.04 + 0.04 * qi as f64;
            let (r_nv, t_nv) = recall_run(&pop, 30, dist, 150, mutate, false, 14 + qi as u64);
            let (r_v, t_v) = recall_run(&pop, 30, dist, 150, mutate, true, 14 + qi as u64);
            rows[0].push(pct(r_nv));
            rows[1].push(pct(r_v));
            rows[2].push(pct(t_nv));
            rows[3].push(pct(t_v));
        }
        for row in rows {
            r.row(&row);
        }
    }
    r.note("paper shape: recall decays with query count; versioning restores it to ~95-100%");
    r
}

/// Ablation: LSI placement vs K-means-on-raw vs random placement.
pub fn ablation_grouping() -> Report {
    const N_UNITS: usize = 40;
    let pop = population(TraceKind::Msn, 4000, 15);
    let mut r = Report::new(
        "ablation-grouping",
        "Grouping quality: 0-hop %, units probed/query",
        &[
            "placement",
            "0-hop %",
            "mean units probed",
            "mean latency ms",
        ],
    );
    let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
    let mut rng = StdRng::seed_from_u64(15);
    let random: Vec<usize> = (0..pop.files.len())
        .map(|_| rng.gen_range(0..N_UNITS))
        .collect();
    let raw = partition_balanced_raw(&vectors, N_UNITS, 15);
    let placements: Vec<(&str, Option<Vec<usize>>)> = vec![
        ("LSI (SmartStore)", None),
        ("K-means raw attrs", Some(raw)),
        ("random", Some(random)),
    ];
    for (name, assignment) in placements {
        let sys = match assignment {
            None => {
                SmartStoreSystem::build(pop.files.clone(), N_UNITS, SmartStoreConfig::default(), 15)
            }
            Some(a) => SmartStoreSystem::build_with_assignment(
                pop.files.clone(),
                &a,
                N_UNITS,
                SmartStoreConfig::default(),
                15,
            ),
        };
        let w = workload(&pop, QueryDistribution::Zipf, 100, 16);
        let (mut zero, mut probed, mut lat, mut n) = (0usize, 0usize, 0u64, 0usize);
        for q in &w.ranges {
            let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
            zero += usize::from(out.cost.group_hops == 0);
            probed += out.cost.units_probed;
            lat += out.cost.latency_ns;
            n += 1;
        }
        for q in &w.topks {
            let out = sys
                .query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k));
            zero += usize::from(out.cost.group_hops == 0);
            probed += out.cost.units_probed;
            lat += out.cost.latency_ns;
            n += 1;
        }
        r.row(&[
            name.to_string(),
            pct(zero as f64 / n as f64),
            format!("{:.2}", probed as f64 / n as f64),
            ms(lat as f64 / n as f64),
        ]);
    }
    r.note("expected: LSI >= K-means-raw >> random on 0-hop and units probed");
    r
}

/// Ablation: automatic configuration on/off for attribute-subset
/// queries.
pub fn ablation_autoconfig() -> Report {
    const N_UNITS: usize = 30;
    let pop = population(TraceKind::Msn, 3000, 17);
    let sys = system(&pop, N_UNITS, 17);
    let candidates = vec![
        vec![AttributeKind::Size],
        vec![AttributeKind::Size, AttributeKind::CreationTime],
        vec![
            AttributeKind::ModificationTime,
            AttributeKind::ReadBytes,
            AttributeKind::WriteBytes,
        ],
    ];
    // Keep all candidates for the ablation.
    let cfg = SmartStoreConfig {
        autoconfig_threshold: -1.0,
        ..Default::default()
    };
    let ac = AutoConfig::configure(sys.units(), &candidates, &cfg);
    let (lo_b, hi_b) = pop.attr_bounds();

    let mut r = Report::new(
        "ablation-autoconfig",
        "Subset queries: dedicated subset tree vs full-D tree",
        &[
            "query dims",
            "subset-tree nodes",
            "full-tree nodes",
            "subset units",
            "full units",
        ],
    );
    let mut rng = StdRng::seed_from_u64(18);
    for dims in &candidates {
        let (mut sn, mut fnodes, mut su, mut fu) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..60 {
            // A range on the subset dims around a random file.
            let f = &pop.files[rng.gen_range(0..pop.files.len())];
            let v = f.attr_vector();
            let sub_lo: Vec<f64> = dims
                .iter()
                .map(|&k| v[k.index()] - 0.05 * (hi_b[k.index()] - lo_b[k.index()]))
                .collect();
            let sub_hi: Vec<f64> = dims
                .iter()
                .map(|&k| v[k.index()] + 0.05 * (hi_b[k.index()] - lo_b[k.index()]))
                .collect();
            // Subset tree: query its own dimensionality directly.
            let (tree, _) = ac.select(dims);
            let route = tree.tree.route_range(&sub_lo, &sub_hi);
            sn += route.nodes_visited;
            su += route.target_units.len();
            // Full tree: unconstrained in the other dimensions.
            let mut full_lo = lo_b.clone();
            let mut full_hi = hi_b.clone();
            for (i, &k) in dims.iter().enumerate() {
                full_lo[k.index()] = sub_lo[i];
                full_hi[k.index()] = sub_hi[i];
            }
            let full_route = ac.full.tree.route_range(&full_lo, &full_hi);
            fnodes += full_route.nodes_visited;
            fu += full_route.target_units.len();
        }
        r.row(&[
            dims.iter().map(|d| d.name()).collect::<Vec<_>>().join("+"),
            format!("{:.1}", sn as f64 / 60.0),
            format!("{:.1}", fnodes as f64 / 60.0),
            format!("{:.1}", su as f64 / 60.0),
            format!("{:.1}", fu as f64 / 60.0),
        ]);
    }
    r.note("finding: with placement already driven by full-D correlation, projected unit MBRs retain most pruning power, so dedicated subset trees give only modest routing gains — the autoconfig threshold (\u{a7}2.4) exists precisely to discard such redundant trees");
    r
}

/// Ablation: Bloom filter geometry sweep (bits at fixed k = 7).
pub fn ablation_bloom() -> Report {
    const N_UNITS: usize = 30;
    let pop = population(TraceKind::Msn, 3000, 19);
    let mut r = Report::new(
        "ablation-bloom",
        "Bloom geometry: ghost-query pruning vs memory",
        &[
            "bits",
            "mean units probed (ghost)",
            "hit rate %",
            "bloom KB/unit",
        ],
    );
    for bits in [256usize, 512, 1024, 2048, 4096] {
        let cfg = SmartStoreConfig {
            bloom_bits: bits,
            ..Default::default()
        };
        let sys = SmartStoreSystem::build(pop.files.clone(), N_UNITS, cfg, 19);
        // Ghost probes: absent names.
        let mut probed = 0usize;
        for i in 0..100 {
            let out = sys.query().point(&format!("ghost_{i}"));
            probed += out.cost.units_probed;
        }
        // Real probes: existing names.
        let mut hits = 0usize;
        let mut total = 0usize;
        for f in pop.files.iter().step_by(17) {
            total += 1;
            if sys.query().point(&f.name).file_ids.contains(&f.file_id) {
                hits += 1;
            }
        }
        r.row(&[
            bits.to_string(),
            format!("{:.2}", probed as f64 / 100.0),
            pct(hits as f64 / total as f64),
            format!("{:.2}", bits as f64 / 8.0 / 1024.0),
        ]);
    }
    r.note(
        "expected: larger filters prune ghosts harder at linear memory cost; hit rate stays high",
    );
    r
}

/// Ablation: replica placement for off-line routing — local first-level
/// replicas vs fetching index vectors from a directory node vs pure
/// on-line multicast.
pub fn ablation_replica() -> Report {
    const N_UNITS: usize = 40;
    let pop = population(TraceKind::Msn, 4000, 20);
    let sys = system(&pop, N_UNITS, 20);
    let w = workload(&pop, QueryDistribution::Zipf, 100, 21);
    let cost = CostModel::default();
    let extra_hop = cost.wire_ns(128);
    let (mut off_lat, mut off_m, mut on_lat, mut on_m) = (0u64, 0u64, 0u64, 0u64);
    let mut n = 0u64;
    for q in &w.ranges {
        let off = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        let on = sys.query().range(&q.lo, &q.hi, &QueryOptions::online());
        off_lat += off.cost.latency_ns;
        off_m += off.cost.messages;
        on_lat += on.cost.latency_ns;
        on_m += on.cost.messages;
        n += 1;
    }
    let mut r = Report::new(
        "ablation-replica",
        "Replica placement for off-line routing (means per query)",
        &["scheme", "latency ms", "messages"],
    );
    r.row(&[
        "level-1 replicas at every unit (paper)".to_string(),
        ms(off_lat as f64 / n as f64),
        format!("{:.1}", off_m as f64 / n as f64),
    ]);
    // No local replica: the home unit must round-trip to a directory
    // node before routing (two extra wire legs + one extra message).
    r.row(&[
        "no replica (directory round-trip)".to_string(),
        ms((off_lat + 2 * extra_hop * n) as f64 / n as f64),
        format!("{:.1}", (off_m + 2 * n) as f64 / n as f64),
    ]);
    r.row(&[
        "no pre-processing (on-line multicast)".to_string(),
        ms(on_lat as f64 / n as f64),
        format!("{:.1}", on_m as f64 / n as f64),
    ]);
    r.note("replicating first-level vectors is the sweet spot: one targeted hop, no flood");
    r
}

/// Extension experiment (not in the paper): latency vs offered load,
/// measured on the event-driven cluster simulator with per-unit
/// queueing (`smartstore::replay`). Shows where the decentralized
/// design saturates.
pub fn ext_load_sweep() -> Report {
    use smartstore::replay::replay_complex_queries;
    const N_UNITS: usize = 40;
    let pop = population(TraceKind::Msn, 4000, 23);
    let mut sys = system(&pop, N_UNITS, 23);
    let w = workload(&pop, QueryDistribution::Zipf, 150, 23);
    let mut r = Report::new(
        "ext-load",
        "Latency vs offered load (event-driven replay, extension)",
        &["inter-arrival us", "mean ms", "p99 ms", "makespan ms"],
    );
    for inter_us in [0u64, 50, 200, 1000, 5000] {
        let stats = replay_complex_queries(&mut sys, &w, inter_us * 1000, 23);
        r.row(&[
            inter_us.to_string(),
            ms(stats.mean_latency_ns),
            ms(stats.p99_latency_ns as f64),
            ms(stats.makespan_ns as f64),
        ]);
    }
    r.note("closed burst (0) queues hardest; latency falls toward the idle cost as arrivals relax");
    r
}

/// Runs every experiment in order.
pub fn all() -> Vec<Report> {
    let mut out = tables123();
    out.push(table4());
    out.push(fig7());
    out.push(fig8());
    out.push(fig9());
    out.push(fig10());
    out.push(fig11());
    out.push(fig12());
    out.push(fig13());
    out.push(fig14());
    out.push(table56(TraceKind::Msn));
    out.push(table56(TraceKind::Eecs));
    out.push(ablation_grouping());
    out.push(ablation_autoconfig());
    out.push(ablation_bloom());
    out.push(ablation_replica());
    out.push(ext_load_sweep());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables123_reproduce_paper_arithmetic() {
        let reports = tables123();
        assert_eq!(reports.len(), 3);
        let t1 = &reports[0];
        // HP requests: 94.7 → 7576.
        let row = t1.rows.iter().find(|r| r[0].contains("requests")).unwrap();
        assert_eq!(row[1], "94.7");
        assert_eq!(row[2], "7576");
    }

    #[test]
    fn fig7_ordering_holds() {
        let r = fig7();
        for row in &r.rows {
            let dbms: f64 = row[1].parse().unwrap();
            let rtree: f64 = row[2].parse().unwrap();
            let smart: f64 = row[3].parse().unwrap();
            assert!(dbms > rtree, "{row:?}");
            assert!(rtree > smart, "{row:?}");
        }
    }

    #[test]
    fn ablation_bloom_memory_column_linear() {
        let r = ablation_bloom();
        let kb: Vec<f64> = r.rows.iter().map(|row| row[3].parse().unwrap()).collect();
        for w in kb.windows(2) {
            // Rendered with 2 decimals, so allow rounding slack.
            assert!((w[1] / w[0] - 2.0).abs() < 0.15, "{} vs {}", w[0], w[1]);
        }
    }
}
