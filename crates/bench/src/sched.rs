//! FIFO batch scheduling for Table 4's loaded-system latencies.
//!
//! Table 4 reports *seconds* per query type under TIF-intensified load —
//! these are latencies of query batches hitting a loaded system, not a
//! single cold probe. The structural difference the table exposes is
//! queueing: DBMS and the non-semantic R-tree are centralized (every
//! query serializes on one server) while SmartStore spreads queries
//! across all storage units. This module models exactly that: per-server
//! FIFO queues fed at t = 0, reporting mean and total completion times.

/// One query's service demand.
#[derive(Clone, Copy, Debug)]
pub struct Job {
    /// Server the job must run on.
    pub server: usize,
    /// Service time in ns (CPU/index work, excluding wire).
    pub service_ns: u64,
    /// Fixed wire latency added to the completion time.
    pub wire_ns: u64,
}

/// Outcome of scheduling a batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOutcome {
    /// Mean completion latency over jobs (ns).
    pub mean_latency_ns: f64,
    /// Completion time of the last job (makespan, ns).
    pub makespan_ns: u64,
    /// Total service demand (ns).
    pub total_service_ns: u64,
}

/// Schedules `jobs` (all arriving at t = 0) on per-server FIFO queues in
/// the given order.
pub fn run_batch(jobs: &[Job], n_servers: usize) -> BatchOutcome {
    assert!(n_servers > 0, "run_batch: need at least one server");
    let mut busy = vec![0u64; n_servers];
    let mut sum_latency = 0u128;
    let mut makespan = 0u64;
    let mut total_service = 0u64;
    for j in jobs {
        assert!(j.server < n_servers, "job server out of range");
        let start = busy[j.server];
        let done = start + j.service_ns;
        busy[j.server] = done;
        let completion = done + j.wire_ns;
        sum_latency += completion as u128;
        makespan = makespan.max(completion);
        total_service += j.service_ns;
    }
    BatchOutcome {
        mean_latency_ns: if jobs.is_empty() {
            0.0
        } else {
            sum_latency as f64 / jobs.len() as f64
        },
        makespan_ns: makespan,
        total_service_ns: total_service,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let jobs: Vec<Job> = (0..4)
            .map(|_| Job {
                server: 0,
                service_ns: 100,
                wire_ns: 10,
            })
            .collect();
        let out = run_batch(&jobs, 1);
        // Completions at 110, 210, 310, 410.
        assert_eq!(out.makespan_ns, 410);
        assert!((out.mean_latency_ns - 260.0).abs() < 1e-9);
    }

    #[test]
    fn spreading_over_servers_cuts_latency() {
        let central: Vec<Job> = (0..60)
            .map(|_| Job {
                server: 0,
                service_ns: 1000,
                wire_ns: 0,
            })
            .collect();
        let spread: Vec<Job> = (0..60)
            .map(|i| Job {
                server: i % 60,
                service_ns: 1000,
                wire_ns: 0,
            })
            .collect();
        let c = run_batch(&central, 60);
        let s = run_batch(&spread, 60);
        assert!(c.mean_latency_ns > s.mean_latency_ns * 20.0);
        assert_eq!(s.makespan_ns, 1000);
    }

    #[test]
    fn empty_batch() {
        let out = run_batch(&[], 4);
        assert_eq!(out.mean_latency_ns, 0.0);
        assert_eq!(out.makespan_ns, 0);
    }
}
