//! The two baseline systems of §5.1, wrapped with the same cost
//! accounting as SmartStore.
//!
//! * **DBMS** — one B+-tree per attribute (`smartstore_bptree::Dbms`),
//!   centralized on a single server.
//! * **R-tree** — one multi-dimensional R-tree over raw attribute
//!   vectors (`smartstore_rtree::RTree`), also centralized: "R-tree is a
//!   centralized structure" (Fig. 7 discussion).
//!
//! Both charge 2 wire hops (client↔server) plus index-node and record
//! probe costs; their defining weakness in the paper — every query lands
//! on one server — is modeled by the batch scheduler
//! ([`crate::sched`]), which serializes their work on a single queue.

use smartstore_bptree::Dbms;
use smartstore_rtree::{bulk::str_bulk_load, RTree, RTreeConfig, Rect};
use smartstore_simnet::CostModel;
use smartstore_trace::{FileMetadata, ATTR_DIMS};

/// Cost of one baseline query (same shape as SmartStore's
/// `QueryCost`).
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineCost {
    /// End-to-end latency in ns (2 hops + server work).
    pub latency_ns: u64,
    /// Server-side work alone in ns (what queues under load).
    pub service_ns: u64,
    /// Messages (always 2: request + reply).
    pub messages: u64,
}

fn cost_from_work(nodes: usize, records: usize, cost: &CostModel) -> BaselineCost {
    let service = cost.probe_ns(nodes, records) + cost.per_msg_cpu_ns;
    BaselineCost {
        latency_ns: 2 * cost.wire_ns(256) + service,
        service_ns: service,
        messages: 2,
    }
}

/// The DBMS baseline: per-attribute B+-trees on one server.
pub struct DbmsBaseline {
    db: Dbms,
    cost: CostModel,
    /// Number of filenames sharing each 6-char prefix. The paper (§6.3)
    /// faults DBMS for treating "file pathnames as a flat string
    /// attribute", ignoring namespace locality: an unoptimized flat-
    /// string index clusters same-prefix names into long leaf runs that
    /// a lookup must scan through.
    prefix_runs: std::collections::HashMap<String, usize>,
}

impl DbmsBaseline {
    /// Indexes all files.
    pub fn build(files: &[FileMetadata]) -> Self {
        let mut db = Dbms::new(ATTR_DIMS, 32);
        let mut prefix_runs: std::collections::HashMap<String, usize> = Default::default();
        for f in files {
            db.insert(f.file_id, &f.name, &f.attr_vector());
            let p: String = f.name.chars().take(6).collect();
            *prefix_runs.entry(p).or_insert(0) += 1;
        }
        Self {
            db,
            cost: CostModel::default(),
            prefix_runs,
        }
    }

    /// Point query by filename: B+-tree descent plus a scan of the
    /// shared-prefix leaf run (the flat-string-attribute penalty).
    pub fn point(&self, name: &str) -> (Vec<u64>, BaselineCost) {
        let (ids, s) = self.db.point_query(name);
        let prefix: String = name.chars().take(6).collect();
        let run = self.prefix_runs.get(&prefix).copied().unwrap_or(0);
        (ids, cost_from_work(s.nodes_touched, run, &self.cost))
    }

    /// Range query; "DBMS must check each B+-tree index for each
    /// attribute" — the candidate volume is what hurts.
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> (Vec<u64>, BaselineCost) {
        let (ids, s) = self.db.range_query(lo, hi);
        (
            ids,
            cost_from_work(s.nodes_touched, s.candidates, &self.cost),
        )
    }

    /// Top-k query via expanding window probes.
    pub fn topk(&self, point: &[f64], k: usize) -> (Vec<u64>, BaselineCost) {
        let (ids, s) = self.db.topk_query(point, k);
        (
            ids,
            cost_from_work(s.nodes_touched, s.candidates, &self.cost),
        )
    }

    /// Total index bytes (one B+-tree per attribute + filename index).
    pub fn index_bytes(&self) -> usize {
        self.db.size_bytes(32)
    }
}

/// The non-semantic R-tree baseline: one centralized multi-dimensional
/// R-tree over every file's raw attribute vector.
pub struct RTreeBaseline {
    tree: RTree<u64>,
    /// Filename → id pairs, sorted; the R-tree itself cannot answer
    /// filename queries, so the baseline scans a sorted name table
    /// (binary search for the page + linear page scan).
    names: Vec<(String, u64)>,
    cost: CostModel,
}

impl RTreeBaseline {
    /// Bulk-loads all files (STR packing so the baseline is not
    /// handicapped by insertion order).
    pub fn build(files: &[FileMetadata]) -> Self {
        let items: Vec<(Rect, u64)> = files
            .iter()
            .map(|f| (Rect::point(&f.attr_vector()), f.file_id))
            .collect();
        let tree = str_bulk_load(
            ATTR_DIMS,
            RTreeConfig {
                max_entries: 16,
                min_entries: 6,
            },
            items,
        );
        let mut names: Vec<(String, u64)> =
            files.iter().map(|f| (f.name.clone(), f.file_id)).collect();
        names.sort();
        Self {
            tree,
            names,
            cost: CostModel::default(),
        }
    }

    /// Point query: binary search over the name table; charged one
    /// index-node probe per binary-search level plus one page of record
    /// scans.
    pub fn point(&self, name: &str) -> (Vec<u64>, BaselineCost) {
        const PAGE: usize = 64;
        let idx = self.names.partition_point(|(n, _)| n.as_str() < name);
        let mut ids = Vec::new();
        let mut i = idx;
        while i < self.names.len() && self.names[i].0 == name {
            ids.push(self.names[i].1);
            i += 1;
        }
        let levels = (self.names.len().max(2) as f64).log2().ceil() as usize;
        (ids, cost_from_work(levels, PAGE, &self.cost))
    }

    /// Multi-dimensional range query.
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> (Vec<u64>, BaselineCost) {
        let q = Rect::new(lo.to_vec(), hi.to_vec());
        let (hits, visited) = self.tree.range_with_stats(&q);
        let ids: Vec<u64> = hits.into_iter().copied().collect();
        let records = ids.len();
        (ids, cost_from_work(visited, records, &self.cost))
    }

    /// k-nearest-neighbour query.
    pub fn topk(&self, point: &[f64], k: usize) -> (Vec<u64>, BaselineCost) {
        let (hits, visited) = self.tree.knn_with_stats(point, k);
        let ids: Vec<u64> = hits.iter().map(|&(id, _)| *id).collect();
        (ids, cost_from_work(visited, hits.len(), &self.cost))
    }

    /// Index bytes: every R-tree node stores up to 16 D-dim rectangles.
    pub fn index_bytes(&self) -> usize {
        self.tree.stats().node_count * 16 * ATTR_DIMS * 2 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn pop() -> MetadataPopulation {
        MetadataPopulation::generate(GeneratorConfig {
            n_files: 800,
            n_clusters: 10,
            seed: 77,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn dbms_and_rtree_agree_on_range_answers() {
        let p = pop();
        let db = DbmsBaseline::build(&p.files);
        let rt = RTreeBaseline::build(&p.files);
        let (lo_b, hi_b) = p.attr_bounds();
        let lo: Vec<f64> = lo_b
            .iter()
            .zip(&hi_b)
            .map(|(&l, &h)| l + (h - l) * 0.3)
            .collect();
        let hi: Vec<f64> = lo_b
            .iter()
            .zip(&hi_b)
            .map(|(&l, &h)| l + (h - l) * 0.7)
            .collect();
        let (mut a, _) = db.range(&lo, &hi);
        let (mut b, _) = rt.range(&lo, &hi);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "two exact baselines must agree");
    }

    #[test]
    fn baselines_answer_point_queries() {
        let p = pop();
        let db = DbmsBaseline::build(&p.files);
        let rt = RTreeBaseline::build(&p.files);
        let f = &p.files[123];
        assert_eq!(db.point(&f.name).0, vec![f.file_id]);
        assert_eq!(rt.point(&f.name).0, vec![f.file_id]);
        assert!(db.point("nope").0.is_empty());
        assert!(rt.point("nope").0.is_empty());
    }

    #[test]
    fn topk_results_overlap_heavily() {
        let p = pop();
        let db = DbmsBaseline::build(&p.files);
        let rt = RTreeBaseline::build(&p.files);
        let q = p.files[50].attr_vector();
        let (a, _) = db.topk(&q, 8);
        let (b, _) = rt.topk(&q, 8);
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert!(
            overlap >= 7,
            "exact top-k engines overlap {overlap}/8 (ties allowed)"
        );
    }

    #[test]
    fn dbms_space_exceeds_rtree_space() {
        // Fig. 7's ordering: one index per attribute costs more than one
        // multi-dimensional index.
        let p = pop();
        let db = DbmsBaseline::build(&p.files);
        let rt = RTreeBaseline::build(&p.files);
        assert!(db.index_bytes() > rt.index_bytes());
    }

    #[test]
    fn dbms_range_service_dwarfs_rtree() {
        // The candidate-intersection cost is the DBMS's defining flaw.
        let p = pop();
        let db = DbmsBaseline::build(&p.files);
        let rt = RTreeBaseline::build(&p.files);
        let (lo_b, hi_b) = p.attr_bounds();
        let lo: Vec<f64> = lo_b
            .iter()
            .zip(&hi_b)
            .map(|(&l, &h)| l + (h - l) * 0.4)
            .collect();
        let hi: Vec<f64> = lo_b
            .iter()
            .zip(&hi_b)
            .map(|(&l, &h)| l + (h - l) * 0.6)
            .collect();
        let (_, dc) = db.range(&lo, &hi);
        let (_, rc) = rt.range(&lo, &hi);
        assert!(
            dc.service_ns > rc.service_ns,
            "DBMS {} should exceed R-tree {}",
            dc.service_ns,
            rc.service_ns
        );
    }
}
