//! Experiment output: aligned text tables plus JSON artifacts.
//!
//! JSON is emitted by hand (string/array escaping only — the report
//! shape is flat), keeping the harness free of external serialization
//! dependencies.

use std::fmt::Write as _;
use std::path::Path;

/// One experiment's printable + serializable result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id, e.g. "table4" or "fig13".
    pub id: String,
    /// Human title (paper artifact name).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells, first cell is the row label).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: what to compare against the paper.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let _ = writeln!(out, "  \"columns\": {},", json_string_array(&self.columns));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {}", json_string_array(row));
        }
        out.push_str(if self.rows.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = writeln!(out, "  \"notes\": {}", json_string_array(&self.notes));
        out.push_str("}\n");
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, self.to_json())
    }
}

/// Directory for machine-readable benchmark reports:
/// `$BENCH_REPORT_DIR` if set, otherwise `target/bench-reports` at the
/// workspace root (benches run with the package dir as cwd, so the
/// default is anchored on this crate's manifest, not on cwd).
pub fn default_report_dir() -> std::path::PathBuf {
    std::env::var("BENCH_REPORT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/bench-reports"
            ))
        })
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a flat string array on a single line.
fn json_string_array<S: AsRef<str>>(items: &[S]) -> String {
    let body: Vec<String> = items.iter().map(|s| json_string(s.as_ref())).collect();
    format!("[{}]", body.join(", "))
}

/// Formats nanoseconds as milliseconds with 3 decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "Title", &["name", "value"]);
        r.row(&["short", "1"]);
        r.row(&["a-much-longer-name", "23456"]);
        let s = r.render();
        assert!(s.contains("t — Title"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("x", "X", &["a"]);
        r.row(&["1"]);
        r.note("hello");
        let dir = std::env::temp_dir().join("smartstore_report_test");
        r.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("x.json")).unwrap();
        assert!(body.contains("\"hello\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1_500_000.0), "1.500");
        assert_eq!(pct(0.873), "87.3");
    }
}
