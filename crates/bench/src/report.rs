//! Experiment output: aligned text tables plus JSON artifacts.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// One experiment's printable + serializable result.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Experiment id, e.g. "table4" or "fig13".
    pub id: String,
    /// Human title (paper artifact name).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells, first cell is the row label).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: what to compare against the paper.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, serde_json::to_string_pretty(self).expect("report serializes"))
    }
}

/// Formats nanoseconds as milliseconds with 3 decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "Title", &["name", "value"]);
        r.row(&["short", "1"]);
        r.row(&["a-much-longer-name", "23456"]);
        let s = r.render();
        assert!(s.contains("t — Title"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("x", "X", &["a"]);
        r.row(&["1"]);
        r.note("hello");
        let dir = std::env::temp_dir().join("smartstore_report_test");
        r.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("x.json")).unwrap();
        assert!(body.contains("\"hello\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1_500_000.0), "1.500");
        assert_eq!(pct(0.873), "87.3");
    }
}
