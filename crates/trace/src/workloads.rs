//! The HP / MSN / EECS workload models.
//!
//! Each model carries the *nominal statistics* of the original trace as
//! published in Tables 1–3 of the paper (the "Original" columns) and a
//! recipe for generating a concrete, down-sampled metadata population
//! with the matching skew. The tables themselves are pure arithmetic on
//! the nominal statistics (multiplication by the TIF), which is exactly
//! what the paper reports; the concrete populations feed the query
//! experiments.

use crate::generator::{GeneratorConfig, MetadataPopulation};

/// Which trace a workload models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// HP file-system trace (Riedel et al., FAST '02) — Table 1.
    Hp,
    /// MSN production Windows-server storage trace (Kavalanekar et al.,
    /// IISWC '08) — Table 2.
    Msn,
    /// EECS NFS trace of email/research workloads (Ellard et al.,
    /// FAST '03) — Table 3.
    Eecs,
}

impl TraceKind {
    /// All trace kinds.
    pub const ALL: [TraceKind; 3] = [TraceKind::Hp, TraceKind::Msn, TraceKind::Eecs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Hp => "HP",
            TraceKind::Msn => "MSN",
            TraceKind::Eecs => "EECS",
        }
    }

    /// The TIF the paper uses for this trace's scale-up table.
    pub fn paper_tif(self) -> u32 {
        match self {
            TraceKind::Hp => 80,
            TraceKind::Msn => 100,
            TraceKind::Eecs => 150,
        }
    }
}

/// Nominal per-trace statistics (the "Original" columns of Tables 1–3).
///
/// Units follow the paper: counts in millions where noted, sizes in GB,
/// duration in hours. Fields that a given table does not report are
/// `None`.
#[derive(Clone, Debug, PartialEq)]
pub struct NominalStats {
    /// Total requests, millions (Table 1: 94.7).
    pub requests_m: Option<f64>,
    /// Active users (Table 1: 32).
    pub active_users: Option<u64>,
    /// User accounts (Table 1: 207).
    pub user_accounts: Option<u64>,
    /// Active files, millions (Table 1: 0.969).
    pub active_files_m: Option<f64>,
    /// Total files, millions (Table 1: 4; Table 2: 1.25).
    pub total_files_m: Option<f64>,
    /// Total READ operations, millions (Tables 2–3).
    pub reads_m: Option<f64>,
    /// Total WRITE operations, millions (Tables 2–3).
    pub writes_m: Option<f64>,
    /// READ volume, GB (Table 3: 5.1).
    pub read_gb: Option<f64>,
    /// WRITE volume, GB (Table 3: 9.1).
    pub write_gb: Option<f64>,
    /// Trace duration, hours (Table 2: 6).
    pub duration_hours: Option<f64>,
    /// Total I/O or total operations, millions (Table 2: 4.47;
    /// Table 3: 4.44).
    pub total_ops_m: Option<f64>,
}

/// A workload model: nominal stats + generator recipe.
#[derive(Clone, Debug)]
pub struct WorkloadModel {
    /// Which trace this models.
    pub kind: TraceKind,
    /// Published original statistics.
    pub nominal: NominalStats,
}

impl WorkloadModel {
    /// The model for a given trace.
    pub fn new(kind: TraceKind) -> Self {
        let nominal = match kind {
            TraceKind::Hp => NominalStats {
                requests_m: Some(94.7),
                active_users: Some(32),
                user_accounts: Some(207),
                active_files_m: Some(0.969),
                total_files_m: Some(4.0),
                reads_m: None,
                writes_m: None,
                read_gb: None,
                write_gb: None,
                duration_hours: None,
                total_ops_m: None,
            },
            TraceKind::Msn => NominalStats {
                requests_m: None,
                active_users: None,
                user_accounts: None,
                active_files_m: None,
                total_files_m: Some(1.25),
                reads_m: Some(3.30),
                writes_m: Some(1.17),
                read_gb: None,
                write_gb: None,
                duration_hours: Some(6.0),
                total_ops_m: Some(4.47),
            },
            TraceKind::Eecs => NominalStats {
                requests_m: None,
                active_users: None,
                user_accounts: None,
                active_files_m: None,
                total_files_m: None,
                reads_m: Some(0.46),
                writes_m: Some(0.667),
                read_gb: Some(5.1),
                write_gb: Some(9.1),
                duration_hours: None,
                total_ops_m: Some(4.44),
            },
        };
        Self { kind, nominal }
    }

    /// Generator configuration for a concrete population of `n_files`
    /// files preserving this trace's character (R/W mix, duration,
    /// skew). `n_files` is the *simulation* population, not the nominal
    /// file count — attribute distributions, not absolute counts, drive
    /// the query experiments.
    pub fn generator_config(&self, n_files: usize, seed: u64) -> GeneratorConfig {
        match self.kind {
            // HP: general-purpose engineering workload; many users,
            // moderate clustering, week-long horizon.
            TraceKind::Hp => GeneratorConfig {
                n_files,
                n_clusters: (n_files / 150).max(8),
                clustered_fraction: 0.90,
                duration: 86_400.0 * 7.0,
                size_mu: 9.0,
                size_sigma: 2.2,
                popularity_exponent: 1.0,
                n_users: 207,
                n_procs: 128,
                seed,
            },
            // MSN: production server, 6-hour window, hot working set,
            // read-dominated (3.30M R vs 1.17M W).
            TraceKind::Msn => GeneratorConfig {
                n_files,
                n_clusters: (n_files / 100).max(8),
                clustered_fraction: 0.95,
                duration: 3600.0 * 6.0,
                size_mu: 10.5,
                size_sigma: 2.0,
                popularity_exponent: 1.2,
                n_users: 64,
                n_procs: 48,
                seed: seed ^ 0x4d534e, // "MSN"
            },
            // EECS: NFS email+research, write-heavy (0.667M W vs 0.46M R,
            // 9.1 GB written vs 5.1 GB read), small files.
            TraceKind::Eecs => GeneratorConfig {
                n_files,
                n_clusters: (n_files / 120).max(8),
                clustered_fraction: 0.88,
                duration: 86_400.0,
                size_mu: 8.0,
                size_sigma: 1.8,
                popularity_exponent: 0.9,
                n_users: 150,
                n_procs: 96,
                seed: seed ^ 0x45454353, // "EECS"
            },
        }
    }

    /// Generates a concrete population for experiments.
    pub fn generate(&self, n_files: usize, seed: u64) -> MetadataPopulation {
        let mut pop = MetadataPopulation::generate(self.generator_config(n_files, seed));
        // Impose the trace's read/write volume ratio on the population so
        // the ReadBytes/WriteBytes dimensions carry trace identity.
        if let Some(r) = self.read_write_ratio() {
            for f in &mut pop.files {
                let total = f.read_bytes + f.write_bytes;
                // Blend per-file ratio toward the trace-level ratio.
                let per_file = r * 0.6 + 0.4 * (f.read_bytes as f64 / (total.max(1)) as f64);
                f.read_bytes = (total as f64 * per_file) as u64;
                f.write_bytes = total - f.read_bytes;
            }
        }
        pop
    }

    /// READ share of total I/O volume from the nominal stats, if known.
    fn read_write_ratio(&self) -> Option<f64> {
        match (self.nominal.read_gb, self.nominal.write_gb) {
            (Some(r), Some(w)) => Some(r / (r + w)),
            _ => match (self.nominal.reads_m, self.nominal.writes_m) {
                (Some(r), Some(w)) => Some(r / (r + w)),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_stats_match_paper_tables() {
        let hp = WorkloadModel::new(TraceKind::Hp);
        assert_eq!(hp.nominal.requests_m, Some(94.7));
        assert_eq!(hp.nominal.active_users, Some(32));
        assert_eq!(hp.nominal.user_accounts, Some(207));
        assert_eq!(hp.nominal.active_files_m, Some(0.969));
        assert_eq!(hp.nominal.total_files_m, Some(4.0));

        let msn = WorkloadModel::new(TraceKind::Msn);
        assert_eq!(msn.nominal.total_files_m, Some(1.25));
        assert_eq!(msn.nominal.reads_m, Some(3.30));
        assert_eq!(msn.nominal.writes_m, Some(1.17));
        assert_eq!(msn.nominal.duration_hours, Some(6.0));
        assert_eq!(msn.nominal.total_ops_m, Some(4.47));

        let eecs = WorkloadModel::new(TraceKind::Eecs);
        assert_eq!(eecs.nominal.reads_m, Some(0.46));
        assert_eq!(eecs.nominal.read_gb, Some(5.1));
        assert_eq!(eecs.nominal.writes_m, Some(0.667));
        assert_eq!(eecs.nominal.write_gb, Some(9.1));
        assert_eq!(eecs.nominal.total_ops_m, Some(4.44));
    }

    #[test]
    fn paper_tifs() {
        assert_eq!(TraceKind::Hp.paper_tif(), 80);
        assert_eq!(TraceKind::Msn.paper_tif(), 100);
        assert_eq!(TraceKind::Eecs.paper_tif(), 150);
    }

    #[test]
    fn generated_population_has_requested_size() {
        for kind in TraceKind::ALL {
            let pop = WorkloadModel::new(kind).generate(1500, 11);
            assert_eq!(pop.len(), 1500, "{}", kind.name());
        }
    }

    #[test]
    fn traces_produce_distinct_populations() {
        let hp = WorkloadModel::new(TraceKind::Hp).generate(1000, 5);
        let msn = WorkloadModel::new(TraceKind::Msn).generate(1000, 5);
        assert_ne!(hp.files, msn.files);
    }

    #[test]
    fn eecs_is_write_heavier_than_msn() {
        let msn = WorkloadModel::new(TraceKind::Msn).generate(4000, 5);
        let eecs = WorkloadModel::new(TraceKind::Eecs).generate(4000, 5);
        let ratio = |pop: &crate::generator::MetadataPopulation| {
            let r: u128 = pop.files.iter().map(|f| f.read_bytes as u128).sum();
            let w: u128 = pop.files.iter().map(|f| f.write_bytes as u128).sum();
            r as f64 / (r + w) as f64
        };
        let msn_r = ratio(&msn);
        let eecs_r = ratio(&eecs);
        assert!(
            msn_r > eecs_r,
            "MSN read share {msn_r} should exceed EECS {eecs_r}"
        );
    }

    #[test]
    fn durations_follow_trace_windows() {
        let msn_cfg = WorkloadModel::new(TraceKind::Msn).generator_config(100, 1);
        assert_eq!(msn_cfg.duration, 3600.0 * 6.0);
        let hp_cfg = WorkloadModel::new(TraceKind::Hp).generator_config(100, 1);
        assert_eq!(hp_cfg.duration, 86_400.0 * 7.0);
    }
}
