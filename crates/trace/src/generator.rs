//! Synthetic metadata population with planted semantic clusters.
//!
//! The evaluation needs file populations in which "correlated files" are
//! an objective fact: the generator plants `G` latent clusters — think
//! "the output files of one simulation campaign" or "one user's photo
//! imports" — whose members share correlated sizes, timestamps, I/O
//! volumes and process ids, plus a background of uncorrelated files.
//! The ground-truth cluster id is recorded on each record for test
//! assertions but is never shown to the system under test; recall in the
//! experiments is always measured against exhaustive search, exactly as
//! the paper does (§5.4.2).

use crate::distributions::{sample_clamped_normal, sample_log_normal, Zipf};
use crate::metadata::FileMetadata;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a synthetic metadata population.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Total number of files.
    pub n_files: usize,
    /// Number of planted semantic clusters.
    pub n_clusters: usize,
    /// Fraction of files that belong to some cluster (rest are
    /// background noise). In real traces correlation is strong — the
    /// paper cites ≥ 80% inter-file access correlation (§1.1).
    pub clustered_fraction: f64,
    /// Trace duration in seconds (timestamps are drawn inside it).
    pub duration: f64,
    /// Mean of ln(size) for the log-normal size distribution.
    pub size_mu: f64,
    /// Std-dev of ln(size).
    pub size_sigma: f64,
    /// Zipf exponent for file popularity (access counts).
    pub popularity_exponent: f64,
    /// Number of distinct user accounts.
    pub n_users: u32,
    /// Number of distinct processes.
    pub n_procs: u32,
    /// RNG seed — every population is fully reproducible.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_files: 10_000,
            n_clusters: 60,
            clustered_fraction: 0.8,
            duration: 86_400.0 * 7.0,
            size_mu: 9.5,    // median ≈ 13 KB
            size_sigma: 2.5, // heavy tail into GBs
            popularity_exponent: 1.0,
            n_users: 200,
            n_procs: 64,
            seed: 0x5eed,
        }
    }
}

/// Centroid of one planted cluster in generation space.
#[derive(Clone, Debug)]
struct ClusterProfile {
    size_mu: f64,
    ctime_center: f64,
    ctime_spread: f64,
    mtime_lag: f64,
    rw_ratio: f64,
    /// Cluster-typical access count (campaign files share popularity —
    /// the paper cites up to 80% inter-file access correlation, §1.1).
    popularity: f64,
    /// Cluster-typical I/O volume multiplier.
    io_intensity: f64,
    proc_id: u32,
    owner: u32,
    dir: String,
}

/// A generated population of file metadata.
#[derive(Clone, Debug)]
pub struct MetadataPopulation {
    /// All file records, `file_id` equal to the index.
    pub files: Vec<FileMetadata>,
    /// The configuration that produced the population.
    pub config: GeneratorConfig,
}

impl MetadataPopulation {
    /// Generates a population from the configuration (deterministic in
    /// `config.seed`).
    pub fn generate(config: GeneratorConfig) -> Self {
        assert!(config.n_files > 0, "generate: need at least one file");
        assert!(
            (0.0..=1.0).contains(&config.clustered_fraction),
            "generate: clustered_fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_clusters = config.n_clusters.max(1);

        // Cluster profiles: a campaign has a characteristic file size,
        // a burst of creation times, a read/write personality, one
        // dominant process, one owner, one directory.
        let profiles: Vec<ClusterProfile> = (0..n_clusters)
            .map(|c| ClusterProfile {
                size_mu: config.size_mu + sample_clamped_normal(&mut rng, 0.0, 2.0, -4.0, 4.0),
                ctime_center: rng.gen::<f64>() * config.duration,
                ctime_spread: config.duration * (0.002 + rng.gen::<f64>() * 0.02),
                mtime_lag: rng.gen::<f64>() * config.duration * 0.05,
                rw_ratio: rng.gen::<f64>(),
                popularity: sample_log_normal(&mut rng, 2.0, 1.0).clamp(1.0, 1e5),
                io_intensity: sample_log_normal(&mut rng, 0.0, 1.0).clamp(1e-3, 1e3),
                proc_id: rng.gen_range(0..config.n_procs),
                owner: rng.gen_range(0..config.n_users),
                dir: format!("/data/campaign_{c:04}"),
            })
            .collect();

        let popularity = Zipf::new(config.n_files as u64, config.popularity_exponent);
        let mut files = Vec::with_capacity(config.n_files);
        for id in 0..config.n_files {
            let clustered = rng.gen::<f64>() < config.clustered_fraction;
            let cluster = clustered.then(|| rng.gen_range(0..n_clusters) as u32);
            let file = Self::generate_file(
                id as u64,
                cluster,
                cluster.map(|c| &profiles[c as usize]),
                &config,
                &popularity,
                &mut rng,
            );
            files.push(file);
        }
        Self { files, config }
    }

    fn generate_file(
        id: u64,
        cluster: Option<u32>,
        profile: Option<&ClusterProfile>,
        cfg: &GeneratorConfig,
        popularity: &Zipf,
        rng: &mut StdRng,
    ) -> FileMetadata {
        // Popularity rank drives access counts (Zipf, rank 1 hottest).
        // Background files draw Zipf popularity; clustered files share
        // their campaign's typical popularity (with per-file jitter), so
        // behavioral attributes are semantically correlated too.
        let access_count = match profile {
            Some(p) => {
                (p.popularity * sample_log_normal(rng, 0.0, 0.25)).clamp(1.0, 100_000.0) as u32
            }
            None => {
                let rank = popularity.sample(rng);
                ((cfg.n_files as f64 / rank as f64).sqrt().ceil() as u32).clamp(1, 100_000)
            }
        };

        let (size, ctime, mtime, proc_id, owner, dir, rw_ratio) = match profile {
            Some(p) => {
                let size = sample_log_normal(rng, p.size_mu, 0.4).clamp(1.0, 1e13) as u64;
                let ctime =
                    sample_clamped_normal(rng, p.ctime_center, p.ctime_spread, 0.0, cfg.duration);
                let mtime = (ctime + rng.gen::<f64>() * p.mtime_lag).min(cfg.duration);
                // Process/owner mostly the campaign's, occasionally not.
                let proc_id = if rng.gen::<f64>() < 0.95 {
                    p.proc_id
                } else {
                    rng.gen_range(0..cfg.n_procs)
                };
                let owner = if rng.gen::<f64>() < 0.9 {
                    p.owner
                } else {
                    rng.gen_range(0..cfg.n_users)
                };
                (
                    size,
                    ctime,
                    mtime,
                    proc_id,
                    owner,
                    p.dir.clone(),
                    p.rw_ratio,
                )
            }
            None => {
                let size =
                    sample_log_normal(rng, cfg.size_mu, cfg.size_sigma).clamp(1.0, 1e13) as u64;
                let ctime = rng.gen::<f64>() * cfg.duration;
                let mtime = ctime + rng.gen::<f64>() * (cfg.duration - ctime);
                (
                    size,
                    ctime,
                    mtime,
                    rng.gen_range(0..cfg.n_procs),
                    rng.gen_range(0..cfg.n_users),
                    format!("/home/user_{:03}", rng.gen_range(0..cfg.n_users)),
                    rng.gen::<f64>(),
                )
            }
        };

        // Clustered files are re-read shortly after their campaign
        // writes them; background files any time later.
        let atime = match profile {
            Some(_) => (mtime + rng.gen::<f64>() * cfg.duration * 0.05).min(cfg.duration),
            None => mtime + rng.gen::<f64>() * (cfg.duration - mtime).max(0.0),
        };
        let intensity = match profile {
            Some(p) => p.io_intensity * sample_log_normal(rng, 0.0, 0.2),
            None => rng.gen::<f64>(),
        };
        let io_total = (size as f64 * access_count as f64 * intensity).min(1e15);
        let read_bytes = (io_total * rw_ratio) as u64;
        let write_bytes = (io_total * (1.0 - rw_ratio)) as u64;

        FileMetadata {
            file_id: id,
            name: format!("file_{id:08}"),
            dir,
            owner,
            size,
            ctime,
            mtime,
            atime,
            read_bytes,
            write_bytes,
            access_count,
            proc_id,
            truth_cluster: cluster,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when empty (never, for a generated population).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Partitions file ids round-robin by id across `n_units` storage
    /// units — the namespace-agnostic initial placement a conventional
    /// system would use before semantic reorganization.
    pub fn round_robin_placement(&self, n_units: usize) -> Vec<Vec<u64>> {
        assert!(n_units > 0);
        let mut units = vec![Vec::new(); n_units];
        for f in &self.files {
            units[(f.file_id as usize) % n_units].push(f.file_id);
        }
        units
    }

    /// Per-dimension `[min, max]` bounds of the projected attribute
    /// space — used to construct query workloads inside the domain.
    pub fn attr_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let d = crate::metadata::ATTR_DIMS;
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for f in &self.files {
            for (i, v) in f.attr_vector().into_iter().enumerate() {
                lo[i] = lo[i].min(v);
                hi[i] = hi[i].max(v);
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartstore_linalg_test_helpers::*;

    /// Minimal local helpers (no external dep): mean of a slice.
    mod smartstore_linalg_test_helpers {
        pub fn mean(xs: &[f64]) -> f64 {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    fn small_pop() -> MetadataPopulation {
        MetadataPopulation::generate(GeneratorConfig {
            n_files: 2000,
            n_clusters: 10,
            seed: 99,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_pop();
        let b = small_pop();
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_pop();
        let b = MetadataPopulation::generate(GeneratorConfig {
            n_files: 2000,
            n_clusters: 10,
            seed: 100,
            ..GeneratorConfig::default()
        });
        assert_ne!(a.files, b.files);
    }

    #[test]
    fn clustered_fraction_honored() {
        let pop = small_pop();
        let clustered = pop
            .files
            .iter()
            .filter(|f| f.truth_cluster.is_some())
            .count();
        let frac = clustered as f64 / pop.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "clustered fraction {frac}");
    }

    #[test]
    fn cluster_members_share_attributes() {
        let pop = small_pop();
        // For each cluster with >= 5 members, intra-cluster ctime spread
        // must be far below the global spread.
        let global: Vec<f64> = pop.files.iter().map(|f| f.ctime).collect();
        let global_mean = mean(&global);
        let global_var = mean(
            &global
                .iter()
                .map(|&x| (x - global_mean).powi(2))
                .collect::<Vec<_>>(),
        );
        let mut checked = 0;
        for c in 0..10u32 {
            let members: Vec<f64> = pop
                .files
                .iter()
                .filter(|f| f.truth_cluster == Some(c))
                .map(|f| f.ctime)
                .collect();
            if members.len() < 5 {
                continue;
            }
            let m = mean(&members);
            let v = mean(&members.iter().map(|&x| (x - m).powi(2)).collect::<Vec<_>>());
            assert!(
                v < global_var * 0.25,
                "cluster {c} ctime variance {v} not much below global {global_var}"
            );
            checked += 1;
        }
        assert!(checked >= 5, "too few populated clusters to validate");
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let pop = small_pop();
        let mut sizes: Vec<u64> = pop.files.iter().map(|f| f.size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        let p99 = sizes[sizes.len() * 99 / 100] as f64;
        assert!(
            p99 > median * 50.0,
            "p99 {p99} should dwarf median {median}"
        );
    }

    #[test]
    fn timestamps_ordered_and_in_domain() {
        let pop = small_pop();
        let d = pop.config.duration;
        for f in &pop.files {
            assert!(f.ctime >= 0.0 && f.ctime <= d);
            assert!(f.mtime >= f.ctime && f.mtime <= d, "mtime before ctime");
            assert!(
                f.atime >= f.mtime && f.atime <= d + 1e-9,
                "atime before mtime"
            );
        }
    }

    #[test]
    fn round_robin_covers_all_files() {
        let pop = small_pop();
        let units = pop.round_robin_placement(7);
        assert_eq!(units.len(), 7);
        let total: usize = units.iter().map(|u| u.len()).sum();
        assert_eq!(total, pop.len());
        // Balanced within one file.
        let min = units.iter().map(|u| u.len()).min().unwrap();
        let max = units.iter().map(|u| u.len()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn attr_bounds_enclose_all_vectors() {
        let pop = small_pop();
        let (lo, hi) = pop.attr_bounds();
        for f in &pop.files {
            for (i, v) in f.attr_vector().into_iter().enumerate() {
                assert!(lo[i] <= v && v <= hi[i]);
            }
        }
    }

    #[test]
    fn access_counts_zipf_skewed() {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: 5000,
            seed: 3,
            ..GeneratorConfig::default()
        });
        let mut counts: Vec<u32> = pop.files.iter().map(|f| f.access_count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = counts[..500].iter().map(|&c| c as u64).sum();
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert!(
            top_decile as f64 / total as f64 > 0.3,
            "top 10% of files should absorb a large share of accesses"
        );
    }
}
