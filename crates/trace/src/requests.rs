//! Request-stream generation: the dynamic half of a trace.
//!
//! Tables 1–3 count *requests* (HP: 94.7 M requests; MSN: 3.30 M reads,
//! 1.17 M writes; EECS: 4.44 M total operations), and the paper's
//! prefetching motivation rests on request-level correlation ("the
//! probability of inter-file access is found to be up to 80%", §1.1).
//! This module expands a metadata population into a timestamped request
//! stream consistent with each file's recorded access counts and
//! read/write mix, with the bursty inter-file locality the paper's
//! prefetching experiments rely on: consecutive requests preferentially
//! stay inside the same semantic cluster.

use crate::generator::MetadataPopulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One file-system operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Metadata-only access (stat/open) — the operation class that
    /// dominates file systems ("metadata-based transactions … account
    /// for over 50% of all file system operations", §1).
    Meta,
}

/// A single timestamped request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Seconds since trace start.
    pub time: f64,
    /// Target file.
    pub file_id: u64,
    /// Operation class.
    pub op: OpKind,
    /// Bytes moved (0 for metadata operations).
    pub bytes: u64,
}

/// Configuration for request-stream expansion.
#[derive(Clone, Debug)]
pub struct RequestGenConfig {
    /// Total requests to generate.
    pub n_requests: usize,
    /// Probability that the next request stays in the same semantic
    /// cluster as the previous one (the paper's inter-file access
    /// correlation; ~0.8 per §1.1).
    pub locality: f64,
    /// Fraction of requests that are metadata-only operations.
    pub meta_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RequestGenConfig {
    fn default() -> Self {
        Self {
            n_requests: 10_000,
            locality: 0.8,
            meta_fraction: 0.5,
            seed: 0xacce55,
        }
    }
}

/// A generated request stream.
#[derive(Clone, Debug)]
pub struct RequestStream {
    /// Requests in non-decreasing time order.
    pub requests: Vec<Request>,
}

impl RequestStream {
    /// Expands `pop` into a request stream.
    ///
    /// File selection is popularity-weighted (files with higher recorded
    /// `access_count` receive proportionally more requests) with
    /// cluster-sticky transitions; read/write split follows each file's
    /// recorded byte ratios.
    pub fn generate(pop: &MetadataPopulation, cfg: &RequestGenConfig) -> Self {
        assert!(!pop.files.is_empty(), "RequestStream: empty population");
        assert!(
            (0.0..=1.0).contains(&cfg.locality),
            "locality must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.meta_fraction),
            "meta_fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Cumulative popularity for weighted sampling.
        let weights: Vec<f64> = pop.files.iter().map(|f| f.access_count as f64).collect();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        let total = acc;

        // Cluster membership lists for sticky transitions.
        let mut cluster_members: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for (i, f) in pop.files.iter().enumerate() {
            if let Some(c) = f.truth_cluster {
                cluster_members.entry(c).or_default().push(i);
            }
        }

        let duration = pop.config.duration;
        let mut requests = Vec::with_capacity(cfg.n_requests);
        let mut prev: Option<usize> = None;
        let dt = duration / cfg.n_requests.max(1) as f64;
        for i in 0..cfg.n_requests {
            let idx = match prev {
                Some(p) if rng.gen::<f64>() < cfg.locality => {
                    // Stay in the previous file's cluster when it has one.
                    match pop.files[p].truth_cluster {
                        Some(c) => {
                            let members = &cluster_members[&c];
                            members[rng.gen_range(0..members.len())]
                        }
                        None => weighted_pick(&cumulative, total, &mut rng),
                    }
                }
                _ => weighted_pick(&cumulative, total, &mut rng),
            };
            prev = Some(idx);
            let f = &pop.files[idx];
            let roll = rng.gen::<f64>();
            let (op, bytes) = if roll < cfg.meta_fraction {
                (OpKind::Meta, 0)
            } else {
                let rw_total = (f.read_bytes + f.write_bytes).max(1);
                let read_share = f.read_bytes as f64 / rw_total as f64;
                if rng.gen::<f64>() < read_share {
                    (
                        OpKind::Read,
                        1 + f.read_bytes / f.access_count.max(1) as u64,
                    )
                } else {
                    (
                        OpKind::Write,
                        1 + f.write_bytes / f.access_count.max(1) as u64,
                    )
                }
            };
            requests.push(Request {
                time: i as f64 * dt + rng.gen::<f64>() * dt,
                file_id: f.file_id,
                op,
                bytes,
            });
        }
        Self { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// `(reads, writes, meta)` operation counts.
    pub fn op_mix(&self) -> (usize, usize, usize) {
        let mut r = 0;
        let mut w = 0;
        let mut m = 0;
        for q in &self.requests {
            match q.op {
                OpKind::Read => r += 1,
                OpKind::Write => w += 1,
                OpKind::Meta => m += 1,
            }
        }
        (r, w, m)
    }

    /// Fraction of consecutive request pairs that target the same
    /// semantic cluster (the measured inter-file correlation).
    pub fn cluster_stickiness(&self, pop: &MetadataPopulation) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let cluster_of = |id: u64| pop.files[id as usize].truth_cluster;
        let mut same = 0usize;
        let mut pairs = 0usize;
        for w in self.requests.windows(2) {
            let (a, b) = (cluster_of(w[0].file_id), cluster_of(w[1].file_id));
            if let (Some(a), Some(b)) = (a, b) {
                pairs += 1;
                if a == b {
                    same += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            same as f64 / pairs as f64
        }
    }
}

fn weighted_pick(cumulative: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let target = rng.gen::<f64>() * total;
    cumulative
        .partition_point(|&c| c < target)
        .min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    fn pop() -> MetadataPopulation {
        MetadataPopulation::generate(GeneratorConfig {
            n_files: 1000,
            n_clusters: 10,
            clustered_fraction: 0.9,
            seed: 71,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn stream_has_requested_size_and_order() {
        let p = pop();
        let s = RequestStream::generate(&p, &RequestGenConfig::default());
        assert_eq!(s.len(), 10_000);
        for w in s.requests.windows(2) {
            assert!(w[0].time <= w[1].time, "requests must be time-ordered");
        }
        assert!(s.requests.iter().all(|r| (r.file_id as usize) < p.len()));
    }

    #[test]
    fn meta_fraction_respected() {
        let p = pop();
        let s = RequestStream::generate(
            &p,
            &RequestGenConfig {
                meta_fraction: 0.5,
                n_requests: 20_000,
                ..Default::default()
            },
        );
        let (_, _, m) = s.op_mix();
        let frac = m as f64 / s.len() as f64;
        assert!(
            (frac - 0.5).abs() < 0.02,
            "metadata ops should be ~50% of operations (paper §1), got {frac}"
        );
    }

    #[test]
    fn locality_controls_cluster_stickiness() {
        let p = pop();
        let sticky = RequestStream::generate(
            &p,
            &RequestGenConfig {
                locality: 0.8,
                seed: 1,
                ..Default::default()
            },
        );
        let loose = RequestStream::generate(
            &p,
            &RequestGenConfig {
                locality: 0.0,
                seed: 1,
                ..Default::default()
            },
        );
        let hs = sticky.cluster_stickiness(&p);
        let hl = loose.cluster_stickiness(&p);
        assert!(
            hs > 0.7,
            "80% locality should yield ~0.8 stickiness, got {hs}"
        );
        assert!(hs > hl + 0.3, "sticky {hs} vs loose {hl}");
    }

    #[test]
    fn popular_files_receive_more_requests() {
        let p = pop();
        let s = RequestStream::generate(
            &p,
            &RequestGenConfig {
                locality: 0.0,
                n_requests: 30_000,
                ..Default::default()
            },
        );
        let mut counts = vec![0usize; p.len()];
        for r in &s.requests {
            counts[r.file_id as usize] += 1;
        }
        // Compare the top-popularity decile against the bottom decile.
        let mut by_pop: Vec<usize> = (0..p.len()).collect();
        by_pop.sort_by_key(|&i| std::cmp::Reverse(p.files[i].access_count));
        let top: usize = by_pop[..100].iter().map(|&i| counts[i]).sum();
        let bottom: usize = by_pop[p.len() - 100..].iter().map(|&i| counts[i]).sum();
        assert!(
            top > bottom * 3,
            "popularity weighting: top decile {top} vs bottom {bottom}"
        );
    }

    #[test]
    fn reads_and_writes_follow_file_ratios() {
        let p = pop();
        let s = RequestStream::generate(
            &p,
            &RequestGenConfig {
                meta_fraction: 0.0,
                n_requests: 20_000,
                ..Default::default()
            },
        );
        let (r, w, m) = s.op_mix();
        assert_eq!(m, 0);
        assert!(
            r > 0 && w > 0,
            "both op kinds present ({r} reads, {w} writes)"
        );
        // Byte counts attached to data ops.
        assert!(s
            .requests
            .iter()
            .all(|q| q.bytes > 0 || q.op == OpKind::Meta));
    }

    #[test]
    fn deterministic_under_seed() {
        let p = pop();
        let a = RequestStream::generate(&p, &RequestGenConfig::default());
        let b = RequestStream::generate(&p, &RequestGenConfig::default());
        assert_eq!(a.requests, b.requests);
    }
}
