//! Trace Intensifying Factor (TIF) scale-up.
//!
//! §5.1: "a trace is decomposed into sub-traces. We add a unique
//! sub-trace ID to all files to intentionally increase the working set.
//! The start time of all sub-traces is set to zero so that they are
//! replayed concurrently. The chronological order among all requests
//! within a sub-trace is faithfully preserved. The combined trace
//! contains the same histogram of file system calls as the original one
//! but presents a heavier workload."
//!
//! Two artifacts come out of this module: the arithmetic scale-up of the
//! nominal statistics (what Tables 1–3 actually print) and the concrete
//! scale-up of a generated population (what the query experiments run
//! against).

use crate::generator::MetadataPopulation;
use crate::metadata::FileMetadata;
use crate::workloads::{NominalStats, TraceKind, WorkloadModel};

/// Nominal statistics scaled by a TIF — one column of Tables 1–3.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaledNominal {
    /// The trace being scaled.
    pub kind: TraceKind,
    /// The intensifying factor applied.
    pub tif: u32,
    /// Original stats.
    pub original: NominalStats,
    /// Scaled stats (every count multiplied by `tif`; durations scale
    /// too because sub-traces replayed concurrently multiply offered
    /// load per unit time — the paper's Table 2 reports 600 hours for
    /// TIF=100 × 6 hours).
    pub scaled: NominalStats,
}

/// Scales a workload model's nominal statistics by `tif` (the pure
/// arithmetic of Tables 1–3).
pub fn scale_nominal(model: &WorkloadModel, tif: u32) -> ScaledNominal {
    let f = tif as f64;
    let n = &model.nominal;
    let mul = |x: Option<f64>| x.map(|v| v * f);
    let mul_u = |x: Option<u64>| x.map(|v| v * tif as u64);
    ScaledNominal {
        kind: model.kind,
        tif,
        original: n.clone(),
        scaled: NominalStats {
            requests_m: mul(n.requests_m),
            active_users: mul_u(n.active_users),
            user_accounts: mul_u(n.user_accounts),
            active_files_m: mul(n.active_files_m),
            total_files_m: mul(n.total_files_m),
            reads_m: mul(n.reads_m),
            writes_m: mul(n.writes_m),
            read_gb: mul(n.read_gb),
            write_gb: mul(n.write_gb),
            duration_hours: mul(n.duration_hours),
            total_ops_m: mul(n.total_ops_m),
        },
    }
}

/// A concretely scaled-up population: `tif` sub-traces replayed
/// concurrently.
#[derive(Clone, Debug)]
pub struct ScaledTrace {
    /// All file records across sub-traces; `file_id`s are re-assigned to
    /// stay unique.
    pub files: Vec<FileMetadata>,
    /// TIF used.
    pub tif: u32,
    /// Files per sub-trace.
    pub sub_trace_len: usize,
}

/// Concretely scales up a population by `tif`: each sub-trace is a copy
/// of the original with a unique sub-trace id woven into file identity
/// (ids, names, directories) while timestamps are preserved — all
/// sub-traces start at zero and replay concurrently, exactly as §5.1
/// prescribes.
///
/// # Panics
/// If `tif == 0`.
pub fn scale_up(pop: &MetadataPopulation, tif: u32) -> ScaledTrace {
    assert!(tif > 0, "scale_up: TIF must be positive");
    let n = pop.files.len();
    let mut files = Vec::with_capacity(n * tif as usize);
    for sub in 0..tif {
        for f in &pop.files {
            let mut g = f.clone();
            g.file_id = sub as u64 * n as u64 + f.file_id;
            g.name = format!("st{sub:03}_{}", f.name);
            g.dir = format!("/st{sub:03}{}", f.dir);
            // Distinct sub-traces must not merge into one semantic
            // cluster: offset the truth label namespace.
            g.truth_cluster = f
                .truth_cluster
                .map(|c| sub * pop.config.n_clusters as u32 + c);
            files.push(g);
        }
    }
    ScaledTrace {
        files,
        tif,
        sub_trace_len: n,
    }
}

impl ScaledTrace {
    /// Total files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Checks the paper's invariant: the per-sub-trace histogram of any
    /// attribute matches the original's (same shape, heavier workload).
    /// Returns the per-sub-trace counts of files with `ctime` in the
    /// lower half of the domain — equal across sub-traces by
    /// construction.
    pub fn half_domain_histogram(&self, duration: f64) -> Vec<usize> {
        (0..self.tif as usize)
            .map(|sub| {
                self.files[sub * self.sub_trace_len..(sub + 1) * self.sub_trace_len]
                    .iter()
                    .filter(|f| f.ctime < duration / 2.0)
                    .count()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn table1_hp_scaled_values() {
        let m = WorkloadModel::new(TraceKind::Hp);
        let s = scale_nominal(&m, 80);
        // Table 1, TIF=80 column.
        assert_eq!(s.scaled.requests_m, Some(7576.0));
        assert_eq!(s.scaled.active_users, Some(2560));
        assert_eq!(s.scaled.user_accounts, Some(16560));
        assert!((s.scaled.active_files_m.unwrap() - 77.52).abs() < 1e-9);
        assert_eq!(s.scaled.total_files_m, Some(320.0));
    }

    #[test]
    fn table2_msn_scaled_values() {
        let m = WorkloadModel::new(TraceKind::Msn);
        let s = scale_nominal(&m, 100);
        // Table 2, TIF=100 column.
        assert_eq!(s.scaled.total_files_m, Some(125.0));
        assert!((s.scaled.reads_m.unwrap() - 330.0).abs() < 1e-9);
        assert!((s.scaled.writes_m.unwrap() - 117.0).abs() < 1e-9);
        assert_eq!(s.scaled.duration_hours, Some(600.0));
        assert!((s.scaled.total_ops_m.unwrap() - 447.0).abs() < 1e-9);
    }

    #[test]
    fn table3_eecs_scaled_values() {
        let m = WorkloadModel::new(TraceKind::Eecs);
        let s = scale_nominal(&m, 150);
        // Table 3, TIF=150 column.
        assert!((s.scaled.reads_m.unwrap() - 69.0).abs() < 1e-9);
        assert_eq!(s.scaled.read_gb, Some(765.0));
        assert!((s.scaled.writes_m.unwrap() - 100.05).abs() < 1e-6);
        assert_eq!(s.scaled.write_gb, Some(1365.0));
        assert!((s.scaled.total_ops_m.unwrap() - 666.0).abs() < 1e-9);
    }

    fn tiny_pop() -> MetadataPopulation {
        MetadataPopulation::generate(GeneratorConfig {
            n_files: 100,
            n_clusters: 4,
            seed: 7,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn scale_up_multiplies_files() {
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 5);
        assert_eq!(scaled.len(), 500);
        assert_eq!(scaled.tif, 5);
    }

    #[test]
    fn file_ids_unique_after_scale_up() {
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 8);
        let mut ids: Vec<u64> = scaled.files.iter().map(|f| f.file_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn sub_trace_ids_in_names() {
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 3);
        assert!(scaled.files[0].name.starts_with("st000_"));
        assert!(scaled.files[100].name.starts_with("st001_"));
        assert!(scaled.files[200].name.starts_with("st002_"));
    }

    #[test]
    fn timestamps_preserved_per_sub_trace() {
        // "The start time of all sub-traces is set to zero" — each copy
        // keeps the original timestamps (concurrent replay).
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 4);
        for sub in 0..4usize {
            for (i, orig) in pop.files.iter().enumerate() {
                let copy = &scaled.files[sub * 100 + i];
                assert_eq!(copy.ctime, orig.ctime);
                assert_eq!(copy.mtime, orig.mtime);
            }
        }
    }

    #[test]
    fn histogram_identical_across_sub_traces() {
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 6);
        let h = scaled.half_domain_histogram(pop.config.duration);
        assert_eq!(h.len(), 6);
        assert!(
            h.windows(2).all(|w| w[0] == w[1]),
            "histograms differ: {h:?}"
        );
    }

    #[test]
    fn truth_clusters_disjoint_across_sub_traces() {
        let pop = tiny_pop();
        let scaled = scale_up(&pop, 2);
        let c0: Vec<u32> = scaled.files[..100]
            .iter()
            .filter_map(|f| f.truth_cluster)
            .collect();
        let c1: Vec<u32> = scaled.files[100..]
            .iter()
            .filter_map(|f| f.truth_cluster)
            .collect();
        assert!(
            c0.iter().all(|c| !c1.contains(c)),
            "cluster label collision"
        );
    }

    #[test]
    #[should_panic]
    fn zero_tif_panics() {
        scale_up(&tiny_pop(), 0);
    }
}
