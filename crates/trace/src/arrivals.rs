//! Open-loop arrival processes for load generation.
//!
//! A closed-loop driver (send, wait for the reply, send again) hides
//! overload: when the server slows down, the driver slows down with it
//! and the measured latency stays flat — the classic coordinated-
//! omission trap. An *open-loop* driver fixes the arrival schedule in
//! advance and holds to it regardless of how the server is doing, so
//! queueing delay shows up in the latency distribution where it
//! belongs.
//!
//! [`ArrivalSchedule::generate`] produces such a schedule: exponential
//! inter-arrivals at a fixed mean rate, optionally modulated by a
//! two-state burst process (bursts arrive faster, gaps slower, with the
//! state dwelling over a geometric number of arrivals) whose rates are
//! balanced so the *time-averaged* rate still equals the configured
//! target. The schedule is a pure function of its config — same seed,
//! same bytes, regardless of how many threads later replay it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of an open-loop arrival schedule.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Mean arrival rate, requests per second. Must be positive and
    /// finite.
    pub rate_rps: f64,
    /// Number of arrivals to schedule.
    pub n_arrivals: usize,
    /// Burstiness knob: `0.0` is a plain Poisson process; larger values
    /// alternate bursts (rate × (1 + burstiness)) with lulls
    /// (rate ÷ (1 + burstiness)), time-balanced so the mean rate stays
    /// `rate_rps`.
    pub burstiness: f64,
    /// Mean arrivals per burst/lull episode (geometric dwell).
    pub mean_episode: usize,
    /// RNG seed; the schedule is a pure function of this config.
    pub seed: u64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        Self {
            rate_rps: 1_000.0,
            n_arrivals: 1_000,
            burstiness: 2.0,
            mean_episode: 32,
            seed: 0x00a1_10ad,
        }
    }
}

/// A fixed open-loop arrival schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalSchedule {
    /// Arrival offsets from schedule start, nanoseconds, non-decreasing.
    pub offsets_ns: Vec<u64>,
}

impl ArrivalSchedule {
    /// Generates the schedule. Deterministic: two calls with the same
    /// config yield bit-identical offsets.
    pub fn generate(cfg: &ArrivalConfig) -> Self {
        assert!(
            cfg.rate_rps.is_finite() && cfg.rate_rps > 0.0,
            "arrival rate must be positive and finite"
        );
        assert!(
            cfg.burstiness >= 0.0 && cfg.burstiness.is_finite(),
            "burstiness must be non-negative and finite"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Burst/lull rates scaled so their time-weighted harmonic mean
        // is exactly rate_rps: f and 1/f rates spend unequal time per
        // arrival, and the (f + 1/f)/2 factor re-centres the average.
        let f = 1.0 + cfg.burstiness;
        let balance = (f + 1.0 / f) / 2.0;
        let rate_hi = cfg.rate_rps * f * balance;
        let rate_lo = cfg.rate_rps / f * balance;

        let mean_episode = cfg.mean_episode.max(1) as f64;
        let mut offsets_ns = Vec::with_capacity(cfg.n_arrivals);
        let mut t_ns = 0f64;
        let mut in_burst = true;
        for _ in 0..cfg.n_arrivals {
            // Geometric dwell: leave the current state with probability
            // 1/mean_episode per arrival.
            if rng.gen::<f64>() < 1.0 / mean_episode {
                in_burst = !in_burst;
            }
            let rate = if in_burst { rate_hi } else { rate_lo };
            // Inverse-CDF exponential sample; (1 - u) keeps ln() away
            // from 0 since gen::<f64>() is in [0, 1).
            let u: f64 = rng.gen();
            let gap_s = -(1.0 - u).ln() / rate;
            t_ns += gap_s * 1e9;
            offsets_ns.push(t_ns as u64);
        }
        Self { offsets_ns }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets_ns.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.offsets_ns.is_empty()
    }

    /// Total schedule span in seconds (0 for empty schedules).
    pub fn span_s(&self) -> f64 {
        self.offsets_ns.last().map_or(0.0, |&t| t as f64 / 1e9)
    }

    /// Achieved mean rate over the schedule span.
    pub fn mean_rate_rps(&self) -> f64 {
        let span = self.span_s();
        if span <= 0.0 {
            return 0.0;
        }
        self.len() as f64 / span
    }

    /// Squared coefficient of variation of the inter-arrival gaps
    /// (1 for a Poisson process, larger for bursty ones).
    pub fn gap_cv2(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let gaps: Vec<f64> = self
            .offsets_ns
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        var / (mean * mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let cfg = ArrivalConfig {
            n_arrivals: 5_000,
            ..Default::default()
        };
        let a = ArrivalSchedule::generate(&cfg);
        let b = ArrivalSchedule::generate(&cfg);
        assert_eq!(a, b, "same config, bit-identical schedule");
        assert!(a.offsets_ns.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn mean_rate_tracks_target_even_when_bursty() {
        for burstiness in [0.0, 1.0, 4.0] {
            let cfg = ArrivalConfig {
                rate_rps: 20_000.0,
                n_arrivals: 40_000,
                burstiness,
                seed: 42,
                ..Default::default()
            };
            let s = ArrivalSchedule::generate(&cfg);
            let rate = s.mean_rate_rps();
            assert!(
                (rate - 20_000.0).abs() / 20_000.0 < 0.10,
                "burstiness {burstiness}: mean rate {rate:.0} should be ~20000"
            );
        }
    }

    #[test]
    fn burstiness_raises_gap_dispersion() {
        let poisson = ArrivalSchedule::generate(&ArrivalConfig {
            burstiness: 0.0,
            n_arrivals: 20_000,
            seed: 3,
            ..Default::default()
        });
        let bursty = ArrivalSchedule::generate(&ArrivalConfig {
            burstiness: 4.0,
            n_arrivals: 20_000,
            seed: 3,
            ..Default::default()
        });
        let (p, b) = (poisson.gap_cv2(), bursty.gap_cv2());
        assert!((p - 1.0).abs() < 0.2, "Poisson CV² ≈ 1, got {p:.2}");
        assert!(b > p + 1.0, "bursty CV² {b:.2} must exceed Poisson {p:.2}");
    }

    #[test]
    fn seeds_decorrelate_schedules() {
        let a = ArrivalSchedule::generate(&ArrivalConfig {
            seed: 1,
            ..Default::default()
        });
        let b = ArrivalSchedule::generate(&ArrivalConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }
}
