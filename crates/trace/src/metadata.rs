//! The file-metadata record and its attribute-space projection.
//!
//! SmartStore groups files by "multi-dimensional attributes" that are
//! either *physical* ("creation time and file size") or *behavioral*
//! ("process ID and access sequence") — §3.1.1. This module defines the
//! concrete record used throughout the reproduction and its projection
//! into the `D = 8` dimensional numeric attribute space that the LSI
//! pipeline, the semantic R-tree MBRs, and the baselines all share.

/// Number of numeric attribute dimensions (`D` in the paper).
pub const ATTR_DIMS: usize = 8;

/// The numeric attribute dimensions of a file's metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum AttributeKind {
    /// File size in bytes (log-normal across real systems).
    Size = 0,
    /// Creation time, seconds since trace start.
    CreationTime = 1,
    /// Last-modification time, seconds since trace start.
    ModificationTime = 2,
    /// Last-access time, seconds since trace start.
    AccessTime = 3,
    /// Cumulative bytes read.
    ReadBytes = 4,
    /// Cumulative bytes written.
    WriteBytes = 5,
    /// Number of accesses observed in the trace window.
    AccessCount = 6,
    /// Dominant accessing process id (behavioral attribute).
    ProcessId = 7,
}

impl AttributeKind {
    /// All dimensions in index order.
    pub const ALL: [AttributeKind; ATTR_DIMS] = [
        AttributeKind::Size,
        AttributeKind::CreationTime,
        AttributeKind::ModificationTime,
        AttributeKind::AccessTime,
        AttributeKind::ReadBytes,
        AttributeKind::WriteBytes,
        AttributeKind::AccessCount,
        AttributeKind::ProcessId,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AttributeKind::Size => "size",
            AttributeKind::CreationTime => "ctime",
            AttributeKind::ModificationTime => "mtime",
            AttributeKind::AccessTime => "atime",
            AttributeKind::ReadBytes => "read_bytes",
            AttributeKind::WriteBytes => "write_bytes",
            AttributeKind::AccessCount => "access_count",
            AttributeKind::ProcessId => "proc_id",
        }
    }

    /// Dimension index in attribute vectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One file's metadata record.
#[derive(Clone, Debug, PartialEq)]
pub struct FileMetadata {
    /// Unique file identifier.
    pub file_id: u64,
    /// Filename (used by point queries and Bloom filters).
    pub name: String,
    /// Directory path (namespace context; not an LSI dimension, kept for
    /// the conventional-file-system comparison).
    pub dir: String,
    /// Owning user id.
    pub owner: u32,
    /// File size in bytes.
    pub size: u64,
    /// Creation time (seconds since trace start).
    pub ctime: f64,
    /// Last modification time.
    pub mtime: f64,
    /// Last access time.
    pub atime: f64,
    /// Cumulative bytes read.
    pub read_bytes: u64,
    /// Cumulative bytes written.
    pub write_bytes: u64,
    /// Accesses observed in the trace window.
    pub access_count: u32,
    /// Dominant accessing process id.
    pub proc_id: u32,
    /// Ground-truth semantic cluster planted by the generator
    /// (`None` for background files). Never consulted by the system
    /// under test; used only to sanity-check grouping quality in tests.
    pub truth_cluster: Option<u32>,
}

impl FileMetadata {
    /// Projects the record onto the D-dimensional attribute space.
    ///
    /// The projection puts every dimension on a comparable scale so that
    /// Euclidean distance — the metric of the paper's semantic-
    /// correlation measure and of top-k queries — is not dominated by
    /// one unit system: sizes and byte counters are log-scaled
    /// (`ln(1 + x)`, raw bytes span nine orders of magnitude),
    /// timestamps are expressed in hours, and process ids are scaled
    /// down. This is the single canonical geometry shared by placement,
    /// routing MBRs, unit evaluation, query workloads and the baselines.
    pub fn attr_vector(&self) -> [f64; ATTR_DIMS] {
        [
            (1.0 + self.size as f64).ln(),
            self.ctime / 3600.0,
            self.mtime / 3600.0,
            self.atime / 3600.0,
            (1.0 + self.read_bytes as f64).ln(),
            (1.0 + self.write_bytes as f64).ln(),
            (1.0 + self.access_count as f64).ln(),
            self.proc_id as f64 / 8.0,
        ]
    }

    /// A single attribute's projected value.
    pub fn attr(&self, kind: AttributeKind) -> f64 {
        self.attr_vector()[kind.index()]
    }

    /// Projects onto a subset of dimensions (used by the automatic
    /// configuration of §2.4, which builds R-trees over attribute
    /// subsets).
    pub fn attr_subset(&self, dims: &[AttributeKind]) -> Vec<f64> {
        let mut out = Vec::with_capacity(dims.len());
        self.attr_subset_into(dims, &mut out);
        out
    }

    /// Appends the subset projection to `out` — the allocation-free
    /// form of [`Self::attr_subset`] for building whole-population
    /// tables (see [`attr_subset_table`]).
    pub fn attr_subset_into(&self, dims: &[AttributeKind], out: &mut Vec<f64>) {
        let full = self.attr_vector();
        out.extend(dims.iter().map(|&k| full[k.index()]));
    }
}

/// Flat row-major `files.len() × dims.len()` subset-projection table:
/// one allocation for the whole population instead of a `Vec` per
/// record. This is the SoA shape the LSI/placement pipeline consumes
/// (`Lsi::fit_flat`, `partition_tiled_flat`).
pub fn attr_subset_table(files: &[FileMetadata], dims: &[AttributeKind]) -> Vec<f64> {
    let mut table = Vec::with_capacity(files.len() * dims.len());
    for f in files {
        f.attr_subset_into(dims, &mut table);
    }
    table
}

/// Flat row-major `files.len() × ATTR_DIMS` full-projection table
/// (the [`attr_subset_table`] of all dimensions, skipping the subset
/// indirection).
pub fn attr_table(files: &[FileMetadata]) -> Vec<f64> {
    let mut table = Vec::with_capacity(files.len() * ATTR_DIMS);
    for f in files {
        table.extend_from_slice(&f.attr_vector());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FileMetadata {
        FileMetadata {
            file_id: 42,
            name: "exp_0042.dat".into(),
            dir: "/proj/sim".into(),
            owner: 7,
            size: 1 << 20,
            ctime: 100.0,
            mtime: 250.0,
            atime: 300.0,
            read_bytes: 4096,
            write_bytes: 0,
            access_count: 12,
            proc_id: 3,
            truth_cluster: Some(1),
        }
    }

    #[test]
    fn vector_has_d_dims() {
        assert_eq!(sample().attr_vector().len(), ATTR_DIMS);
        assert_eq!(AttributeKind::ALL.len(), ATTR_DIMS);
    }

    #[test]
    fn log_scaling_applied_to_bytes() {
        let m = sample();
        let v = m.attr_vector();
        assert!((v[0] - (1.0 + (1u64 << 20) as f64).ln()).abs() < 1e-12);
        assert_eq!(v[5], (1.0f64).ln()); // write_bytes = 0 ⇒ ln(1) = 0
    }

    #[test]
    fn times_projected_to_hours() {
        let v = sample().attr_vector();
        assert!((v[1] - 100.0 / 3600.0).abs() < 1e-12);
        assert!((v[2] - 250.0 / 3600.0).abs() < 1e-12);
        assert!((v[3] - 300.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn subset_projection_selects_dims() {
        let m = sample();
        let s = m.attr_subset(&[AttributeKind::ModificationTime, AttributeKind::Size]);
        assert_eq!(s.len(), 2);
        assert!((s[0] - 250.0 / 3600.0).abs() < 1e-12);
        assert_eq!(s[1], m.attr(AttributeKind::Size));
    }

    #[test]
    fn flat_tables_match_per_record_projections() {
        let files = vec![sample(), {
            let mut f = sample();
            f.file_id = 43;
            f.size = 12;
            f.proc_id = 5;
            f
        }];
        let dims = [AttributeKind::Size, AttributeKind::ProcessId];
        let table = attr_subset_table(&files, &dims);
        assert_eq!(table.len(), files.len() * dims.len());
        for (row, f) in table.chunks_exact(dims.len()).zip(&files) {
            assert_eq!(row, f.attr_subset(&dims).as_slice());
        }
        let full = attr_table(&files);
        assert_eq!(full.len(), files.len() * ATTR_DIMS);
        for (row, f) in full.chunks_exact(ATTR_DIMS).zip(&files) {
            assert_eq!(row, f.attr_vector().as_slice());
        }
    }

    #[test]
    fn kind_indexes_are_stable() {
        for (i, k) in AttributeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(AttributeKind::Size.name(), "size");
    }
}
