//! Workload substrate: file metadata, synthetic traces, and query
//! generators for the SmartStore evaluation.
//!
//! The paper evaluates on three proprietary traces — HP \[17\], MSN \[18\]
//! and EECS \[19\] — scaled up with a *Trace Intensifying Factor* (TIF).
//! Those traces are not redistributable, so this crate synthesizes
//! workloads whose aggregate statistics match the "Original" columns of
//! Tables 1–3 and whose attribute values exhibit the skew the paper's
//! grouping exploits (Zipf file popularity, log-normal sizes, bursty
//! temporal locality, and planted clusters of semantically correlated
//! files). See DESIGN.md §2 for the substitution rationale.
//!
//! Components:
//!
//! * [`metadata`] — the [`metadata::FileMetadata`] record and its
//!   projection to D-dimensional attribute vectors;
//! * [`distributions`] — Zipf / Gauss / log-normal samplers (the paper
//!   synthesizes complex queries under Uniform, Gauss and Zipf, §5.1);
//! * [`generator`] — cluster-planted synthetic metadata populations;
//! * [`workloads`] — the HP / MSN / EECS workload models with nominal
//!   statistics for Tables 1–3;
//! * [`scaleup`] — TIF scale-up (sub-trace decomposition + concurrent
//!   replay, §5.1);
//! * [`requests`] — timestamped request-stream expansion with the
//!   paper's inter-file access correlation (§1.1);
//! * [`query_gen`] — point / range / top-k query workload generation;
//! * [`arrivals`] — open-loop arrival schedules (Poisson or bursty)
//!   for driving a server at a fixed request rate.

pub mod arrivals;
pub mod distributions;
pub mod generator;
pub mod metadata;
pub mod query_gen;
pub mod requests;
pub mod scaleup;
pub mod workloads;

pub use arrivals::{ArrivalConfig, ArrivalSchedule};
pub use generator::{GeneratorConfig, MetadataPopulation};
pub use metadata::{attr_subset_table, attr_table, AttributeKind, FileMetadata, ATTR_DIMS};
pub use query_gen::{PointQuery, QueryDistribution, QueryWorkload, RangeQuery, TopKQuery};
pub use requests::{OpKind, Request, RequestGenConfig, RequestStream};
pub use scaleup::{scale_up, ScaledTrace};
pub use workloads::{TraceKind, WorkloadModel};
