//! Samplers for the distributions the paper's evaluation draws from.
//!
//! §5.1: "it is reasonable and justifiable for us to utilize random
//! numbers as the coordinates of queried points that are assumed to
//! follow either the Uniform, Gauss, or Zipf distribution". File
//! popularity and sizes additionally need Zipf and log-normal shapes to
//! match the skew reported by the trace studies the paper cites
//! (Filecules: 45% of requests visit 6.5% of files; Leung et al.: <1% of
//! clients issue 50% of requests).

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampling uses the rejection-inversion method of Hörmann & Derflinger,
/// which is O(1) per sample and exact for all `s > 0, s ≠ 1` as well as
/// `s = 1`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    dense: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// If `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf: n must be positive");
        assert!(s > 0.0, "Zipf: exponent must be positive");
        let h_x1 = Self::h_static(1.5, s) - 1.0;
        let h_n = Self::h_static(n as f64 + 0.5, s);
        let dense = Self::h_inv_static(h_x1, s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            dense,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// H(x) = ((x)^(1-s) - 1) / (1-s), or ln(x) for s = 1.
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_inv_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(x, self.s)
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.s)
    }

    /// Draws a rank in `1..=n`; rank 1 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.dense || u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// Standard normal via Box–Muller (rand 0.8's core has no Gaussian).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_standard_normal(rng)
}

/// Log-normal: `exp(N(mu, sigma))` — the canonical file-size shape.
pub fn sample_log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

/// Normal clamped into `[lo, hi]` (the paper's Gauss query coordinates
/// must stay inside the attribute domain).
pub fn sample_clamped_normal<R: Rng>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    sample_normal(rng, mean, std_dev).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1001];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(
            counts[1] > counts[10] && counts[10] > counts[100],
            "zipf must be monotone in popularity: {} {} {}",
            counts[1],
            counts[10],
            counts[100]
        );
        // Rank-1 frequency for s=1, n=1000: 1/H(1000) ≈ 0.133.
        let f1 = counts[1] as f64 / 50_000.0;
        assert!((f1 - 0.133).abs() < 0.02, "rank-1 frequency {f1}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(50, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn zipf_n_one_always_one() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_heavy_tail_vs_light_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let heavy = Zipf::new(10_000, 1.5);
        let light = Zipf::new(10_000, 0.5);
        let n = 20_000;
        let heavy_top10 = (0..n).filter(|_| heavy.sample(&mut rng) <= 10).count();
        let light_top10 = (0..n).filter(|_| light.sample(&mut rng) <= 10).count();
        assert!(
            heavy_top10 > light_top10 * 5,
            "s=1.5 must concentrate far more mass on top ranks ({heavy_top10} vs {light_top10})"
        );
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| sample_log_normal(&mut rng, 10.0, 2.0))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > median * 2.0,
            "log-normal mean ≫ median ({mean} vs {median})"
        );
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = sample_clamped_normal(&mut rng, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn zipf_zero_n_panics() {
        Zipf::new(0, 1.0);
    }
}
