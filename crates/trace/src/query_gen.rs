//! Complex-query workload generation.
//!
//! §5.1: "we use a synthetic approach to generating complex queries
//! within the multidimensional attribute space … a range query is formed
//! by points along multiple attribute dimensions and a top-k query must
//! specify the multi-dimensional coordinate of a given point and the k
//! value … utilize random numbers as the coordinates of queried points
//! that are assumed to follow either the Uniform, Gauss, or Zipf
//! distribution."
//!
//! The generators here draw query coordinates under those three
//! distributions inside a population's attribute bounds, and compute the
//! *ideal* answer sets by exhaustive scan so recall can be measured
//! exactly as the paper defines it (§5.4.2).

use crate::distributions::{sample_clamped_normal, Zipf};
use crate::generator::MetadataPopulation;
use crate::metadata::{AttributeKind, FileMetadata, ATTR_DIMS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Coordinate distribution for synthetic queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryDistribution {
    /// Coordinates uniform over each attribute's domain.
    Uniform,
    /// Coordinates normal around the domain center (σ = domain/6).
    Gauss,
    /// Coordinates Zipf-skewed toward attribute values of popular files.
    Zipf,
}

impl QueryDistribution {
    /// All three distributions, in the paper's order.
    pub const ALL: [QueryDistribution; 3] = [
        QueryDistribution::Uniform,
        QueryDistribution::Gauss,
        QueryDistribution::Zipf,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryDistribution::Uniform => "Uniform",
            QueryDistribution::Gauss => "Gauss",
            QueryDistribution::Zipf => "Zipf",
        }
    }
}

/// A multi-dimensional range query with its ideal answer.
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// Per-dimension lower bounds (projected attribute space).
    pub lo: Vec<f64>,
    /// Per-dimension upper bounds.
    pub hi: Vec<f64>,
    /// File ids satisfying all constraints (exhaustive scan).
    pub ideal: Vec<u64>,
}

/// A top-k query with its ideal answer.
#[derive(Clone, Debug)]
pub struct TopKQuery {
    /// Query point (projected attribute space).
    pub point: Vec<f64>,
    /// Number of neighbours requested.
    pub k: usize,
    /// The k nearest file ids by Euclidean distance (exhaustive scan).
    pub ideal: Vec<u64>,
}

/// A filename point query.
#[derive(Clone, Debug)]
pub struct PointQuery {
    /// Queried filename.
    pub name: String,
    /// The id of the file if it exists.
    pub expected: Option<u64>,
}

/// A batch of synthetic queries over one population.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    /// Range queries.
    pub ranges: Vec<RangeQuery>,
    /// Top-k queries.
    pub topks: Vec<TopKQuery>,
    /// Point queries.
    pub points: Vec<PointQuery>,
    /// The distribution the coordinates were drawn from.
    pub distribution: QueryDistribution,
}

/// Builder for query workloads.
#[derive(Clone, Debug)]
pub struct QueryGenConfig {
    /// Number of range queries.
    pub n_range: usize,
    /// Number of top-k queries.
    pub n_topk: usize,
    /// Number of point queries.
    pub n_point: usize,
    /// `k` for top-k queries (the paper uses k = 8 in Fig. 10 and
    /// Tables 5–6).
    pub k: usize,
    /// Fraction of each attribute's domain a range query spans
    /// (per-dimension width ratio).
    pub range_width: f64,
    /// Which attribute dimensions a range query constrains; the rest are
    /// unconstrained. The paper's example range query (§5.1) constrains
    /// exactly three attributes — last-revision time, read volume and
    /// write volume — which is the default here.
    pub range_dims: Vec<AttributeKind>,
    /// Fraction of point queries probing files that do not exist.
    pub point_miss_fraction: f64,
    /// Coordinate distribution.
    pub distribution: QueryDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            n_range: 100,
            n_topk: 100,
            n_point: 100,
            k: 8,
            range_width: 0.05,
            range_dims: vec![
                AttributeKind::ModificationTime,
                AttributeKind::ReadBytes,
                AttributeKind::WriteBytes,
            ],
            point_miss_fraction: 0.1,
            distribution: QueryDistribution::Zipf,
            seed: 0xbeef,
        }
    }
}

impl QueryWorkload {
    /// Generates a workload over `pop` with exhaustively computed ideal
    /// answers.
    pub fn generate(pop: &MetadataPopulation, cfg: &QueryGenConfig) -> Self {
        assert!(!pop.files.is_empty(), "QueryWorkload: empty population");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (lo_b, hi_b) = pop.attr_bounds();
        let popularity = Zipf::new(pop.files.len() as u64, 1.0);

        let ranges = (0..cfg.n_range)
            .map(|_| {
                let center =
                    sample_point(pop, cfg.distribution, &lo_b, &hi_b, &popularity, &mut rng);
                // Constrain only the configured dimensions; the rest of
                // the box spans the whole attribute domain.
                let (lo, hi): (Vec<f64>, Vec<f64>) = (0..ATTR_DIMS)
                    .map(|d| {
                        if cfg.range_dims.iter().any(|k| k.index() == d) {
                            let half = (hi_b[d] - lo_b[d]) * cfg.range_width * 0.5;
                            (center[d] - half, center[d] + half)
                        } else {
                            (lo_b[d] - 1.0, hi_b[d] + 1.0)
                        }
                    })
                    .unzip();
                let ideal = pop
                    .files
                    .iter()
                    .filter(|f| in_range(f, &lo, &hi))
                    .map(|f| f.file_id)
                    .collect();
                RangeQuery { lo, hi, ideal }
            })
            .collect();

        let topks = (0..cfg.n_topk)
            .map(|_| {
                let point =
                    sample_point(pop, cfg.distribution, &lo_b, &hi_b, &popularity, &mut rng);
                let ideal = exhaustive_topk(&pop.files, &point, cfg.k);
                TopKQuery {
                    point,
                    k: cfg.k,
                    ideal,
                }
            })
            .collect();

        let points = (0..cfg.n_point)
            .map(|_| {
                if rng.gen::<f64>() < cfg.point_miss_fraction {
                    PointQuery {
                        name: format!("ghost_{:08}", rng.gen::<u32>()),
                        expected: None,
                    }
                } else {
                    let rank = popularity.sample(&mut rng) as usize - 1;
                    let f = &pop.files[rank % pop.files.len()];
                    PointQuery {
                        name: f.name.clone(),
                        expected: Some(f.file_id),
                    }
                }
            })
            .collect();

        Self {
            ranges,
            topks,
            points,
            distribution: cfg.distribution,
        }
    }
}

fn in_range(f: &FileMetadata, lo: &[f64], hi: &[f64]) -> bool {
    f.attr_vector()
        .iter()
        .zip(lo.iter().zip(hi))
        .all(|(&v, (&l, &h))| l <= v && v <= h)
}

/// Exhaustive k-NN over the population (the recall ground truth).
pub fn exhaustive_topk(files: &[FileMetadata], point: &[f64], k: usize) -> Vec<u64> {
    let mut scored: Vec<(u64, f64)> = files
        .iter()
        .map(|f| {
            let d = f
                .attr_vector()
                .iter()
                .zip(point)
                .map(|(&a, &q)| (a - q) * (a - q))
                .sum::<f64>();
            (f.file_id, d)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored.into_iter().map(|(id, _)| id).collect()
}

fn sample_point(
    pop: &MetadataPopulation,
    dist: QueryDistribution,
    lo: &[f64],
    hi: &[f64],
    popularity: &Zipf,
    rng: &mut StdRng,
) -> Vec<f64> {
    match dist {
        QueryDistribution::Uniform => (0..ATTR_DIMS)
            .map(|d| lo[d] + rng.gen::<f64>() * (hi[d] - lo[d]))
            .collect(),
        QueryDistribution::Gauss => (0..ATTR_DIMS)
            .map(|d| {
                let mean = 0.5 * (lo[d] + hi[d]);
                let sd = (hi[d] - lo[d]) / 6.0;
                sample_clamped_normal(rng, mean, sd, lo[d], hi[d])
            })
            .collect(),
        QueryDistribution::Zipf => {
            // Query near a popular file's attributes with small jitter —
            // "files are mutually associated with a higher degree" under
            // Zipf (§5.4.2 discussion of Fig. 10).
            let rank = popularity.sample(rng) as usize - 1;
            let base = pop.files[rank % pop.files.len()].attr_vector();
            (0..ATTR_DIMS)
                .map(|d| {
                    let jitter = (hi[d] - lo[d]) * 0.01 * (rng.gen::<f64>() - 0.5);
                    (base[d] + jitter).clamp(lo[d], hi[d])
                })
                .collect()
        }
    }
}

/// Recall of an answer set against the ideal set:
/// `|T(q) ∩ A(q)| / |T(q)|` (§5.4.2).
pub fn recall(ideal: &[u64], actual: &[u64]) -> f64 {
    if ideal.is_empty() {
        return 1.0;
    }
    let hit = ideal.iter().filter(|id| actual.contains(id)).count();
    hit as f64 / ideal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    fn pop() -> MetadataPopulation {
        MetadataPopulation::generate(GeneratorConfig {
            n_files: 1000,
            n_clusters: 8,
            seed: 21,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn workload_sizes_match_config() {
        let p = pop();
        let w = QueryWorkload::generate(&p, &QueryGenConfig::default());
        assert_eq!(w.ranges.len(), 100);
        assert_eq!(w.topks.len(), 100);
        assert_eq!(w.points.len(), 100);
    }

    #[test]
    fn range_ideals_are_correct_by_construction() {
        let p = pop();
        let w = QueryWorkload::generate(
            &p,
            &QueryGenConfig {
                n_range: 20,
                ..Default::default()
            },
        );
        for q in &w.ranges {
            for f in &p.files {
                let inside = in_range(f, &q.lo, &q.hi);
                assert_eq!(inside, q.ideal.contains(&f.file_id));
            }
        }
    }

    #[test]
    fn topk_ideal_has_k_members_sorted_by_distance() {
        let p = pop();
        let w = QueryWorkload::generate(
            &p,
            &QueryGenConfig {
                n_topk: 10,
                k: 8,
                ..Default::default()
            },
        );
        for q in &w.topks {
            assert_eq!(q.ideal.len(), 8);
            // Verify monotone distance.
            let d = |id: u64| {
                let f = &p.files[id as usize];
                f.attr_vector()
                    .iter()
                    .zip(&q.point)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
            };
            for w2 in q.ideal.windows(2) {
                assert!(d(w2[0]) <= d(w2[1]) + 1e-9);
            }
        }
    }

    #[test]
    fn point_queries_mix_hits_and_misses() {
        let p = pop();
        let w = QueryWorkload::generate(
            &p,
            &QueryGenConfig {
                n_point: 200,
                point_miss_fraction: 0.3,
                ..Default::default()
            },
        );
        let misses = w.points.iter().filter(|q| q.expected.is_none()).count();
        assert!(
            (30..90).contains(&misses),
            "misses {misses} out of 200 at 30%"
        );
    }

    #[test]
    fn zipf_queries_hit_denser_regions_than_uniform() {
        let p = pop();
        let mk = |dist| {
            QueryWorkload::generate(
                &p,
                &QueryGenConfig {
                    n_range: 150,
                    distribution: dist,
                    seed: 4,
                    ..Default::default()
                },
            )
        };
        let zipf_hits: usize = mk(QueryDistribution::Zipf)
            .ranges
            .iter()
            .map(|q| q.ideal.len())
            .sum();
        let unif_hits: usize = mk(QueryDistribution::Uniform)
            .ranges
            .iter()
            .map(|q| q.ideal.len())
            .sum();
        assert!(
            zipf_hits > unif_hits,
            "zipf queries target populated space: {zipf_hits} vs {unif_hits}"
        );
    }

    #[test]
    fn gauss_coordinates_concentrate_centrally() {
        let p = pop();
        let (lo, hi) = p.attr_bounds();
        let w = QueryWorkload::generate(
            &p,
            &QueryGenConfig {
                n_topk: 300,
                distribution: QueryDistribution::Gauss,
                seed: 9,
                ..Default::default()
            },
        );
        // Dimension 1 (ctime): most Gauss draws must land in the middle
        // third of the domain.
        let mid_lo = lo[1] + (hi[1] - lo[1]) / 3.0;
        let mid_hi = lo[1] + 2.0 * (hi[1] - lo[1]) / 3.0;
        let central = w
            .topks
            .iter()
            .filter(|q| q.point[1] >= mid_lo && q.point[1] <= mid_hi)
            .count();
        assert!(central > 200, "only {central}/300 Gauss points central");
    }

    #[test]
    fn recall_definition() {
        assert_eq!(recall(&[1, 2, 3, 4], &[1, 2]), 0.5);
        assert_eq!(recall(&[], &[1]), 1.0);
        assert_eq!(recall(&[5], &[]), 0.0);
        assert_eq!(recall(&[1, 2], &[2, 1, 9]), 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = pop();
        let a = QueryWorkload::generate(&p, &QueryGenConfig::default());
        let b = QueryWorkload::generate(&p, &QueryGenConfig::default());
        assert_eq!(a.ranges.len(), b.ranges.len());
        for (x, y) in a.ranges.iter().zip(&b.ranges) {
            assert_eq!(x.lo, y.lo);
            assert_eq!(x.ideal, y.ideal);
        }
    }
}
