//! Property tests for the workload substrate: generator invariants
//! under arbitrary configurations, scale-up structure, query-workload
//! consistency.

use proptest::prelude::*;
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{
    scale_up, GeneratorConfig, MetadataPopulation, QueryDistribution, QueryWorkload, ATTR_DIMS,
};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        10usize..400,   // n_files
        1usize..20,     // n_clusters
        0.0f64..=1.0,   // clustered_fraction
        1000.0f64..1e6, // duration
        any::<u64>(),   // seed
    )
        .prop_map(
            |(n_files, n_clusters, frac, duration, seed)| GeneratorConfig {
                n_files,
                n_clusters,
                clustered_fraction: frac,
                duration,
                seed,
                ..GeneratorConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_invariants_hold_for_any_config(cfg in config_strategy()) {
        let duration = cfg.duration;
        let n = cfg.n_files;
        let pop = MetadataPopulation::generate(cfg);
        prop_assert_eq!(pop.len(), n);
        for (i, f) in pop.files.iter().enumerate() {
            prop_assert_eq!(f.file_id, i as u64, "ids are dense");
            prop_assert!(f.ctime >= 0.0 && f.ctime <= duration);
            prop_assert!(f.mtime >= f.ctime - 1e-9);
            prop_assert!(f.mtime <= duration + 1e-9);
            prop_assert!(f.atime >= f.mtime - 1e-9);
            prop_assert!(f.size >= 1);
            prop_assert!(f.access_count >= 1);
            prop_assert!(f.attr_vector().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        let a = MetadataPopulation::generate(cfg.clone());
        let b = MetadataPopulation::generate(cfg);
        prop_assert_eq!(a.files, b.files);
    }

    #[test]
    fn scale_up_structure(tif in 1u32..8, n in 20usize..100, seed in any::<u64>()) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n,
            seed,
            ..GeneratorConfig::default()
        });
        let scaled = scale_up(&pop, tif);
        prop_assert_eq!(scaled.len(), n * tif as usize);
        // Unique ids and unique names.
        let mut ids: Vec<u64> = scaled.files.iter().map(|f| f.file_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), scaled.len());
        let mut names: Vec<&str> = scaled.files.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), scaled.len());
        // Histogram identical across sub-traces.
        let h = scaled.half_domain_histogram(pop.config.duration);
        prop_assert!(h.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn query_workload_ideals_are_sound(
        seed in any::<u64>(),
        dist_pick in 0usize..3,
        width in 0.01f64..0.3,
    ) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: 200,
            n_clusters: 5,
            seed,
            ..GeneratorConfig::default()
        });
        let w = QueryWorkload::generate(
            &pop,
            &QueryGenConfig {
                n_range: 10,
                n_topk: 10,
                n_point: 10,
                range_width: width,
                distribution: QueryDistribution::ALL[dist_pick],
                seed,
                ..Default::default()
            },
        );
        for q in &w.ranges {
            prop_assert_eq!(q.lo.len(), ATTR_DIMS);
            // Ideal = exactly the files inside the box.
            for f in &pop.files {
                let inside = f
                    .attr_vector()
                    .iter()
                    .zip(q.lo.iter().zip(&q.hi))
                    .all(|(&v, (&l, &h))| l <= v && v <= h);
                prop_assert_eq!(inside, q.ideal.contains(&f.file_id));
            }
        }
        for q in &w.topks {
            prop_assert_eq!(q.ideal.len(), q.k.min(pop.len()));
            // k-th ideal distance lower-bounds every non-member.
            let d = |id: u64| -> f64 {
                let f = &pop.files[id as usize];
                f.attr_vector().iter().zip(&q.point).map(|(&a, &b)| (a - b) * (a - b)).sum()
            };
            let worst = q.ideal.iter().map(|&i| d(i)).fold(0.0f64, f64::max);
            for f in &pop.files {
                if !q.ideal.contains(&f.file_id) {
                    prop_assert!(d(f.file_id) >= worst - 1e-9);
                }
            }
        }
        for q in &w.points {
            if let Some(id) = q.expected {
                prop_assert!(pop.files.iter().any(|f| f.file_id == id && f.name == q.name));
            } else {
                prop_assert!(pop.files.iter().all(|f| f.name != q.name));
            }
        }
    }
}
