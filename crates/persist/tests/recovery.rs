//! End-to-end persistence properties: a snapshotted + journaled system
//! reopened from disk must answer point, range and top-k queries
//! *identically* to the live system it mirrors, and a corrupted WAL
//! tail must be dropped cleanly with everything before it recovered.

#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use smartstore::versioning::Change;
use smartstore::QueryOptions;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_persist::{PersistError, SystemPersist as _};
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{
    FileMetadata, GeneratorConfig, MetadataPopulation, QueryDistribution, QueryWorkload,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "smartstore_recovery_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_system(n_files: usize, n_units: usize, seed: u64) -> SmartStoreSystem {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files,
        n_clusters: (n_units / 2).max(2),
        seed,
        ..GeneratorConfig::default()
    });
    SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), seed)
}

fn churn(files: &[FileMetadata], ops: &[(u8, u64, u64)]) -> Vec<Change> {
    ops.iter()
        .map(|&(kind, pick, salt)| {
            let base = &files[(pick as usize) % files.len()];
            match kind % 3 {
                0 => {
                    let mut f = base.clone();
                    f.file_id = 10_000_000 + salt;
                    f.name = format!("new_{salt}");
                    f.size = 1 + salt;
                    Change::Insert(f)
                }
                1 => Change::Delete(base.file_id),
                _ => {
                    let mut f = base.clone();
                    f.size = f.size.wrapping_mul(3).max(1);
                    f.mtime += 17.0;
                    Change::Modify(f)
                }
            }
        })
        .collect()
}

/// Runs the full query battery against both systems and asserts answer
/// equality (ids only — costs depend on accumulated state like cache
/// effects and are not part of the durability contract... they are
/// actually deterministic too, but ids are the correctness bar).
fn assert_query_equivalence(
    live: &mut SmartStoreSystem,
    reopened: &mut SmartStoreSystem,
    workload: &QueryWorkload,
) {
    for q in &workload.ranges {
        let a = live
            .query()
            .range(&q.lo, &q.hi, &QueryOptions::offline())
            .file_ids;
        let b = reopened
            .query()
            .range(&q.lo, &q.hi, &QueryOptions::offline())
            .file_ids;
        assert_eq!(a, b, "range answers diverged");
    }
    for q in &workload.topks {
        let a = live
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k))
            .file_ids;
        let b = reopened
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k))
            .file_ids;
        assert_eq!(a, b, "top-k answers diverged");
    }
    for q in &workload.points {
        let a = live.query().point(&q.name).file_ids;
        let b = reopened.query().point(&q.name).file_ids;
        assert_eq!(a, b, "point answers diverged for {}", q.name);
    }
}

fn workload_for(sys: &SmartStoreSystem, seed: u64) -> QueryWorkload {
    let pop = MetadataPopulation {
        files: sys.current_files(),
        config: GeneratorConfig::default(),
    };
    QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 12,
            n_topk: 12,
            n_point: 12,
            k: 8,
            range_width: 0.08,
            distribution: QueryDistribution::Uniform,
            seed,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: snapshot + journaled churn + reopen ⇒
    /// identical query answers.
    #[test]
    fn reopened_system_answers_identically(
        n_files in 150usize..400,
        n_units in 3usize..9,
        ops in prop::collection::vec((0u8..3, 0u64..100_000, 0u64..100_000), 20..120),
        seed in 0u64..1_000,
    ) {
        let dir = tmpdir("prop");
        let mut live = build_system(n_files, n_units, seed);
        let (mut store, _) = live.save_snapshot(&dir).unwrap();
        let base_files = live.current_files();
        for ch in churn(&base_files, &ops) {
            live.apply_journaled(&mut store, ch).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (mut reopened, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        prop_assert_eq!(report.dropped_tail_bytes, 0);
        let workload = workload_for(&live, seed ^ 0xabcd);
        assert_query_equivalence(&mut live, &mut reopened, &workload);

        // Structural statistics must also survive.
        let (a, b) = (live.stats(), reopened.stats());
        prop_assert_eq!(a.n_units, b.n_units);
        prop_assert_eq!(a.n_groups, b.n_groups);
        prop_assert_eq!(a.tree_height, b.tree_height);
        prop_assert_eq!(a.version_bytes, b.version_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// ≥1k journaled changes through snapshot + WAL + compaction, then a
/// full query battery — the deterministic heavyweight version of the
/// property above (the ISSUE's acceptance scenario at test scale; the
/// persistence benchmark runs it at 50k files).
#[test]
fn thousand_changes_then_reopen_matches() {
    let dir = tmpdir("thousand");
    let mut live = build_system(1200, 12, 42);
    let (mut store, _) = live.save_snapshot(&dir).unwrap();
    let base = live.current_files();
    let ops: Vec<(u8, u64, u64)> = (0..1000u64).map(|i| ((i % 3) as u8, i * 7919, i)).collect();
    for ch in churn(&base, &ops) {
        live.apply_journaled(&mut store, ch).unwrap();
    }
    store.sync().unwrap();
    drop(store);

    let (mut reopened, store2, _report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    // Changes may have been folded into newer snapshot generations by
    // compaction; what matters is the recovered answers.
    assert!(store2.generation() >= 1);
    let workload = workload_for(&live, 4242);
    assert_query_equivalence(&mut live, &mut reopened, &workload);
    let mut a = live.current_files();
    let mut b = reopened.current_files();
    a.sort_by_key(|f| f.file_id);
    b.sort_by_key(|f| f.file_id);
    assert_eq!(a, b, "file sets diverged after 1000 journaled changes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt-tail recovery: the torn final record is dropped; every
/// change before it — and the snapshot base — recovers.
#[test]
fn corrupt_tail_drops_only_last_record() {
    for corruption in ["truncate", "bitflip"] {
        let dir = tmpdir(&format!("tail_{corruption}"));
        let mut live = build_system(300, 5, 7);
        // Sync every frame so the prefix is durable by construction.
        live.cfg.persist.wal_sync_every = 1;
        let (mut store, _) = live.save_snapshot(&dir).unwrap();
        let base = live.current_files();
        let ops: Vec<(u8, u64, u64)> = (0..25u64).map(|i| ((i % 3) as u8, i * 31, i)).collect();
        let changes = churn(&base, &ops);
        for ch in &changes {
            live.apply_journaled(&mut store, ch.clone()).unwrap();
        }
        store.sync().unwrap();
        let wal_file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .expect("wal file exists");
        drop(store);

        // Corrupt the tail.
        let mut bytes = std::fs::read(&wal_file).unwrap();
        match corruption {
            "truncate" => {
                let n = bytes.len();
                bytes.truncate(n - 7);
            }
            _ => {
                let n = bytes.len();
                bytes[n - 2] ^= 0x20;
            }
        }
        std::fs::write(&wal_file, &bytes).unwrap();

        let (mut reopened, store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 24, "exactly the torn frame dropped");
        assert!(report.dropped_tail_bytes > 0);
        assert_eq!(
            store2.wal_frames(),
            24,
            "append resumes after the verified prefix"
        );

        // Expected state: snapshot + first 24 changes, replayed in
        // memory against an identically built system.
        let mut expected = build_system(300, 5, 7);
        expected.cfg.persist.wal_sync_every = 1;
        for ch in changes.iter().take(24) {
            expected.apply_change(ch.clone());
        }
        let workload = workload_for(&expected, 99);
        assert_query_equivalence(&mut expected, &mut reopened, &workload);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted snapshot must refuse to load loudly, not half-load.
#[test]
fn corrupt_snapshot_refuses_to_load() {
    let dir = tmpdir("badsnap");
    let mut live = build_system(200, 4, 3);
    let (store, _) = live.save_snapshot(&dir).unwrap();
    drop(store);
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .unwrap();
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(matches!(
        SmartStoreSystem::open_from_dir(&dir),
        Err(PersistError::Corrupt { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
