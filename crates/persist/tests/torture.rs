//! Crash-recovery torture harness over the fault-injecting VFS.
//!
//! The recovery invariant under test, for every fault point a change
//! stream can reach: inject the fault at the Nth I/O call, crash, and
//! reopen — `open` must never panic, and must yield either a typed
//! error or a system whose snapshot encoding is **bit-identical to
//! some prefix of the applied change stream**, with the prefix bounded
//! below by what was durably acknowledged (fsync honored) and above by
//! what was ever applied in memory.
//!
//! Everything runs on [`FaultVfs`] — an in-memory filesystem with
//! separate live/durable buffers — so the enumeration covers hundreds
//! of (fault kind × I/O index × crash-tail policy) cells in seconds
//! and is fully deterministic. Set `TORTURE_QUICK=1` (CI) to stride
//! the enumeration instead of visiting every cell.

#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_persist::{
    snapshot, wal, CrashTail, FaultKind, FaultPlan, FaultVfs, SystemPersist as _, WalWriter,
};
use smartstore_trace::{FileMetadata, GeneratorConfig, MetadataPopulation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Virtual directory inside the memfs; never touches the real disk.
const DIR: &str = "/torture";

fn quick() -> bool {
    std::env::var_os("TORTURE_QUICK").is_some()
}

fn build_system(n_files: usize, n_units: usize, seed: u64, sync_every: usize) -> SmartStoreSystem {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files,
        n_clusters: (n_units / 2).max(2),
        seed,
        ..GeneratorConfig::default()
    });
    let mut sys = SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), seed);
    sys.cfg.persist.wal_sync_every = sync_every;
    // Small enough that a ~30-change stream crosses several compactions
    // (delta and full), so faults land inside the two-phase install and
    // WAL hand-over paths, not just plain appends.
    sys.cfg.persist.wal_compact_bytes = 1536;
    sys.cfg.persist.max_delta_chain = 2;
    sys
}

fn churn(files: &[FileMetadata], ops: &[(u8, u64, u64)]) -> Vec<Change> {
    ops.iter()
        .map(|&(kind, pick, salt)| {
            let base = &files[(pick as usize) % files.len()];
            match kind % 3 {
                0 => {
                    let mut f = base.clone();
                    f.file_id = 10_000_000 + salt;
                    f.name = format!("new_{salt}");
                    f.size = 1 + salt;
                    Change::Insert(f)
                }
                1 => Change::Delete(base.file_id),
                _ => {
                    let mut f = base.clone();
                    f.size = f.size.wrapping_mul(3).max(1);
                    f.mtime += 17.0;
                    Change::Modify(f)
                }
            }
        })
        .collect()
}

fn fingerprint(sys: &SmartStoreSystem) -> Vec<u8> {
    snapshot::encode_snapshot(&sys.to_parts()).0
}

/// Shared starting point for an enumeration sweep: a snapshotted base
/// image in a pristine memfs, the change stream, the fingerprint of
/// every prefix of a fault-free journaled run, and how many I/O calls
/// that fault-free stream consumes (the fault-point universe).
struct Baseline {
    vfs: FaultVfs,
    changes: Vec<Change>,
    /// `prints[j]` = snapshot encoding after `j` fault-free applies.
    prints: Vec<Vec<u8>>,
    /// I/O calls a fault-free run of the stream performs (after open).
    stream_ops: u64,
    /// Memfs image after the full stream ran and the store was dropped
    /// cleanly — the substrate for open-time fault enumeration.
    end_vfs: FaultVfs,
}

fn baseline(sync_every: usize) -> Baseline {
    let dir = Path::new(DIR);
    let vfs = FaultVfs::new();
    let mut sys = build_system(140, 4, 0xC0FFEE, sync_every);
    let (store, _) = sys
        .save_snapshot_with(vfs.handle(), dir)
        .expect("baseline snapshot");
    drop(store);

    let files = sys.current_files();
    let ops: Vec<(u8, u64, u64)> = (0..30u64).map(|i| ((i % 3) as u8, i * 7919, i)).collect();
    let changes = churn(&files, &ops);

    // Fault-free oracle run over a fork: records the per-prefix
    // fingerprints every torture iteration is checked against, and the
    // total op count that bounds the fault-point enumeration.
    let ovfs = vfs.fork();
    let (mut osys, mut ostore, _) =
        SmartStoreSystem::open_from_dir_with(ovfs.handle(), dir).expect("baseline open");
    ovfs.reset_ops();
    let mut prints = vec![fingerprint(&osys)];
    for ch in &changes {
        osys.apply_journaled(&mut ostore, ch.clone())
            .expect("fault-free apply");
        prints.push(fingerprint(&osys));
    }
    let stream_ops = ovfs.ops();
    drop(ostore);

    Baseline {
        vfs,
        changes,
        prints,
        stream_ops,
        end_vfs: ovfs,
    }
}

/// One torture cell: open the base image, arm `kind` at I/O call `at`,
/// run the change stream until the first error, crash with `tail`,
/// reopen, and check the recovery invariant.
fn torture_once(base: &Baseline, kind: FaultKind, at: u64, tail: CrashTail, strict_acked: bool) {
    let dir = Path::new(DIR);
    let vfs = base.vfs.fork();
    let (mut sys, mut store, _) =
        SmartStoreSystem::open_from_dir_with(vfs.handle(), dir).expect("pre-fault open");
    vfs.reset_ops();
    vfs.set_plan(Some(FaultPlan {
        at,
        kind,
        sticky: false,
    }));

    let mut successes = 0usize;
    for ch in &base.changes {
        match sys.apply_journaled(&mut store, ch.clone()) {
            Ok(_) => successes += 1,
            Err(_) => break,
        }
    }

    vfs.crash(tail);
    drop(store); // post-crash: its Drop-sync is a no-op on the image

    let ctx = format!("kind {kind:?} at op {at} tail {tail:?} successes {successes}");
    let reopened = catch_unwind(AssertUnwindSafe(|| {
        SmartStoreSystem::open_from_dir_with(vfs.handle(), dir)
    }))
    .unwrap_or_else(|_| panic!("open panicked after crash ({ctx})"));

    match reopened {
        Ok((rec, _store, _report)) => {
            let fp = fingerprint(&rec);
            // First match bounds the prefix from above, last match from
            // below: no-op changes (e.g. deleting an absent id) can
            // make adjacent prefixes bit-identical.
            let lo = base
                .prints
                .iter()
                .position(|p| p == &fp)
                .unwrap_or_else(|| panic!("recovered state matches no stream prefix ({ctx})"));
            let hi = base.prints.iter().rposition(|p| p == &fp).unwrap();
            assert!(
                lo <= successes + 1,
                "recovered beyond anything applied: prefix {lo} > {} ({ctx})",
                successes + 1
            );
            // With fsync-per-frame and an honest disk, every
            // acknowledged apply must survive the crash.
            if strict_acked && kind != FaultKind::LyingFsync {
                assert!(
                    hi >= successes,
                    "acknowledged change lost: prefix {hi} < {successes} ({ctx})"
                );
            }
        }
        Err(_) => {
            // A typed error is within the invariant, but only a lying
            // fsync can fake out the atomic snapshot/manifest install;
            // every honest-disk fault must leave an openable image.
            assert!(
                kind == FaultKind::LyingFsync,
                "open failed after an honest-disk fault ({ctx})"
            );
        }
    }
}

fn stream_sweep(sync_every: usize, strict_acked: bool) {
    let base = baseline(sync_every);
    assert!(
        base.stream_ops > 40,
        "change stream too small to be interesting: {} ops",
        base.stream_ops
    );
    let stride = if quick() { 7 } else { 1 };
    let tail_stride = if quick() { 21 } else { 5 };
    let mut cells = 0u64;
    for kind in FaultKind::ALL {
        let mut at = 0;
        while at < base.stream_ops {
            torture_once(&base, kind, at, CrashTail::DropUnsynced, strict_acked);
            cells += 1;
            at += stride;
        }
        // Torn and lucky crash tails at strided fault points: these
        // vary how much unsynced data survives, which matters most
        // around short writes and lying fsyncs.
        for tail in [CrashTail::KeepHalf, CrashTail::KeepAll] {
            let mut at = 0;
            while at < base.stream_ops {
                torture_once(&base, kind, at, tail, strict_acked);
                cells += 1;
                at += tail_stride;
            }
        }
    }
    assert!(cells > 0);
}

/// Every I/O call of the change stream, times every fault kind, times
/// every crash-tail policy — with fsync after every frame, so every
/// acknowledged change must survive any honest-disk fault.
#[test]
fn stream_faults_sync_every_frame() {
    stream_sweep(1, true);
}

/// Same sweep with group-commit batching (sync every 4 frames): a
/// crash may drop the unsynced tail of a batch, so only the upper
/// bound (never recover more than was applied) is asserted.
#[test]
fn stream_faults_group_commit() {
    stream_sweep(4, false);
}

/// Open-time faults: arm every fault kind at every I/O call of the
/// recovery path itself (both transient and sticky), over the sealed
/// end-state image. Open must never panic — and after the fault
/// clears, a follow-up open must still succeed: partial recovery
/// actions (truncation, quarantine) never brick the store.
#[test]
fn open_time_faults_never_brick_recovery() {
    let base = baseline(1);
    let dir = Path::new(DIR);

    // How many I/O calls does a clean open of the end image take?
    let probe = base.end_vfs.fork();
    let _ = SmartStoreSystem::open_from_dir_with(probe.handle(), dir).expect("clean reopen");
    let open_ops = probe.ops();
    assert!(open_ops > 5, "open consumed only {open_ops} ops");

    let stride = if quick() { 5 } else { 1 };
    for kind in FaultKind::ALL {
        for sticky in [false, true] {
            let mut at = 0;
            while at < open_ops {
                let ctx = format!("kind {kind:?} at op {at} sticky {sticky}");
                let vfs = base.end_vfs.fork();
                vfs.set_plan(Some(FaultPlan { at, kind, sticky }));
                let first = catch_unwind(AssertUnwindSafe(|| {
                    SmartStoreSystem::open_from_dir_with(vfs.handle(), dir)
                }))
                .unwrap_or_else(|_| panic!("open panicked under fault ({ctx})"));
                if let Ok((rec, _, _)) = &first {
                    let fp = fingerprint(rec);
                    assert!(
                        base.prints.iter().any(|p| p == &fp),
                        "faulted open yielded a non-prefix state ({ctx})"
                    );
                }
                drop(first);

                // Fault gone (one-shots are spent; clear sticky plans):
                // recovery must be repeatable on whatever it left.
                vfs.set_plan(None);
                let (rec, _, _) = catch_unwind(AssertUnwindSafe(|| {
                    SmartStoreSystem::open_from_dir_with(vfs.handle(), dir)
                }))
                .unwrap_or_else(|_| panic!("follow-up open panicked ({ctx})"))
                .unwrap_or_else(|e| panic!("store bricked: follow-up open failed: {e} ({ctx})"));
                let fp = fingerprint(&rec);
                assert!(
                    base.prints.iter().any(|p| p == &fp),
                    "follow-up open yielded a non-prefix state ({ctx})"
                );
                at += stride;
            }
        }
    }
}

/// A failed `install_delta` poisons the store (satellite: the `.tmp`
/// artifacts are removed immediately), and a subsequent `open()` heals
/// it — the manifest still names the old chain and the sealed + active
/// WAL segments replay every acknowledged change.
#[test]
fn poisoned_install_heals_on_reopen() {
    let dir = Path::new(DIR);
    let vfs = FaultVfs::new();
    let mut sys = build_system(120, 4, 7, 1);
    let (mut store, _) = sys.save_snapshot_with(vfs.handle(), dir).expect("snapshot");

    let files = sys.current_files();
    let ops: Vec<(u8, u64, u64)> = (0..8u64).map(|i| ((i % 3) as u8, i * 31, i)).collect();
    for ch in churn(&files, &ops) {
        sys.apply_journaled(&mut store, ch.clone()).expect("apply");
    }

    // Cut a delta, then make its install fail at the first write.
    let cut = store
        .begin_delta_compaction(&mut sys)
        .expect("begin delta cut");
    vfs.set_plan(Some(FaultPlan {
        at: vfs.ops(),
        kind: FaultKind::IoError,
        sticky: true,
    }));
    let err = store.install_delta(cut.encode());
    assert!(err.is_err(), "install should fail under a dead disk");
    vfs.set_plan(None);
    assert!(store.is_poisoned(), "failed install must poison the store");

    // Satellite: no half-written artifacts stranded for the next sweep.
    let names = vfs.handle().list_dir(dir).expect("list dir");
    assert!(
        names.iter().all(|n| !n.ends_with(".tmp")),
        "stranded tmp artifacts after failed install: {names:?}"
    );

    // Poisoned stores refuse appends with a typed error, not a panic.
    assert!(sys.apply_journaled(&mut store, Change::Delete(1)).is_err());

    // Crash and reopen: every acknowledged change recovers.
    let live_print = fingerprint(&sys);
    vfs.crash(CrashTail::DropUnsynced);
    drop(store);
    let (rec, store2, _) =
        SmartStoreSystem::open_from_dir_with(vfs.handle(), dir).expect("heal on reopen");
    assert!(!store2.is_poisoned());
    assert_eq!(
        fingerprint(&rec),
        live_print,
        "healed store diverged from the acknowledged state"
    );
}

// ---------------------------------------------------------------------
// WAL-tail quarantine property
// ---------------------------------------------------------------------

/// Builds a sealed WAL segment in a fresh memfs and returns the vfs,
/// the segment path, and the byte offset after each frame (boundary 0
/// is the header).
fn build_segment(n_frames: usize, seed: u64) -> (FaultVfs, std::path::PathBuf, Vec<u64>) {
    let vfs = FaultVfs::new();
    let path = Path::new(DIR).join("wal-q.log");
    vfs.handle().create_dir_all(Path::new(DIR)).expect("mkdir");
    let sys = build_system(60, 3, seed, 1);
    let files = sys.current_files();
    let ops: Vec<(u8, u64, u64)> = (0..n_frames as u64)
        .map(|i| ((i % 3) as u8, i.wrapping_mul(seed | 1), i))
        .collect();
    let changes = churn(&files, &ops);
    let mut w = WalWriter::create(vfs.handle().as_ref(), &path, 1, 0).expect("create wal");
    let mut bounds = vec![wal::header_len()];
    for (i, ch) in changes.iter().enumerate() {
        w.append(i, ch).expect("append");
        bounds.push(w.bytes());
    }
    w.sync().expect("seal");
    drop(w);
    (vfs, path, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For ANY truncation point or bit flip past the header, replay +
    /// `quarantine_tail` salvages exactly the longest valid frame
    /// prefix and quarantines exactly the bytes after it.
    #[test]
    fn quarantine_salvages_longest_valid_prefix(
        n_frames in 3usize..10,
        seed in 0u64..500,
        pos_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        mode in 0u8..2,
    ) {
        let (vfs, path, bounds) = build_segment(n_frames, seed);
        let handle = vfs.handle();
        let len = handle.file_len(&path).expect("len");
        let header = wal::header_len();
        prop_assume!(len > header);

        // A corruption position in the frame region [header, len).
        let span = len - header;
        let pos = header + ((pos_frac * span as f64) as u64).min(span - 1);

        let (expect_good, corrupted_len) = if mode == 0 {
            // Truncate at `pos`: frames wholly inside survive.
            let mut f = handle.open_rw(&path).expect("open");
            f.set_len(pos).expect("truncate");
            f.sync().expect("sync");
            let good = *bounds.iter().filter(|&&b| b <= pos).max().unwrap();
            (good, pos)
        } else {
            // Flip one bit at `pos`: the frame containing it dies, and
            // the scan stops there (CRC catches any single-bit flip).
            prop_assert!(vfs.corrupt_durable(&path, pos as usize, 1 << flip_bit));
            let good = *bounds.iter().filter(|&&b| b <= pos).max().unwrap();
            (good, len)
        };
        let expect_frames = bounds.iter().position(|&b| b == expect_good).unwrap();
        let expect_dropped = corrupted_len - expect_good;

        let rep = wal::replay(handle.as_ref(), &path).expect("replay");
        prop_assert_eq!(rep.good_bytes, expect_good, "salvage point");
        prop_assert_eq!(rep.frames.len(), expect_frames, "salvaged frames");
        prop_assert_eq!(rep.torn.is_some(), expect_dropped > 0);

        let dropped = wal::quarantine_tail(handle.as_ref(), &path, &rep).expect("quarantine");
        prop_assert_eq!(dropped, expect_dropped, "quarantined byte count");

        let qpath = wal::quarantine_path(&path);
        if expect_dropped > 0 {
            let side = handle.read(&qpath).expect("quarantine side file");
            prop_assert_eq!(side.len() as u64, expect_dropped);
        } else {
            prop_assert!(!handle.exists(&qpath).expect("exists"));
        }

        // The salvaged log is clean and reusable.
        prop_assert_eq!(handle.file_len(&path).expect("len"), expect_good);
        let rep2 = wal::replay(handle.as_ref(), &path).expect("re-replay");
        prop_assert!(rep2.torn.is_none());
        prop_assert_eq!(rep2.frames.len(), expect_frames);
    }
}
