//! Backward compatibility with v2-format persisted images.
//!
//! `tests/fixtures/v2-store/` holds a small store directory written by
//! a v2-era build (manifest + base snapshot + one delta generation + a
//! WAL tail awaiting replay) together with `answers.txt`, the canonical
//! query-answer digest the v2 build computed over that state. The tests
//! here prove the hard compatibility promises:
//!
//! * the fixture opens cleanly on the current build,
//! * every recorded answer is reproduced **bit-identically** (ids and
//!   top-k distance bit patterns) after the open migrates the Bloom
//!   filters to the current hash family, and
//! * the next compaction rewrites the chain at the current format
//!   version, which then round-trips through a second open.
//!
//! The `regenerate_v2_fixture` test is the fixture's provenance: it can
//! only produce a valid fixture when compiled against a build whose
//! `FORMAT_VERSION` is 2, and asserts exactly that so it cannot
//! silently overwrite the committed v2 bytes with a newer format.

#![allow(clippy::disallowed_methods)] // tests may unwrap

use smartstore::versioning::Change;
use smartstore::{QueryOptions, SmartStoreConfig, SmartStoreSystem};
use smartstore_persist::SystemPersist as _;
use smartstore_trace::{GeneratorConfig, MetadataPopulation};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("v2-store")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("smartstore_v2compat_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Copies the committed fixture into a scratch directory: opening a
/// store appends to its WAL and sweeps orphans, and the committed bytes
/// must never change under test.
fn stage_fixture(tag: &str) -> PathBuf {
    let dst = tmpdir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
    dst
}

/// Canonical query-answer digest of a system: deterministic point,
/// range and top-k queries derived purely from the system's own state,
/// with f64 distances rendered as raw bit patterns. Byte-for-byte
/// equality of two digests means the two systems answer this probe
/// workload bit-identically.
fn answer_digest(sys: &SmartStoreSystem) -> String {
    let engine = sys.query();
    let opts = QueryOptions::offline();
    let mut names: Vec<String> = sys.current_files().into_iter().map(|f| f.name).collect();
    names.sort();
    names.dedup();
    let mut out = String::new();
    for name in names.iter().step_by(7).take(30) {
        out.push_str(&format!(
            "point {name} = {:?}\n",
            engine.point(name).file_ids
        ));
    }
    for name in ["never_written_a", "never_written_b", "zzz_missing_file"] {
        out.push_str(&format!(
            "point {name} = {:?}\n",
            engine.point(name).file_ids
        ));
    }
    for (i, u) in sys.units().iter().enumerate() {
        let c = u.centroid();
        let lo: Vec<f64> = c.iter().map(|x| x - 0.5).collect();
        let hi: Vec<f64> = c.iter().map(|x| x + 0.5).collect();
        out.push_str(&format!(
            "range {i} = {:?}\n",
            engine.range(&lo, &hi, &opts).file_ids
        ));
    }
    for (i, u) in sys.units().iter().enumerate().take(3) {
        let (scored, _) = engine.topk_scored(u.centroid(), &opts.with_k(8));
        let rendered: Vec<String> = scored
            .iter()
            .map(|&(id, d)| format!("{id}:{:016x}", d.to_bits()))
            .collect();
        out.push_str(&format!("topk {i} = [{}]\n", rendered.join(", ")));
    }
    out
}

/// Builds the fixture's system state and store directory. Kept in one
/// place so the committed `answers.txt` and the store bytes always come
/// from the same state.
fn build_fixture_store(dir: &Path) -> SmartStoreSystem {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 150,
        n_clusters: 6,
        seed: 42,
        ..GeneratorConfig::default()
    });
    let mut sys = SmartStoreSystem::build(pop.files, 10, SmartStoreConfig::default(), 42);
    let (mut store, _) = sys.save_snapshot(dir).unwrap();
    // Dirty a strict minority of units (a modify dirties at most the
    // source and destination unit) so compaction takes the delta path.
    let victims: Vec<_> = sys.units()[0].files()[..2].to_vec();
    for mut f in victims {
        f.size += 4096;
        f.access_count += 1;
        sys.apply_journaled(&mut store, Change::Modify(f)).unwrap();
    }
    let outcome = store.compact_incremental(&mut sys).unwrap();
    assert!(outcome.is_delta(), "fixture must exercise the delta chain");
    // Leave a WAL tail for replay: inserts, a delete, a rename.
    let mut extra = sys.units()[1].files()[0].clone();
    for i in 0..5u64 {
        let mut f = extra.clone();
        f.file_id = 900_000 + i;
        f.name = format!("v2_tail_file_{i}");
        f.size += i;
        sys.apply_journaled(&mut store, Change::Insert(f)).unwrap();
    }
    let doomed = sys.units()[2].files()[3].file_id;
    sys.apply_journaled(&mut store, Change::Delete(doomed))
        .unwrap();
    extra.name = "v2_renamed_file".into();
    extra.size += 1;
    sys.apply_journaled(&mut store, Change::Modify(extra))
        .unwrap();
    store.sync().unwrap();
    sys
}

/// Provenance generator for the committed fixture. Ignored in CI: it
/// refuses to run unless the build still writes format v2, so the
/// committed artifact can only ever be a genuine v2 image.
#[test]
#[ignore = "writes the committed v2 fixture; only valid on a v2-era build"]
fn regenerate_v2_fixture() {
    assert_eq!(
        smartstore_persist::codec::FORMAT_VERSION,
        2,
        "the v2 fixture must be generated by a build whose FORMAT_VERSION is 2"
    );
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sys = build_fixture_store(&dir);
    std::fs::write(dir.join("answers.txt"), answer_digest(&sys)).unwrap();
}

fn committed_answers() -> String {
    std::fs::read_to_string(fixture_dir().join("answers.txt")).unwrap()
}

/// Format version stamped in an artifact's header (bytes 8..10, after
/// the 8-byte magic).
fn artifact_version(path: &Path) -> u16 {
    let bytes = std::fs::read(path).unwrap();
    u16::from_le_bytes([bytes[8], bytes[9]])
}

/// Every `.snap` artifact (full or delta) currently in `dir`.
fn snap_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    out.sort();
    out
}

#[test]
fn v2_fixture_opens_migrates_and_answers_bit_identically() {
    let dir = stage_fixture("open");
    for snap in snap_files(&dir) {
        assert_eq!(artifact_version(&snap), 2, "{snap:?} must be a v2 artifact");
    }
    let (sys, _store, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    assert!(
        report.units_migrated > 0,
        "v2 MD5 filters must migrate to the configured family on open"
    );
    assert_eq!(report.units_migrated, sys.units().len());
    assert_eq!(report.deltas_folded, 1, "fixture carries one delta");
    assert!(report.replayed_frames >= 7, "fixture carries a WAL tail");
    for u in sys.units() {
        assert_eq!(u.bloom().family(), sys.cfg.bloom_family);
    }
    assert_eq!(
        answer_digest(&sys),
        committed_answers(),
        "migrated store must reproduce the v2 answers bit-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_fixture_compacts_to_v3_and_roundtrips() {
    let dir = stage_fixture("compact");
    let (mut sys, mut store, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    assert!(report.units_migrated > 0);
    // Migration marks every unit dirty, so the policy must choose a
    // full rewrite — the whole corpus gets re-persisted in v3.
    let outcome = store.compact_incremental(&mut sys).unwrap();
    assert!(!outcome.is_delta(), "post-migration compaction is full");
    drop(store);
    let snaps = snap_files(&dir);
    assert!(!snaps.is_empty());
    for snap in snaps {
        assert_eq!(
            artifact_version(&snap),
            3,
            "{snap:?} must be rewritten as v3"
        );
    }
    // The v3 image round-trips: no second migration, same answers.
    let (sys2, _store2, report2) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    assert_eq!(report2.units_migrated, 0, "v3 image must not re-migrate");
    assert_eq!(answer_digest(&sys2), committed_answers());
    assert_eq!(answer_digest(&sys2), answer_digest(&sys));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_md5_v3_store_is_not_migrated() {
    let dir = tmpdir("md5_v3");
    std::fs::create_dir_all(&dir).unwrap();
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 80,
        n_clusters: 4,
        seed: 7,
        ..GeneratorConfig::default()
    });
    let cfg = SmartStoreConfig {
        bloom_family: smartstore::HashFamily::Md5,
        ..SmartStoreConfig::default()
    };
    let mut sys = SmartStoreSystem::build(pop.files, 6, cfg, 7);
    let digest = answer_digest(&sys);
    let (store, _) = sys.save_snapshot(&dir).unwrap();
    drop(store);
    for snap in snap_files(&dir) {
        assert_eq!(artifact_version(&snap), 3);
    }
    let (sys2, _store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    assert_eq!(
        report.units_migrated, 0,
        "a store that opted into MD5 keeps MD5 filters"
    );
    for u in sys2.units() {
        assert_eq!(u.bloom().family(), smartstore::HashFamily::Md5);
    }
    assert_eq!(answer_digest(&sys2), digest);
    let _ = std::fs::remove_dir_all(&dir);
}
