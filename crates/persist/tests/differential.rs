//! Differential-snapshot properties: for *any* change stream, opening
//! a base + delta chain is bit-identical to opening a fresh full
//! snapshot of the same state, and a crash at every step boundary of
//! the two-phase compaction (cut → encode → install) leaves a
//! directory that recovers to exactly the live state.

#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_persist::{snapshot, SystemPersist as _};
use smartstore_trace::{FileMetadata, GeneratorConfig, MetadataPopulation};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "smartstore_differential_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_system(n_files: usize, n_units: usize, seed: u64) -> SmartStoreSystem {
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files,
        n_clusters: (n_units / 2).max(2),
        seed,
        ..GeneratorConfig::default()
    });
    SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), seed)
}

fn churn(files: &[FileMetadata], ops: &[(u8, u64, u64)]) -> Vec<Change> {
    ops.iter()
        .map(|&(kind, pick, salt)| {
            let base = &files[(pick as usize) % files.len()];
            match kind % 3 {
                0 => {
                    let mut f = base.clone();
                    f.file_id = 20_000_000 + salt;
                    f.name = format!("delta_{salt}");
                    f.size = 1 + salt;
                    Change::Insert(f)
                }
                1 => Change::Delete(base.file_id),
                _ => {
                    let mut f = base.clone();
                    f.size = f.size.wrapping_mul(3).max(1);
                    f.mtime += 23.0;
                    Change::Modify(f)
                }
            }
        })
        .collect()
}

/// The bit-identity fingerprint: the full-snapshot encoding of a
/// system's complete exported state.
fn fingerprint(sys: &SmartStoreSystem) -> Vec<u8> {
    snapshot::encode_snapshot(&sys.to_parts()).0
}

/// Recursive file copy of one store directory (staging crash states).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any change stream and any chain policy, the state recovered
    /// from base + deltas (+ WAL) is bit-identical to the state
    /// recovered from one fresh full snapshot of the live system.
    #[test]
    fn chain_open_is_bit_identical_to_full_snapshot_open(
        n_files in 150usize..350,
        n_units in 4usize..9,
        ops in prop::collection::vec((0u8..3, 0u64..100_000, 0u64..100_000), 30..140),
        max_chain in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let chain_dir = tmpdir("chain");
        let full_dir = tmpdir("full");
        let mut live = build_system(n_files, n_units, seed);
        // Aggressive compaction so real chains build up mid-stream.
        live.cfg.persist.wal_compact_bytes = 700;
        live.cfg.persist.max_delta_chain = max_chain;
        let (mut store, _) = live.save_snapshot(&chain_dir).unwrap();
        let base_files = live.current_files();
        for ch in churn(&base_files, &ops) {
            live.apply_journaled(&mut store, ch).unwrap();
        }
        store.sync().unwrap();
        let chain_len = store.delta_chain().len();
        prop_assert!(chain_len <= max_chain, "chain {chain_len} exceeds policy {max_chain}");
        drop(store);

        let (chain_sys, _, report) = SmartStoreSystem::open_from_dir(&chain_dir).unwrap();
        prop_assert_eq!(report.deltas_folded, chain_len);

        // Reference: one fresh full image of the same live state.
        let (full_store, _) = live.save_snapshot(&full_dir).unwrap();
        drop(full_store);
        let (full_sys, _, full_report) = SmartStoreSystem::open_from_dir(&full_dir).unwrap();
        prop_assert_eq!(full_report.deltas_folded, 0);

        let live_print = fingerprint(&live);
        prop_assert_eq!(&fingerprint(&chain_sys), &live_print, "chain open diverged from live");
        prop_assert_eq!(&fingerprint(&full_sys), &live_print, "full open diverged from live");
        let _ = std::fs::remove_dir_all(&chain_dir);
        let _ = std::fs::remove_dir_all(&full_dir);
    }
}

/// A crash at every step boundary of the two-phase compaction recovers
/// to exactly the live state. The install order is: seal old WAL →
/// create new WAL (cut) → encode → write delta (atomic) → flip
/// manifest → delete old WAL; the delta is therefore finalized *before*
/// the flip, and the simulated states below cover both sides of the
/// flip plus a torn delta temp file.
#[test]
fn crash_at_every_compaction_step_recovers_to_live_state() {
    let dir = tmpdir("crash_steps");
    let mut live = build_system(300, 6, 77);
    live.cfg.persist.wal_sync_every = 1;
    let (mut store, _) = live.save_snapshot(&dir).unwrap();
    let files = live.current_files();

    // Pre-cut churn.
    let pre: Vec<(u8, u64, u64)> = (0..12u64).map(|i| ((i % 3) as u8, i * 13, i)).collect();
    for ch in churn(&files, &pre) {
        live.apply_journaled(&mut store, ch).unwrap();
    }
    let cut = store.begin_delta_compaction(&mut live).unwrap();

    // Post-cut churn lands in the fresh segment while the delta is
    // still in flight.
    let post: Vec<(u8, u64, u64)> = (0..8u64)
        .map(|i| ((i % 3) as u8, i * 31, 100 + i))
        .collect();
    for ch in churn(&files, &post) {
        live.apply_journaled(&mut store, ch).unwrap();
    }
    store.sync().unwrap();

    // Crash state A — cut done, delta never encoded/installed: the
    // sealed old segment and the fresh one are both live.
    let state_a = tmpdir("state_a");
    copy_dir(&dir, &state_a);

    // The install will retire these; keep copies to stage the
    // intermediate states.
    let manifest_pre_flip = std::fs::read(dir.join("MANIFEST")).unwrap();
    let old_wal_name = "wal-00000001.log";
    let old_wal_bytes = std::fs::read(dir.join(old_wal_name)).unwrap();

    let encoded = cut.encode();
    store.install_delta(encoded).unwrap();
    store.sync().unwrap();
    assert_eq!(store.delta_chain(), &[2]);
    drop(store);

    // Crash state B — delta file written but manifest not yet flipped:
    // restore the pre-flip manifest and the old WAL alongside the
    // already-written delta.
    let state_b = tmpdir("state_b");
    copy_dir(&dir, &state_b);
    std::fs::write(state_b.join("MANIFEST"), &manifest_pre_flip).unwrap();
    std::fs::write(state_b.join(old_wal_name), &old_wal_bytes).unwrap();

    // Crash state C — manifest flipped but the old WAL segment never
    // deleted.
    let state_c = tmpdir("state_c");
    copy_dir(&dir, &state_c);
    std::fs::write(state_c.join(old_wal_name), &old_wal_bytes).unwrap();

    // Crash state D — a torn delta temp file from a crash mid-write,
    // on top of state A.
    let state_d = tmpdir("state_d");
    copy_dir(&state_a, &state_d);
    std::fs::write(state_d.join("delta-00000002.tmp"), b"torn partial delta").unwrap();

    let live_print = fingerprint(&live);
    for (name, state, expect_deltas) in [
        ("A: cut, no install", &state_a, 0usize),
        ("B: delta written, manifest not flipped", &state_b, 0),
        ("C: flipped, old WAL survives", &state_c, 1),
        ("D: torn delta temp", &state_d, 0),
    ] {
        let (recovered, store2, report) =
            SmartStoreSystem::open_from_dir(state).unwrap_or_else(|e| {
                panic!("crash state {name} failed to open: {e}");
            });
        assert_eq!(report.deltas_folded, expect_deltas, "state {name}");
        assert_eq!(
            fingerprint(&recovered),
            live_print,
            "state {name} diverged from the live system"
        );
        // Orphans must be gone after recovery.
        drop(store2);
        for e in std::fs::read_dir(state).unwrap() {
            let n = e.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !n.ends_with(".tmp"),
                "state {name}: temp orphan {n} not swept"
            );
        }
        let _ = std::fs::remove_dir_all(state);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disabling differential snapshots (`max_delta_chain = 0`) keeps the
/// pre-differential behavior: every compaction is a full rewrite and
/// no delta file ever appears.
#[test]
fn zero_max_chain_always_rewrites_in_full() {
    let dir = tmpdir("no_deltas");
    let mut live = build_system(250, 5, 55);
    live.cfg.persist.wal_compact_bytes = 400;
    live.cfg.persist.max_delta_chain = 0;
    let (mut store, _) = live.save_snapshot(&dir).unwrap();
    let files = live.current_files();
    let ops: Vec<(u8, u64, u64)> = (0..60u64).map(|i| ((i % 3) as u8, i * 7, i)).collect();
    for ch in churn(&files, &ops) {
        live.apply_journaled(&mut store, ch).unwrap();
    }
    assert!(store.generation() > 1, "compaction fired");
    assert!(store.delta_chain().is_empty());
    let any_delta = std::fs::read_dir(&dir).unwrap().any(|e| {
        e.unwrap()
            .file_name()
            .to_string_lossy()
            .starts_with("delta-")
    });
    assert!(!any_delta, "no delta files with max_delta_chain = 0");
    drop(store);
    let (recovered, _, _) = SmartStoreSystem::open_from_dir(&dir).unwrap();
    assert_eq!(fingerprint(&recovered), fingerprint(&live));
    let _ = std::fs::remove_dir_all(&dir);
}
