//! The append-only write-ahead log of metadata changes.
//!
//! A WAL file is the 8-byte magic followed by checksummed frames (the
//! record framing of [`crate::codec`]); each frame's payload is
//!
//! ```text
//! [seq: u64][group: u64][Change]
//! ```
//!
//! `seq` is contiguous from 0 within one log generation and `group`
//! tags the first-level semantic group the change lands in (§4.4's
//! version-per-group aggregation carried over to disk).
//!
//! Durability follows the group-commit pattern: frames are buffered and
//! the file is `fsync`ed every `sync_every` appends (1 = sync each
//! change). A crash can therefore tear the tail of the log — replay
//! tolerates exactly that: it scans until the first bad frame (torn
//! header, truncated payload, checksum mismatch, or sequence gap),
//! reports everything before it, and recovery truncates the bad tail
//! away before appending resumes.

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic prefix of WAL files.
pub const WAL_MAGIC: &[u8; 8] = b"SSWAL\x00\x00\x00";

/// One decoded log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct WalFrame {
    /// Position in the log (contiguous from 0 per generation).
    pub seq: u64,
    /// First-level group tag.
    pub group: NodeId,
    /// The logged change.
    pub change: Change,
}

/// Outcome of scanning a log.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// Frames that verified, in log order.
    pub frames: Vec<WalFrame>,
    /// Bytes of the verified prefix (magic + good frames); the file is
    /// valid up to exactly this offset.
    pub good_bytes: u64,
    /// Present when the scan stopped before end-of-file: the offset and
    /// reason of the first bad frame. `None` for a clean log.
    pub torn: Option<(u64, String)>,
}

/// Whether `path` starts with a complete, valid WAL magic. A short or
/// mismatched header means the file never finished creation — the
/// crash-artifact probe store recovery uses before trusting a
/// successor segment.
pub fn has_valid_magic(path: &Path) -> std::io::Result<bool> {
    use std::io::Read as _;
    let mut f = File::open(path)?;
    let mut head = [0u8; WAL_MAGIC.len()];
    let mut got = 0;
    while got < head.len() {
        match f.read(&mut head[got..])? {
            0 => return Ok(false),
            n => got += n,
        }
    }
    Ok(&head == WAL_MAGIC)
}

/// Scans a WAL file, tolerating a torn tail.
///
/// Only I/O failures and a bad *header* are hard errors; any bad frame
/// simply ends the scan with `torn` set.
pub fn replay(path: &Path) -> Result<WalReplay> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            reason: "bad WAL magic".into(),
        });
    }
    let mut frames = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut torn = None;
    loop {
        match codec::get_record(&bytes, pos) {
            Err(FrameError::Eof) => break,
            Err(FrameError::Torn { offset, reason }) => {
                torn = Some((offset as u64, reason));
                break;
            }
            Ok((payload, next)) => {
                let mut d = Dec::new(payload);
                let parsed = (|| -> codec::DecResult<WalFrame> {
                    let seq = d.u64()?;
                    let group = d.usize()?;
                    let change = codec::get_change(&mut d)?;
                    d.finish()?;
                    Ok(WalFrame { seq, group, change })
                })();
                match parsed {
                    Ok(frame) => {
                        if frame.seq != frames.len() as u64 {
                            torn = Some((
                                pos as u64,
                                format!(
                                    "sequence gap: frame {} at log position {}",
                                    frame.seq,
                                    frames.len()
                                ),
                            ));
                            break;
                        }
                        frames.push(frame);
                        pos = next;
                    }
                    Err(e) => {
                        torn = Some((pos as u64, format!("bad frame payload: {}", e.reason)));
                        break;
                    }
                }
            }
        }
    }
    Ok(WalReplay {
        frames,
        good_bytes: pos as u64,
        torn,
    })
}

/// Truncates `path` to the verified prefix reported by `replay` —
/// the recovery step that drops a torn tail.
pub fn truncate_to_good(path: &Path, replay: &WalReplay) -> Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(replay.good_bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Appending side of the log.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Next sequence number.
    next_seq: u64,
    /// Current file length in bytes.
    bytes: u64,
    /// `fsync` after this many appends (1 = every append).
    sync_every: usize,
    /// Appends since the last sync.
    unsynced: usize,
}

impl WalWriter {
    /// Creates a fresh (empty) log at `path`, truncating any existing
    /// file, and makes the header durable immediately.
    pub fn create(path: &Path, sync_every: usize) -> Result<Self> {
        assert!(sync_every > 0, "WalWriter: sync_every must be positive");
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: 0,
            bytes: WAL_MAGIC.len() as u64,
            sync_every,
            unsynced: 0,
        })
    }

    /// Re-opens an existing log for appending after [`replay`] (and,
    /// when the replay was torn, [`truncate_to_good`]).
    pub fn open_end(path: &Path, sync_every: usize, replayed: &WalReplay) -> Result<Self> {
        assert!(sync_every > 0, "WalWriter: sync_every must be positive");
        let file = OpenOptions::new().write(true).open(path)?;
        // Position at the end of the verified prefix; everything past
        // it (if anything) has been truncated away by recovery.
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: replayed.frames.len() as u64,
            bytes: replayed.good_bytes,
            sync_every,
            unsynced: 0,
        })
    }

    /// Appends one change frame; returns its sequence number. The frame
    /// is durable once [`Self::sync`] runs (automatically every
    /// `sync_every` appends).
    pub fn append(&mut self, group: NodeId, change: &Change) -> Result<u64> {
        use std::io::Seek as _;
        let seq = self.next_seq;
        let mut e = Enc::new();
        e.u64(seq);
        e.usize(group);
        codec::put_change(&mut e, change);
        let payload = e.into_bytes();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        codec::put_record(&mut framed, &payload);
        self.file.seek(std::io::SeekFrom::Start(self.bytes))?;
        self.file.write_all(&framed)?;
        self.bytes += framed.len() as u64;
        self.next_seq += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends not yet made durable.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartstore_trace::FileMetadata;

    fn meta(id: u64) -> FileMetadata {
        FileMetadata {
            file_id: id,
            name: format!("f{id}"),
            dir: "/w".into(),
            owner: 1,
            size: 64 + id,
            ctime: id as f64,
            mtime: id as f64,
            atime: id as f64,
            read_bytes: 0,
            write_bytes: 0,
            access_count: 1,
            proc_id: 0,
            truth_cluster: None,
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("smartstore_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn changes(n: u64) -> Vec<Change> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Change::Insert(meta(i)),
                1 => Change::Modify(meta(i - 1)),
                _ => Change::Delete(i - 2),
            })
            .collect()
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let cs = changes(50);
        {
            let mut w = WalWriter::create(&path, 8).unwrap();
            for (i, c) in cs.iter().enumerate() {
                let seq = w.append(i % 4, c).unwrap();
                assert_eq!(seq, i as u64);
            }
            w.sync().unwrap();
        }
        let r = replay(&path).unwrap();
        assert!(r.torn.is_none());
        assert_eq!(r.frames.len(), 50);
        for (i, f) in r.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.group, i % 4);
            assert_eq!(f.change, cs[i]);
        }
    }

    #[test]
    fn torn_tail_is_dropped_and_log_reusable() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::create(&path, 1).unwrap();
            for (i, c) in changes(10).iter().enumerate() {
                w.append(i, c).unwrap();
            }
        }
        // Tear the tail: chop 5 bytes off the last frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.frames.len(), 9, "torn last frame dropped");
        assert!(r.torn.is_some());
        truncate_to_good(&path, &r).unwrap();
        // Appending after recovery continues the sequence.
        let mut w = WalWriter::open_end(&path, 1, &r).unwrap();
        let seq = w.append(0, &Change::Delete(1234)).unwrap();
        assert_eq!(seq, 9);
        drop(w);
        let r2 = replay(&path).unwrap();
        assert!(r2.torn.is_none());
        assert_eq!(r2.frames.len(), 10);
        assert_eq!(r2.frames[9].change, Change::Delete(1234));
    }

    #[test]
    fn bitflip_mid_frame_stops_scan_at_frame_start() {
        let dir = tmpdir("bitflip");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::create(&path, 1).unwrap();
            for (i, c) in changes(6).iter().enumerate() {
                w.append(i, c).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.frames.len(), 5);
        let (offset, reason) = r.torn.unwrap();
        assert!(reason.contains("checksum"), "reason: {reason}");
        assert_eq!(offset, r.good_bytes);
    }

    #[test]
    fn empty_log_replays_clean() {
        let dir = tmpdir("empty");
        let path = dir.join("wal.log");
        WalWriter::create(&path, 4).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.frames.is_empty());
        assert!(r.torn.is_none());
        assert_eq!(r.good_bytes, WAL_MAGIC.len() as u64);
    }

    #[test]
    fn sync_batching_counts() {
        let dir = tmpdir("sync");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 4).unwrap();
        let cs = changes(6);
        for (i, c) in cs.iter().take(3).enumerate() {
            w.append(i, c).unwrap();
        }
        assert_eq!(w.unsynced(), 3, "below batch threshold: not yet synced");
        w.append(3, &cs[3]).unwrap();
        assert_eq!(w.unsynced(), 0, "fourth append triggers the batch fsync");
    }

    #[test]
    fn garbage_file_is_rejected() {
        let dir = tmpdir("garbage");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(matches!(replay(&path), Err(PersistError::Corrupt { .. })));
    }
}
