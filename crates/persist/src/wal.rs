//! The append-only write-ahead log of metadata changes.
//!
//! A WAL file is the 8-byte magic, one checksummed *header record*, and
//! then checksummed frames (the record framing of [`crate::codec`]).
//! The header payload is
//!
//! ```text
//! [version: u16][prev_frames: u64]
//! ```
//!
//! `prev_frames` is the number of frames the *predecessor* segment held
//! when this one was created (0 for the first segment of a chain). It
//! exists for one failure mode: an `fsync` that lies. If the disk
//! acknowledges a sync of segment *g* but never persists it, a crash
//! can leave *g* truncated — cleanly, at a frame boundary — while
//! segment *g+1* holds later frames. Replaying both would produce a
//! state matching *no* prefix of the change stream. The header lets
//! recovery notice that *g* replayed fewer frames than *g+1* expected,
//! stop at the gap, and quarantine the successor.
//!
//! Each frame's payload is
//!
//! ```text
//! [seq: u64][group: u64][Change]
//! ```
//!
//! `seq` is contiguous from 0 within one log generation and `group`
//! tags the first-level semantic group the change lands in (§4.4's
//! version-per-group aggregation carried over to disk).
//!
//! Durability follows the group-commit pattern: frames are buffered and
//! the file is `fsync`ed every `sync_every` appends (1 = sync each
//! change). A crash can therefore tear the tail of the log — replay
//! tolerates exactly that: it scans until the first bad frame (torn
//! header, truncated payload, checksum mismatch, or sequence gap),
//! reports everything before it, and recovery salvages the verified
//! prefix, quarantining the bad tail to a `.quarantine` side file
//! before appending resumes.
//!
//! All I/O goes through [`crate::vfs::Vfs`] so the torture harness can
//! inject faults at any call.

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use crate::vfs::{Vfs, VfsFile};
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use std::path::{Path, PathBuf};

/// Magic prefix of WAL files.
pub const WAL_MAGIC: &[u8; 8] = b"SSWAL\x00\x00\x00";

/// Current WAL format version (v2 added the header record).
pub const WAL_VERSION: u16 = 2;

/// Byte length of the header record's payload: `[version u16][prev_frames u64]`.
const HEADER_PAYLOAD_LEN: usize = 2 + 8;

/// Bytes of magic plus header record — the length of a freshly created,
/// empty log.
pub fn header_len() -> u64 {
    // Record framing adds [len u32][crc u32].
    (WAL_MAGIC.len() + 8 + HEADER_PAYLOAD_LEN) as u64
}

fn header_bytes(prev_frames: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(WAL_VERSION);
    e.u64(prev_frames);
    let payload = e.into_bytes();
    let mut out = Vec::with_capacity(header_len() as usize);
    out.extend_from_slice(WAL_MAGIC);
    codec::put_record(&mut out, &payload);
    out
}

/// One decoded log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct WalFrame {
    /// Position in the log (contiguous from 0 per generation).
    pub seq: u64,
    /// First-level group tag.
    pub group: NodeId,
    /// The logged change.
    pub change: Change,
}

/// Outcome of scanning a log.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// Frames that verified, in log order.
    pub frames: Vec<WalFrame>,
    /// Bytes of the verified prefix (magic + header + good frames); the
    /// file is valid up to exactly this offset.
    pub good_bytes: u64,
    /// Present when the scan stopped before end-of-file: the offset and
    /// reason of the first bad frame. `None` for a clean log.
    pub torn: Option<(u64, String)>,
    /// Frame count of the predecessor segment, from the header.
    pub prev_frames: u64,
}

/// What a WAL file looks like before committing to a full replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalProbe {
    /// Magic and header verified.
    Valid {
        /// The predecessor segment's frame count, from the header.
        prev_frames: u64,
    },
    /// Missing, empty, or truncated before the header record completed.
    /// `create` syncs magic + header before acknowledging anything, so
    /// no frame of such a file was ever acknowledged — it is a crash
    /// artifact of creation itself and safe to recreate.
    CreationArtifact,
    /// Bytes that are neither a valid WAL nor a creation prefix —
    /// corruption, not truncation.
    Garbage,
}

fn classify(bytes: &[u8]) -> WalProbe {
    let m = WAL_MAGIC.len();
    if bytes.len() < m {
        return if WAL_MAGIC.starts_with(bytes) {
            WalProbe::CreationArtifact
        } else {
            WalProbe::Garbage
        };
    }
    if &bytes[..m] != WAL_MAGIC {
        return WalProbe::Garbage;
    }
    // The header record has a fixed-size payload, so truncation and
    // corruption are distinguishable: too few bytes for the framing or
    // payload is a torn creation; wrong length or checksum is damage.
    let rest = &bytes[m..];
    if rest.len() < 8 {
        return WalProbe::CreationArtifact;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if len != HEADER_PAYLOAD_LEN {
        return WalProbe::Garbage;
    }
    if rest.len() - 8 < len {
        return WalProbe::CreationArtifact;
    }
    match codec::get_record(bytes, m) {
        Ok((payload, _)) => {
            let mut d = Dec::new(payload);
            match (|| -> codec::DecResult<(u16, u64)> {
                let v = d.u16()?;
                let p = d.u64()?;
                d.finish()?;
                Ok((v, p))
            })() {
                Ok((v, prev_frames)) if v <= WAL_VERSION => WalProbe::Valid { prev_frames },
                _ => WalProbe::Garbage,
            }
        }
        Err(_) => WalProbe::Garbage,
    }
}

/// Classifies the file at `path` without scanning its frames. A missing
/// file probes as [`WalProbe::CreationArtifact`].
pub fn probe(vfs: &dyn Vfs, path: &Path) -> Result<WalProbe> {
    match vfs.read(path) {
        Ok(bytes) => Ok(classify(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WalProbe::CreationArtifact),
        Err(e) => Err(e.into()),
    }
}

/// Scans a WAL file, tolerating a torn tail.
///
/// Only I/O failures and a bad *header* are hard errors; any bad frame
/// simply ends the scan with `torn` set.
pub fn replay(vfs: &dyn Vfs, path: &Path) -> Result<WalReplay> {
    let bytes = vfs.read(path)?;
    let m = WAL_MAGIC.len();
    if bytes.len() < m || &bytes[..m] != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            reason: "bad WAL magic".into(),
        });
    }
    let (header, mut pos) = match codec::get_record(&bytes, m) {
        Ok(ok) => ok,
        Err(FrameError::Eof) => {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                offset: m as u64,
                reason: "missing WAL header record".into(),
            })
        }
        Err(FrameError::Torn { offset, reason }) => {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                reason: format!("bad WAL header record: {reason}"),
            })
        }
    };
    let mut hd = Dec::new(header);
    let (version, prev_frames) = (|| -> codec::DecResult<(u16, u64)> {
        let v = hd.u16()?;
        let p = hd.u64()?;
        hd.finish()?;
        Ok((v, p))
    })()
    .map_err(|e| PersistError::Corrupt {
        path: path.to_path_buf(),
        offset: m as u64,
        reason: format!("bad WAL header payload: {}", e.reason),
    })?;
    if version > WAL_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut frames = Vec::new();
    let mut torn = None;
    loop {
        match codec::get_record(&bytes, pos) {
            Err(FrameError::Eof) => break,
            Err(FrameError::Torn { offset, reason }) => {
                torn = Some((offset as u64, reason));
                break;
            }
            Ok((payload, next)) => {
                let mut d = Dec::new(payload);
                let parsed = (|| -> codec::DecResult<WalFrame> {
                    let seq = d.u64()?;
                    let group = d.usize()?;
                    let change = codec::get_change(&mut d)?;
                    d.finish()?;
                    Ok(WalFrame { seq, group, change })
                })();
                match parsed {
                    Ok(frame) => {
                        if frame.seq != frames.len() as u64 {
                            torn = Some((
                                pos as u64,
                                format!(
                                    "sequence gap: frame {} at log position {}",
                                    frame.seq,
                                    frames.len()
                                ),
                            ));
                            break;
                        }
                        frames.push(frame);
                        pos = next;
                    }
                    Err(e) => {
                        torn = Some((pos as u64, format!("bad frame payload: {}", e.reason)));
                        break;
                    }
                }
            }
        }
    }
    Ok(WalReplay {
        frames,
        good_bytes: pos as u64,
        torn,
        prev_frames,
    })
}

/// The side file a log's corrupt tail is preserved in. The name keeps
/// the full log file name plus a `.quarantine` suffix, so it falls
/// outside the `.log` namespace the orphan sweep manages.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".quarantine");
    path.with_file_name(name)
}

/// Truncates `path` to the verified prefix reported by `replay` —
/// the recovery step that drops a torn tail.
pub fn truncate_to_good(vfs: &dyn Vfs, path: &Path, replay: &WalReplay) -> Result<()> {
    let mut f = vfs.open_rw(path)?;
    f.set_len(replay.good_bytes)?;
    f.sync()?;
    Ok(())
}

/// Salvages the verified prefix of a torn log: copies everything past
/// `replay.good_bytes` into the [`quarantine_path`] side file, then
/// truncates the log. Returns the number of bytes quarantined (0 when
/// the log was already clean).
pub fn quarantine_tail(vfs: &dyn Vfs, path: &Path, replay: &WalReplay) -> Result<u64> {
    let bytes = vfs.read(path)?;
    let good = (replay.good_bytes as usize).min(bytes.len());
    let tail = &bytes[good..];
    if tail.is_empty() {
        return Ok(0);
    }
    let side = quarantine_path(path);
    let mut f = vfs.create(&side)?;
    f.write_all_at(0, tail)?;
    f.sync()?;
    drop(f);
    truncate_to_good(vfs, path, replay)?;
    Ok(tail.len() as u64)
}

/// Quarantines an entire log file (used when a successor segment's
/// frames cannot be applied because its predecessor lost frames — the
/// lying-fsync gap). Returns the number of bytes moved aside.
pub fn quarantine_file(vfs: &dyn Vfs, path: &Path) -> Result<u64> {
    let len = vfs.file_len(path)?;
    vfs.rename(path, &quarantine_path(path))?;
    Ok(len)
}

/// Appending side of the log.
#[derive(Debug)]
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Next sequence number.
    next_seq: u64,
    /// Current file length in bytes.
    bytes: u64,
    /// `fsync` after this many appends (1 = every append).
    sync_every: usize,
    /// Appends since the last sync.
    unsynced: usize,
}

impl WalWriter {
    /// Creates a fresh (empty) log at `path`, truncating any existing
    /// file, and makes the header durable immediately. `prev_frames` is
    /// the frame count of the segment this one succeeds (0 for the
    /// first of a chain).
    pub fn create(vfs: &dyn Vfs, path: &Path, sync_every: usize, prev_frames: u64) -> Result<Self> {
        assert!(sync_every > 0, "WalWriter: sync_every must be positive");
        let header = header_bytes(prev_frames);
        let mut file = vfs.create(path)?;
        file.write_all_at(0, &header)?;
        file.sync()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: 0,
            bytes: header.len() as u64,
            sync_every,
            unsynced: 0,
        })
    }

    /// Re-opens an existing log for appending after [`replay`] (and,
    /// when the replay was torn, [`truncate_to_good`] or
    /// [`quarantine_tail`]).
    pub fn open_end(
        vfs: &dyn Vfs,
        path: &Path,
        sync_every: usize,
        replayed: &WalReplay,
    ) -> Result<Self> {
        assert!(sync_every > 0, "WalWriter: sync_every must be positive");
        let file = vfs.open_rw(path)?;
        // Position at the end of the verified prefix; everything past
        // it (if anything) has been truncated away by recovery.
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: replayed.frames.len() as u64,
            bytes: replayed.good_bytes,
            sync_every,
            unsynced: 0,
        })
    }

    /// Appends one change frame; returns its sequence number. The frame
    /// is durable once [`Self::sync`] runs (automatically every
    /// `sync_every` appends).
    pub fn append(&mut self, group: NodeId, change: &Change) -> Result<u64> {
        let seq = self.next_seq;
        let mut e = Enc::new();
        e.u64(seq);
        e.usize(group);
        codec::put_change(&mut e, change);
        let payload = e.into_bytes();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        codec::put_record(&mut framed, &payload);
        self.file.write_all_at(self.bytes, &framed)?;
        self.bytes += framed.len() as u64;
        self.next_seq += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.file.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends not yet made durable.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;
    use smartstore_trace::FileMetadata;

    fn meta(id: u64) -> FileMetadata {
        FileMetadata {
            file_id: id,
            name: format!("f{id}"),
            dir: "/w".into(),
            owner: 1,
            size: 64 + id,
            ctime: id as f64,
            mtime: id as f64,
            atime: id as f64,
            read_bytes: 0,
            write_bytes: 0,
            access_count: 1,
            proc_id: 0,
            truth_cluster: None,
        }
    }

    fn memfs() -> (FaultVfs, PathBuf) {
        (FaultVfs::new(), PathBuf::from("/wal/wal.log"))
    }

    fn changes(n: u64) -> Vec<Change> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Change::Insert(meta(i)),
                1 => Change::Modify(meta(i - 1)),
                _ => Change::Delete(i - 2),
            })
            .collect()
    }

    #[test]
    fn append_replay_roundtrip() {
        let (vfs, path) = memfs();
        let cs = changes(50);
        {
            let mut w = WalWriter::create(&vfs, &path, 8, 0).unwrap();
            for (i, c) in cs.iter().enumerate() {
                let seq = w.append(i % 4, c).unwrap();
                assert_eq!(seq, i as u64);
            }
            w.sync().unwrap();
        }
        let r = replay(&vfs, &path).unwrap();
        assert!(r.torn.is_none());
        assert_eq!(r.prev_frames, 0);
        assert_eq!(r.frames.len(), 50);
        for (i, f) in r.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.group, i % 4);
            assert_eq!(f.change, cs[i]);
        }
    }

    #[test]
    fn roundtrip_on_the_real_filesystem() {
        let dir = std::env::temp_dir().join(format!("smartstore_wal_real_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = crate::vfs::RealVfs;
        let path = dir.join("wal.log");
        let cs = changes(12);
        {
            let mut w = WalWriter::create(&vfs, &path, 4, 7).unwrap();
            for (i, c) in cs.iter().enumerate() {
                w.append(i, c).unwrap();
            }
        }
        let r = replay(&vfs, &path).unwrap();
        assert!(r.torn.is_none());
        assert_eq!(r.prev_frames, 7);
        assert_eq!(r.frames.len(), 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_quarantined_and_log_reusable() {
        let (vfs, path) = memfs();
        {
            let mut w = WalWriter::create(&vfs, &path, 1, 0).unwrap();
            for (i, c) in changes(10).iter().enumerate() {
                w.append(i, c).unwrap();
            }
        }
        // Tear the tail: chop 5 bytes off the last frame.
        let full = vfs.read(&path).unwrap();
        let mut f = vfs.open_rw(&path).unwrap();
        f.set_len((full.len() - 5) as u64).unwrap();
        f.sync().unwrap();
        drop(f);
        let r = replay(&vfs, &path).unwrap();
        assert_eq!(r.frames.len(), 9, "torn last frame dropped");
        assert!(r.torn.is_some());
        let dropped = (full.len() - 5) as u64 - r.good_bytes;
        assert_eq!(quarantine_tail(&vfs, &path, &r).unwrap(), dropped);
        // The tail landed in the side file, byte for byte.
        let side = vfs.read(&quarantine_path(&path)).unwrap();
        assert_eq!(side.len() as u64, dropped);
        assert_eq!(side[..], full[r.good_bytes as usize..full.len() - 5]);
        // Appending after recovery continues the sequence.
        let mut w = WalWriter::open_end(&vfs, &path, 1, &r).unwrap();
        let seq = w.append(0, &Change::Delete(1234)).unwrap();
        assert_eq!(seq, 9);
        drop(w);
        let r2 = replay(&vfs, &path).unwrap();
        assert!(r2.torn.is_none());
        assert_eq!(r2.frames.len(), 10);
        assert_eq!(r2.frames[9].change, Change::Delete(1234));
    }

    #[test]
    fn bitflip_mid_frame_stops_scan_at_frame_start() {
        let (vfs, path) = memfs();
        {
            let mut w = WalWriter::create(&vfs, &path, 1, 0).unwrap();
            for (i, c) in changes(6).iter().enumerate() {
                w.append(i, c).unwrap();
            }
        }
        let len = vfs.read(&path).unwrap().len();
        assert!(vfs.corrupt_durable(&path, len - 3, 0x10));
        let r = replay(&vfs, &path).unwrap();
        assert_eq!(r.frames.len(), 5);
        let (offset, reason) = r.torn.unwrap();
        assert!(reason.contains("checksum"), "reason: {reason}");
        assert_eq!(offset, r.good_bytes);
    }

    #[test]
    fn empty_log_replays_clean() {
        let (vfs, path) = memfs();
        WalWriter::create(&vfs, &path, 4, 3).unwrap();
        let r = replay(&vfs, &path).unwrap();
        assert!(r.frames.is_empty());
        assert!(r.torn.is_none());
        assert_eq!(r.prev_frames, 3);
        assert_eq!(r.good_bytes, header_len());
    }

    #[test]
    fn sync_batching_counts() {
        let (vfs, path) = memfs();
        let mut w = WalWriter::create(&vfs, &path, 4, 0).unwrap();
        let cs = changes(6);
        for (i, c) in cs.iter().take(3).enumerate() {
            w.append(i, c).unwrap();
        }
        assert_eq!(w.unsynced(), 3, "below batch threshold: not yet synced");
        w.append(3, &cs[3]).unwrap();
        assert_eq!(w.unsynced(), 0, "fourth append triggers the batch fsync");
    }

    #[test]
    fn garbage_file_is_rejected() {
        let (vfs, path) = memfs();
        let mut f = vfs.create(&path).unwrap();
        f.write_all_at(0, b"not a wal at all").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(matches!(
            replay(&vfs, &path),
            Err(PersistError::Corrupt { .. })
        ));
        assert_eq!(probe(&vfs, &path).unwrap(), WalProbe::Garbage);
    }

    #[test]
    fn probe_classifies_creation_prefixes() {
        let (vfs, path) = memfs();
        // Missing file: never created.
        assert_eq!(probe(&vfs, &path).unwrap(), WalProbe::CreationArtifact);
        // Every strict prefix of a fresh header is a creation artifact;
        // the complete header is valid.
        WalWriter::create(&vfs, &path, 1, 5).unwrap();
        let full = vfs.read(&path).unwrap();
        assert_eq!(full.len() as u64, header_len());
        for keep in 0..full.len() {
            let mut f = vfs.open_rw(&path).unwrap();
            f.set_len(keep as u64).unwrap();
            f.write_all_at(0, &full[..keep]).unwrap();
            f.sync().unwrap();
            drop(f);
            assert_eq!(
                probe(&vfs, &path).unwrap(),
                WalProbe::CreationArtifact,
                "prefix of {keep} bytes"
            );
        }
        let mut f = vfs.open_rw(&path).unwrap();
        f.write_all_at(0, &full).unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(
            probe(&vfs, &path).unwrap(),
            WalProbe::Valid { prev_frames: 5 }
        );
    }

    #[test]
    fn probe_flags_corrupt_header_as_garbage() {
        let (vfs, path) = memfs();
        WalWriter::create(&vfs, &path, 1, 0).unwrap();
        // Flip a bit inside the header payload: right length, bad crc.
        assert!(vfs.corrupt_durable(&path, WAL_MAGIC.len() + 9, 0x01));
        assert_eq!(probe(&vfs, &path).unwrap(), WalProbe::Garbage);
    }

    #[test]
    fn future_version_is_unsupported() {
        let (vfs, path) = memfs();
        let mut e = Enc::new();
        e.u16(WAL_VERSION + 1);
        e.u64(0);
        let payload = e.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        codec::put_record(&mut bytes, &payload);
        let mut f = vfs.create(&path).unwrap();
        f.write_all_at(0, &bytes).unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(matches!(
            replay(&vfs, &path),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }
}
