//! The durable store: a directory of snapshot generations plus the
//! active write-ahead log, tied together by a manifest.
//!
//! Layout of a store directory:
//!
//! ```text
//! MANIFEST              — checksummed pointer to the current generation
//! snapshot-<gen>.snap   — point-in-time system image
//! wal-<gen>.log         — changes applied since snapshot <gen>
//! ```
//!
//! *Crash recovery* (`PersistentStore::open`) = read the manifest, load
//! its snapshot, replay its WAL (dropping a torn tail), and apply the
//! surviving changes through [`SmartStoreSystem::apply_change`] — the
//! same deterministic code path the live system took, so the recovered
//! state matches the pre-crash state exactly up to the last durable
//! frame.
//!
//! *Compaction* folds a grown WAL into a fresh snapshot generation:
//! write `snapshot-<gen+1>` (atomic), start `wal-<gen+1>` empty, flip
//! the manifest (atomic rename), then delete the old generation. A
//! crash anywhere in that sequence leaves either the old or the new
//! generation fully intact.

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use crate::snapshot::{self, SnapshotStats};
use crate::wal::{self, WalWriter};
use smartstore::system::Journal;
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::SmartStoreSystem;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic prefix of the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"SSMANI\x00\x00";

const MANIFEST: &str = "MANIFEST";

/// What recovery found while opening a store.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Snapshot generation loaded.
    pub generation: u64,
    /// Snapshot bytes read.
    pub snapshot_bytes: u64,
    /// WAL frames replayed on top of the snapshot.
    pub replayed_frames: usize,
    /// Bytes of torn WAL tail dropped (0 for a clean shutdown).
    pub dropped_tail_bytes: u64,
}

/// Durability/compaction tunables, normally taken from
/// [`smartstore::config::PersistConfig`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// `fsync` the WAL every N appends.
    pub wal_sync_every: usize,
    /// Compact once the WAL exceeds this many bytes.
    pub wal_compact_bytes: u64,
}

impl From<&smartstore::config::PersistConfig> for StoreOptions {
    fn from(c: &smartstore::config::PersistConfig) -> Self {
        Self {
            wal_sync_every: c.wal_sync_every,
            wal_compact_bytes: c.wal_compact_bytes,
        }
    }
}

/// Handle to an open store directory: owns the active WAL and knows how
/// to snapshot/compact. Implements [`Journal`] so it can be passed
/// straight to [`SmartStoreSystem::apply_change_journaled`].
#[derive(Debug)]
pub struct PersistentStore {
    dir: PathBuf,
    generation: u64,
    wal: WalWriter,
    opts: StoreOptions,
    /// First durability error hit inside the infallible [`Journal`]
    /// hook; surfaced by [`Self::take_journal_error`] / [`Self::sync`].
    journal_error: Option<PersistError>,
    /// Set when an append has failed: the WAL now has a *gap* relative
    /// to the in-memory system (memory kept mutating while frames were
    /// dropped), so further appends are refused — replaying a gapped
    /// log would silently reconstruct an inconsistent state. The only
    /// way forward is [`Self::compact`], whose fresh full snapshot
    /// makes the gapped log irrelevant.
    poisoned: bool,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:08}.snap"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:08}.log"))
}

fn write_manifest(dir: &Path, generation: u64) -> Result<()> {
    let mut payload = Enc::new();
    payload.u16(codec::FORMAT_VERSION);
    payload.u64(generation);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MANIFEST_MAGIC);
    codec::put_record(&mut bytes, &payload.into_bytes());
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<u64> {
    let path = dir.join(MANIFEST);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(PersistError::NotFound(dir.to_path_buf()));
        }
        Err(e) => return Err(e.into()),
    };
    let corrupt = |offset: usize, reason: String| PersistError::Corrupt {
        path: path.clone(),
        offset: offset as u64,
        reason,
    };
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(corrupt(0, "bad manifest magic".into()));
    }
    let (payload, _) = match codec::get_record(&bytes, MANIFEST_MAGIC.len()) {
        Ok(r) => r,
        Err(FrameError::Eof) => return Err(corrupt(bytes.len(), "empty manifest".into())),
        Err(FrameError::Torn { offset, reason }) => return Err(corrupt(offset, reason)),
    };
    let mut d = Dec::new(payload);
    let version = d.u16().map_err(|e| corrupt(e.offset, e.reason))?;
    if version > codec::FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: codec::FORMAT_VERSION,
        });
    }
    let generation = d.u64().map_err(|e| corrupt(e.offset, e.reason))?;
    Ok(generation)
}

impl PersistentStore {
    /// Creates a new store at `dir` (made if missing) holding a
    /// snapshot of `system` as generation 1 with an empty WAL.
    /// Durability options come from `system.cfg.persist`.
    pub fn create(dir: &Path, system: &SmartStoreSystem) -> Result<(Self, SnapshotStats)> {
        fs::create_dir_all(dir)?;
        let opts = StoreOptions::from(&system.cfg.persist);
        let generation = 1;
        let stats = snapshot::write_snapshot(&system.to_parts(), &snapshot_path(dir, generation))?;
        let wal = WalWriter::create(&wal_path(dir, generation), opts.wal_sync_every)?;
        write_manifest(dir, generation)?;
        Ok((
            Self {
                dir: dir.to_path_buf(),
                generation,
                wal,
                opts,
                journal_error: None,
                poisoned: false,
            },
            stats,
        ))
    }

    /// Opens an existing store: loads the manifest's snapshot, replays
    /// the WAL (discarding a torn tail), and returns the recovered
    /// system together with the store handle positioned to keep
    /// appending.
    pub fn open(dir: &Path) -> Result<(SmartStoreSystem, Self, RecoveryReport)> {
        let generation = read_manifest(dir)?;
        let snap_path = snapshot_path(dir, generation);
        let parts = snapshot::load_snapshot(&snap_path)?;
        let snapshot_bytes = fs::metadata(&snap_path)?.len();
        let mut system = SmartStoreSystem::from_parts(parts);
        let opts = StoreOptions::from(&system.cfg.persist);

        let wpath = wal_path(dir, generation);
        // A missing WAL is recoverable: the snapshot alone is a
        // consistent state (it can arise when a crash lands between
        // compaction's manifest flip and the new log's directory entry
        // reaching disk). Recreate it empty.
        if !wpath.exists() {
            WalWriter::create(&wpath, opts.wal_sync_every)?;
        }
        let replayed = wal::replay(&wpath)?;
        let dropped_tail_bytes = match &replayed.torn {
            Some(_) => fs::metadata(&wpath)?
                .len()
                .saturating_sub(replayed.good_bytes),
            None => 0,
        };
        if replayed.torn.is_some() {
            wal::truncate_to_good(&wpath, &replayed)?;
        }
        for frame in &replayed.frames {
            system.apply_change(frame.change.clone());
        }
        let report = RecoveryReport {
            generation,
            snapshot_bytes,
            replayed_frames: replayed.frames.len(),
            dropped_tail_bytes,
        };
        let wal = WalWriter::open_end(&wpath, opts.wal_sync_every, &replayed)?;
        sweep_orphans(dir, generation);
        Ok((
            system,
            Self {
                dir: dir.to_path_buf(),
                generation,
                wal,
                opts,
                journal_error: None,
                poisoned: false,
            },
            report,
        ))
    }

    /// Appends one change frame to the WAL (write-ahead: call *before*
    /// mutating the in-memory system; [`SmartStoreSystem::apply_change_journaled`]
    /// does exactly that). Refused once the store is poisoned by an
    /// earlier failed append — see [`Self::is_poisoned`].
    pub fn append(&mut self, group: NodeId, change: &Change) -> Result<u64> {
        if self.poisoned {
            return Err(PersistError::Io(std::io::Error::other(
                "journal poisoned by an earlier failed append (the log has a gap); \
                 compact() to re-establish a consistent snapshot",
            )));
        }
        match self.wal.append(group, change) {
            Ok(seq) => Ok(seq),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Forces all appended frames to stable storage and surfaces any
    /// error the infallible [`Journal`] hook swallowed.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(e) = self.journal_error.take() {
            return Err(e);
        }
        self.wal.sync()
    }

    /// True when an append has failed and the WAL can no longer be
    /// trusted to be gap-free; only [`Self::compact`] clears this.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// True once the WAL has outgrown the compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.wal.bytes() > self.opts.wal_compact_bytes
    }

    /// Folds the WAL into a fresh snapshot of `system` (which must be
    /// the state that *includes* every journaled change): writes
    /// generation `g+1`, flips the manifest, deletes generation `g`.
    /// Because the new snapshot captures the *full* in-memory state,
    /// this also recovers a poisoned store — the gapped old log becomes
    /// irrelevant.
    pub fn compact(&mut self, system: &SmartStoreSystem) -> Result<SnapshotStats> {
        if !self.poisoned {
            // A gapped WAL cannot be synced meaningfully; skip straight
            // to the snapshot that supersedes it.
            self.wal.sync()?;
        }
        let next = self.generation + 1;
        let stats = snapshot::write_snapshot(&system.to_parts(), &snapshot_path(&self.dir, next))?;
        let new_wal = WalWriter::create(&wal_path(&self.dir, next), self.opts.wal_sync_every)?;
        write_manifest(&self.dir, next)?;
        let old = self.generation;
        self.wal = new_wal;
        self.generation = next;
        self.poisoned = false;
        self.journal_error = None;
        // Old generation is unreachable now; removal is best-effort.
        let _ = fs::remove_file(snapshot_path(&self.dir, old));
        let _ = fs::remove_file(wal_path(&self.dir, old));
        Ok(stats)
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Frames appended to the current WAL.
    pub fn wal_frames(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The first error (if any) swallowed by the infallible [`Journal`]
    /// hook since the last call.
    pub fn take_journal_error(&mut self) -> Option<PersistError> {
        self.journal_error.take()
    }
}

impl Journal for PersistentStore {
    fn record(&mut self, group: NodeId, change: &Change) {
        match self.append(group, change) {
            Ok(_) => {}
            // Keep only the first cause; the poison flag set by
            // `append` guarantees no later frame can paper over the gap.
            Err(e) if self.journal_error.is_none() => self.journal_error = Some(e),
            Err(_) => {}
        }
    }
}

/// Best-effort cleanup of artifacts a crashed compaction can leave
/// behind: `*.tmp` files and snapshot/WAL files of generations other
/// than the current one. Never touches the manifest.
fn sweep_orphans(dir: &Path, current: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let keep_snap = snapshot_path(dir, current);
    let keep_wal = wal_path(dir, current);
    for entry in entries.flatten() {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = name.ends_with(".tmp")
            || (name.starts_with("snapshot-") && name.ends_with(".snap") && p != keep_snap)
            || (name.starts_with("wal-") && name.ends_with(".log") && p != keep_wal);
        if stale {
            let _ = fs::remove_file(&p);
        }
    }
}
