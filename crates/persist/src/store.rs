//! The durable store: a chain of snapshot generations plus the active
//! write-ahead log, tied together by a manifest.
//!
//! Layout of a store directory:
//!
//! ```text
//! MANIFEST              — checksummed chain: base generation + deltas
//! snapshot-<gen>.snap   — full point-in-time system image (chain base)
//! delta-<gen>.snap      — differential generation: only the units
//!                         dirtied since the previous generation
//! wal-<gen>.log         — changes applied since generation <gen>
//! wal-<gen>.log.quarantine — salvaged bytes of a corrupt segment/tail
//! ```
//!
//! *Crash recovery* (`PersistentStore::open`) = read the manifest, load
//! the base snapshot, fold the delta chain in order
//! ([`snapshot::fold_delta`]), then replay the WAL segments from the
//! chain end onward through [`SmartStoreSystem::apply_change`] — the
//! same deterministic code path the live system took, so the recovered
//! state matches the pre-crash state exactly up to the last durable
//! frame. Recovery never destroys bytes it cannot verify: a torn or
//! corrupt tail is *salvaged prefix-first* — the verified frames
//! replay, the unverifiable remainder moves to a `.quarantine` side
//! file (reported in [`RecoveryReport::quarantined_bytes`]) — and a
//! successor segment whose header's `prev_frames` disagrees with what
//! its predecessor actually replayed (the signature of an `fsync` that
//! lied) is quarantined whole rather than replayed into a
//! non-prefix state. Transient read corruption is distinguished from
//! damage on the platter by re-reading once before anything
//! destructive happens.
//!
//! *Compaction* is **incremental and off the write path**: a cut
//! ([`PersistentStore::begin_delta_compaction`]) seals the current WAL,
//! switches journaling to a fresh segment, and captures a copy-on-write
//! view of just the dirty units — O(churn footprint). The expensive
//! encode ([`DeltaCompaction::encode`], parallel per-unit on the shared
//! pool) borrows neither the system nor the store, so the writer keeps
//! journaling while it runs; [`PersistentStore::install_delta`] then
//! writes the delta atomically and flips the manifest. (The automatic
//! policy in [`PersistentStore::compact_incremental`] — what
//! `apply_journaled` uses — runs the three phases back-to-back on the
//! caller, so it blocks for the encode but still pays only O(churn)
//! bytes; hand the cut to a worker thread yourself for a truly
//! non-blocking writer, as the concurrency test does.) Once the delta
//! chain outgrows `max_delta_chain` (or most units are dirty anyway), a
//! full rewrite ([`PersistentStore::compact`]) resets the chain. A
//! crash at *any* step boundary leaves a recoverable directory: the
//! manifest always points at a complete chain, and un-flipped deltas /
//! superseded WAL segments are swept as orphans on the next open.
//!
//! All I/O goes through a [`Vfs`] handle; production entry points use
//! [`RealVfs`](crate::vfs::RealVfs), the torture harness substitutes
//! [`FaultVfs`](crate::vfs::FaultVfs).

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use crate::snapshot::{self, DeltaStats, SnapshotStats};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{self, WalWriter};
use smartstore::system::{DeltaParts, Journal};
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::SmartStoreSystem;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"SSMANI\x00\x00";

const MANIFEST: &str = "MANIFEST";

/// What recovery found while opening a store.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Chain-end generation loaded (base snapshot + folded deltas).
    pub generation: u64,
    /// Base (full-image) generation of the chain.
    pub base_generation: u64,
    /// Delta generations folded on top of the base.
    pub deltas_folded: usize,
    /// Snapshot + delta bytes read.
    pub snapshot_bytes: u64,
    /// WAL frames replayed on top of the folded chain.
    pub replayed_frames: usize,
    /// WAL segments replayed (more than one after a crash mid-cut).
    pub wal_segments: usize,
    /// Bytes of torn WAL tail dropped from the live log (0 for a clean
    /// shutdown).
    pub dropped_tail_bytes: u64,
    /// Bytes preserved in `.quarantine` side files: torn tails plus
    /// whole segments that could not be applied (corrupt header, or a
    /// predecessor that lost frames to a lying fsync).
    pub quarantined_bytes: u64,
    /// Storage units whose Bloom filters were rebuilt in memory because
    /// the on-disk family differs from the configured one (e.g. a v2
    /// image's MD5 filters under the fast-family default). The rebuilt
    /// units are marked dirty, so the next compaction persists them in
    /// the configured family.
    pub units_migrated: usize,
}

/// Durability/compaction tunables, normally taken from
/// [`smartstore::config::PersistConfig`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// `fsync` the WAL every N appends.
    pub wal_sync_every: usize,
    /// Compact once the WAL exceeds this many bytes.
    pub wal_compact_bytes: u64,
    /// Delta generations to accumulate before a full rewrite; 0
    /// disables differential snapshots.
    pub max_delta_chain: usize,
}

impl From<&smartstore::config::PersistConfig> for StoreOptions {
    fn from(c: &smartstore::config::PersistConfig) -> Self {
        Self {
            wal_sync_every: c.wal_sync_every,
            wal_compact_bytes: c.wal_compact_bytes,
            max_delta_chain: c.max_delta_chain,
        }
    }
}

/// What one [`PersistentStore::compact_incremental`] call did.
#[derive(Clone, Copy, Debug)]
pub enum CompactionOutcome {
    /// Full-image rewrite: chain reset to a fresh base.
    Full(SnapshotStats),
    /// Differential generation appended to the chain.
    Delta(DeltaStats),
}

impl CompactionOutcome {
    /// Bytes written to the new generation.
    pub fn bytes_written(&self) -> u64 {
        match self {
            CompactionOutcome::Full(s) => s.bytes,
            CompactionOutcome::Delta(s) => s.bytes,
        }
    }

    /// True for a delta generation.
    pub fn is_delta(&self) -> bool {
        matches!(self, CompactionOutcome::Delta(_))
    }
}

/// The writer-side cut of an in-flight delta compaction: a
/// copy-on-write view of the dirty units plus the index-side sections,
/// captured in O(churn footprint) while the store switched journaling
/// to a fresh WAL segment. Owns no borrow of the system or the store —
/// ship it to a worker thread and [`Self::encode`] there while the
/// writer keeps appending.
#[derive(Debug)]
pub struct DeltaCompaction {
    next_gen: u64,
    view: DeltaParts,
}

impl DeltaCompaction {
    /// Units this delta will re-encode.
    pub fn n_dirty(&self) -> usize {
        self.view.units.len()
    }

    /// Total units in the system at the cut.
    pub fn n_units_total(&self) -> usize {
        self.view.n_units_total
    }

    /// The expensive half: parallel per-unit encode + CRC on the shared
    /// pool ([`snapshot::encode_delta`]). Pure — runs entirely off the
    /// write path.
    pub fn encode(self) -> EncodedDelta {
        let (bytes, stats) = snapshot::encode_delta(&self.view);
        EncodedDelta {
            next_gen: self.next_gen,
            bytes,
            stats,
        }
    }
}

/// An encoded delta generation awaiting
/// [`PersistentStore::install_delta`].
#[derive(Debug)]
pub struct EncodedDelta {
    next_gen: u64,
    bytes: Vec<u8>,
    stats: DeltaStats,
}

impl EncodedDelta {
    /// Encoded size in bytes.
    pub fn bytes_len(&self) -> usize {
        self.bytes.len()
    }

    /// Shape statistics of the encoded delta.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }
}

/// Handle to an open store directory: owns the active WAL and knows how
/// to snapshot/compact. Implements [`Journal`] so it can be passed
/// straight to [`SmartStoreSystem::apply_change_journaled`].
#[derive(Debug)]
pub struct PersistentStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    /// Base (full-image) generation of the chain.
    base_generation: u64,
    /// Delta generations folded on top of the base, ascending.
    deltas: Vec<u64>,
    /// Active WAL generation. Equals the chain end right after a
    /// compaction; runs ahead of it between a cut and its install, and
    /// after a crash recovery that replayed extra segments.
    generation: u64,
    wal: WalWriter,
    opts: StoreOptions,
    /// First durability error hit inside the infallible [`Journal`]
    /// hook; surfaced by [`Self::take_journal_error`] / [`Self::sync`].
    journal_error: Option<PersistError>,
    /// Set when an append has failed: the WAL now has a *gap* relative
    /// to the in-memory system (memory kept mutating while frames were
    /// dropped), so further appends are refused — replaying a gapped
    /// log would silently reconstruct an inconsistent state. The only
    /// way forward is a compaction, whose snapshot of the full
    /// in-memory state makes the gapped log irrelevant.
    poisoned: bool,
    /// A cut is in flight (begin without install). A second concurrent
    /// cut would double-clear dirty tracking, so it is refused.
    cut_pending: bool,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:08}.snap"))
}

fn delta_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("delta-{generation:08}.snap"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:08}.log"))
}

fn write_manifest(vfs: &dyn Vfs, dir: &Path, base: u64, deltas: &[u64]) -> Result<()> {
    let mut payload = Enc::new();
    payload.u16(codec::FORMAT_VERSION);
    payload.u64(base);
    payload.u32(deltas.len() as u32);
    for &g in deltas {
        payload.u64(g);
    }
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MANIFEST_MAGIC);
    codec::put_record(&mut bytes, &payload.into_bytes());
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all_at(0, &bytes)?;
        f.sync()?;
    }
    vfs.rename(&tmp, &dir.join(MANIFEST))?;
    vfs.sync_dir(dir)?;
    Ok(())
}

/// Reads the manifest: `(base generation, delta chain)`. v1 manifests
/// (pre-differential) carry a single generation and an empty chain.
fn read_manifest(vfs: &dyn Vfs, dir: &Path) -> Result<(u64, Vec<u64>)> {
    let path = dir.join(MANIFEST);
    let bytes = match vfs.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(PersistError::NotFound(dir.to_path_buf()));
        }
        Err(e) => return Err(e.into()),
    };
    let corrupt = |offset: usize, reason: String| PersistError::Corrupt {
        path: path.clone(),
        offset: offset as u64,
        reason,
    };
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(corrupt(0, "bad manifest magic".into()));
    }
    let (payload, _) = match codec::get_record(&bytes, MANIFEST_MAGIC.len()) {
        Ok(r) => r,
        Err(FrameError::Eof) => return Err(corrupt(bytes.len(), "empty manifest".into())),
        Err(FrameError::Torn { offset, reason }) => return Err(corrupt(offset, reason)),
    };
    let mut d = Dec::new(payload);
    let version = d.u16().map_err(|e| corrupt(e.offset, e.reason))?;
    if version > codec::FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: codec::FORMAT_VERSION,
        });
    }
    let base = d.u64().map_err(|e| corrupt(e.offset, e.reason))?;
    if version < 2 {
        return Ok((base, Vec::new()));
    }
    let n = d.u32().map_err(|e| corrupt(e.offset, e.reason))? as usize;
    let mut deltas = Vec::with_capacity(n.min(1 << 16));
    let mut prev = base;
    for _ in 0..n {
        let g = d.u64().map_err(|e| corrupt(e.offset, e.reason))?;
        if g <= prev {
            return Err(corrupt(0, format!("delta chain not ascending at {g}")));
        }
        deltas.push(g);
        prev = g;
    }
    Ok((base, deltas))
}

/// Runs a fallible read-side step, retrying once on [`PersistError::Corrupt`].
/// Corruption seen on a read can be transient (a bit flipped on the
/// wire, not on the platter); re-reading distinguishes the two, and
/// recovery must not take destructive action — truncation, quarantine —
/// on evidence a second read contradicts.
fn retry_corrupt<T>(mut f: impl FnMut() -> Result<T>) -> Result<T> {
    match f() {
        Err(PersistError::Corrupt { .. }) => f(),
        other => other,
    }
}

/// [`wal::replay`] with the transient-corruption retry: a scan that
/// errored or stopped early is re-run once, and the second scan is
/// believed.
fn replay_settled(vfs: &dyn Vfs, path: &Path) -> Result<wal::WalReplay> {
    match wal::replay(vfs, path) {
        Ok(r) if r.torn.is_none() => Ok(r),
        _ => wal::replay(vfs, path),
    }
}

/// [`wal::probe`] with the transient-corruption retry.
fn probe_settled(vfs: &dyn Vfs, path: &Path) -> Result<wal::WalProbe> {
    match wal::probe(vfs, path) {
        Ok(wal::WalProbe::Garbage) | Err(PersistError::Corrupt { .. }) => wal::probe(vfs, path),
        other => other,
    }
}

/// Moves every WAL segment from generation `from` upward into
/// quarantine: their frames were journaled after a hole in the history
/// (a torn predecessor, or one that lost frames to a lying fsync), so
/// replaying them would reconstruct a state matching no prefix of the
/// change stream. Segments that never finished creation hold no
/// acknowledged frames and are simply removed. Best-effort; returns the
/// bytes preserved.
fn quarantine_successors(vfs: &dyn Vfs, dir: &Path, from: u64) -> u64 {
    let mut total = 0u64;
    let mut g = from;
    loop {
        let p = wal_path(dir, g);
        if !matches!(vfs.exists(&p), Ok(true)) {
            break;
        }
        if matches!(wal::probe(vfs, &p), Ok(wal::WalProbe::CreationArtifact)) {
            let _ = vfs.remove_file(&p);
        } else {
            match wal::quarantine_file(vfs, &p) {
                Ok(n) => total += n,
                Err(_) => break,
            }
        }
        g += 1;
    }
    total
}

impl PersistentStore {
    /// Creates a new store at `dir` (made if missing) holding a full
    /// snapshot of `system` as generation 1 with an empty WAL, and
    /// resets the system's dirty tracking — disk and memory now agree.
    /// Durability options come from `system.cfg.persist`.
    pub fn create(dir: &Path, system: &mut SmartStoreSystem) -> Result<(Self, SnapshotStats)> {
        Self::create_with(RealVfs::handle(), dir, system)
    }

    /// [`Self::create`] over an explicit [`Vfs`].
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        system: &mut SmartStoreSystem,
    ) -> Result<(Self, SnapshotStats)> {
        vfs.create_dir_all(dir)?;
        let opts = StoreOptions::from(&system.cfg.persist);
        let generation = 1;
        let stats = snapshot::write_snapshot(
            vfs.as_ref(),
            &system.to_parts(),
            &snapshot_path(dir, generation),
        )?;
        let wal = WalWriter::create(
            vfs.as_ref(),
            &wal_path(dir, generation),
            opts.wal_sync_every,
            0,
        )?;
        write_manifest(vfs.as_ref(), dir, generation, &[])?;
        system.clear_dirty();
        Ok((
            Self {
                vfs,
                dir: dir.to_path_buf(),
                base_generation: generation,
                deltas: Vec::new(),
                generation,
                wal,
                opts,
                journal_error: None,
                poisoned: false,
                cut_pending: false,
            },
            stats,
        ))
    }

    /// Opens an existing store: loads the manifest's base snapshot,
    /// folds the delta chain, replays the WAL segments from the chain
    /// end onward (salvaging and quarantining anything unverifiable),
    /// and returns the recovered system together with the store handle
    /// positioned to keep appending. The recovered system's dirty set
    /// is exactly the replayed footprint — the units the next delta
    /// must re-encode.
    pub fn open(dir: &Path) -> Result<(SmartStoreSystem, Self, RecoveryReport)> {
        Self::open_with(RealVfs::handle(), dir)
    }

    /// [`Self::open`] over an explicit [`Vfs`].
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<(SmartStoreSystem, Self, RecoveryReport)> {
        let v = vfs.as_ref();
        let (base, deltas) = retry_corrupt(|| read_manifest(v, dir))?;
        let snap_path = snapshot_path(dir, base);
        let mut parts = retry_corrupt(|| snapshot::load_snapshot(v, &snap_path))?;
        let mut snapshot_bytes = v.file_len(&snap_path)?;
        for &g in &deltas {
            let dpath = delta_path(dir, g);
            let delta = retry_corrupt(|| snapshot::load_delta(v, &dpath))?;
            snapshot_bytes += v.file_len(&dpath)?;
            snapshot::fold_delta(&mut parts, delta, &dpath)?;
        }
        let chain_end = deltas.last().copied().unwrap_or(base);
        let mut system = SmartStoreSystem::from_parts(parts);
        // Hash-family migration happens before WAL replay so the
        // replayed changes land in already-migrated filters. Rebuilding
        // a Bloom filter from its unit's file names never loses an
        // answer: filters only route probes, and exact name matching
        // sits behind them.
        let units_migrated = system.migrate_bloom_family();
        let opts = StoreOptions::from(&system.cfg.persist);

        let mut quarantined_bytes = 0u64;
        // The chain-end segment. The folded chain alone is a consistent
        // state, so a segment that never finished creation (missing
        // file, header truncated by a crash during `create`) is
        // recreated empty — no frame of it was ever acknowledged. A
        // segment whose header is *damaged* rather than truncated has
        // no replayable prefix at all: the whole file moves to
        // quarantine (with any successors, which cannot be applied past
        // the hole) before a fresh segment takes its place.
        let first = wal_path(dir, chain_end);
        match probe_settled(v, &first)? {
            wal::WalProbe::Valid { .. } => {}
            wal::WalProbe::CreationArtifact => {
                WalWriter::create(v, &first, opts.wal_sync_every, 0)?;
            }
            wal::WalProbe::Garbage => {
                quarantined_bytes += wal::quarantine_file(v, &first)?;
                quarantined_bytes += quarantine_successors(v, dir, chain_end + 1);
                WalWriter::create(v, &first, opts.wal_sync_every, 0)?;
            }
        }

        let mut active = chain_end;
        let mut active_replay = replay_settled(v, &first)?;
        let mut replayed_frames = 0usize;
        let mut wal_segments = 1usize;
        let mut dropped_tail_bytes = 0u64;
        loop {
            for frame in &active_replay.frames {
                system.apply_change(frame.change.clone());
            }
            replayed_frames += active_replay.frames.len();
            let wpath = wal_path(dir, active);
            if active_replay.torn.is_some() {
                // Salvage prefix-first: the verified frames just
                // replayed, the unverifiable tail moves aside. A torn
                // segment ends the history — anything journaled in a
                // later segment came after frames this one lost.
                dropped_tail_bytes += v.file_len(&wpath)?.saturating_sub(active_replay.good_bytes);
                quarantined_bytes += wal::quarantine_tail(v, &wpath, &active_replay)?;
                quarantined_bytes += quarantine_successors(v, dir, active + 1);
                break;
            }
            // A crash between a compaction cut and its install leaves
            // the sealed old segment *and* the fresh one live; walk the
            // contiguous run. The successor's header records how many
            // frames its predecessor held at the seal — a mismatch
            // means the predecessor lost durable frames afterwards (an
            // fsync that lied), and replaying the successor on top
            // would fabricate a state matching no prefix.
            let next_path = wal_path(dir, active + 1);
            match probe_settled(v, &next_path)? {
                wal::WalProbe::CreationArtifact => break,
                wal::WalProbe::Garbage => {
                    quarantined_bytes += quarantine_successors(v, dir, active + 1);
                    break;
                }
                wal::WalProbe::Valid { prev_frames }
                    if prev_frames != active_replay.frames.len() as u64 =>
                {
                    quarantined_bytes += quarantine_successors(v, dir, active + 1);
                    break;
                }
                wal::WalProbe::Valid { .. } => {
                    active_replay = replay_settled(v, &next_path)?;
                    active += 1;
                    wal_segments += 1;
                }
            }
        }
        let report = RecoveryReport {
            generation: chain_end,
            base_generation: base,
            deltas_folded: deltas.len(),
            snapshot_bytes,
            replayed_frames,
            wal_segments,
            dropped_tail_bytes,
            quarantined_bytes,
            units_migrated,
        };
        let wal = WalWriter::open_end(
            v,
            &wal_path(dir, active),
            opts.wal_sync_every,
            &active_replay,
        )?;
        sweep_orphans(v, dir, base, &deltas, chain_end, active);
        Ok((
            system,
            Self {
                vfs,
                dir: dir.to_path_buf(),
                base_generation: base,
                deltas,
                generation: active,
                wal,
                opts,
                journal_error: None,
                poisoned: false,
                cut_pending: false,
            },
            report,
        ))
    }

    /// Appends one change frame to the WAL (write-ahead: call *before*
    /// mutating the in-memory system; [`SmartStoreSystem::apply_change_journaled`]
    /// does exactly that). Refused once the store is poisoned by an
    /// earlier failed append — see [`Self::is_poisoned`].
    pub fn append(&mut self, group: NodeId, change: &Change) -> Result<u64> {
        if self.poisoned {
            return Err(PersistError::Io(std::io::Error::other(
                "journal poisoned by an earlier failed append (the log has a gap); \
                 compact to re-establish a consistent snapshot",
            )));
        }
        match self.wal.append(group, change) {
            Ok(seq) => Ok(seq),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Forces all appended frames to stable storage and surfaces any
    /// error the infallible [`Journal`] hook swallowed.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(e) = self.journal_error.take() {
            return Err(e);
        }
        self.wal.sync()
    }

    /// True when an append has failed and the WAL can no longer be
    /// trusted to be gap-free; only a compaction clears this.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// True once the WAL has outgrown the compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.wal.bytes() > self.opts.wal_compact_bytes
    }

    /// Compacts the WAL into the next snapshot generation, choosing the
    /// cheap path: a *delta* generation (re-encoding only the dirty
    /// units) while the chain is short and the churn footprint is a
    /// minority of the corpus, a full-image rewrite otherwise. This is
    /// the policy entry point [`crate::SystemPersist::apply_journaled`]
    /// uses.
    pub fn compact_incremental(
        &mut self,
        system: &mut SmartStoreSystem,
    ) -> Result<CompactionOutcome> {
        let n_units = system.units().len();
        let dirty = system.dirty_count();
        // Two states force the full path regardless of policy: an
        // abandoned in-flight cut (begin without install — e.g. an
        // encode worker died) and a poisoned store (a failed install
        // may have discarded dirty tracking, so a delta could silently
        // omit acknowledged churn). The full rewrite below captures
        // everything and resets both.
        let use_delta = !self.cut_pending
            && !self.poisoned
            && self.opts.max_delta_chain > 0
            && self.deltas.len() < self.opts.max_delta_chain
            && dirty * 2 < n_units;
        if use_delta {
            let cut = self.begin_delta_compaction(system)?;
            let encoded = cut.encode();
            Ok(CompactionOutcome::Delta(self.install_delta(encoded)?))
        } else {
            Ok(CompactionOutcome::Full(self.compact(system)?))
        }
    }

    /// The writer-side cut of a delta compaction, O(churn footprint):
    /// seals the current WAL segment, switches journaling to a fresh
    /// one, captures the copy-on-write view of the dirty units, and
    /// resets the system's dirty tracking (changes landing after the
    /// cut re-mark their units for the *next* delta). The expensive
    /// encode happens on the returned [`DeltaCompaction`] — on a worker
    /// thread if you like — while this store keeps accepting appends;
    /// finish with [`Self::install_delta`].
    pub fn begin_delta_compaction(
        &mut self,
        system: &mut SmartStoreSystem,
    ) -> Result<DeltaCompaction> {
        if self.cut_pending {
            return Err(PersistError::Io(std::io::Error::other(
                "a delta compaction cut is already in flight; install it first",
            )));
        }
        if self.poisoned {
            // A poisoned store may have lost dirty tracking to a failed
            // install — a delta cut here could silently omit
            // acknowledged churn. Only the full rewrite is sound.
            return Err(PersistError::Io(std::io::Error::other(
                "store is poisoned; only a full compact() re-establishes a consistent snapshot",
            )));
        }
        // Seal the old segment: every pre-cut frame durable before the
        // manifest can ever supersede them.
        self.wal.sync()?;
        let next = self.generation + 1;
        let new_wal = WalWriter::create(
            self.vfs.as_ref(),
            &wal_path(&self.dir, next),
            self.opts.wal_sync_every,
            // The successor records the sealed segment's frame count so
            // recovery can detect the sealed log shrinking afterwards
            // (a lying fsync) instead of replaying across the gap.
            self.wal.next_seq(),
        )?;
        let view = system.to_delta_parts();
        system.clear_dirty();
        self.wal = new_wal;
        self.generation = next;
        self.cut_pending = true;
        Ok(DeltaCompaction {
            next_gen: next,
            view,
        })
    }

    /// Installs an encoded delta generation: writes the delta file
    /// atomically, flips the manifest to the extended chain, and
    /// retires the superseded WAL segments. On failure the store is
    /// poisoned — the cut already cleared dirty tracking, so only a
    /// full compaction (which re-encodes everything) can guarantee a
    /// complete next generation — and the half-written artifacts are
    /// removed immediately rather than stranded until the next open's
    /// orphan sweep. (The next `open()` also heals this state on its
    /// own: the manifest still names the old chain, and the sealed +
    /// active segments replay every acknowledged change.)
    pub fn install_delta(&mut self, encoded: EncodedDelta) -> Result<DeltaStats> {
        if !self.cut_pending || encoded.next_gen != self.generation {
            return Err(PersistError::Io(std::io::Error::other(format!(
                "install_delta: generation {} does not match the in-flight cut",
                encoded.next_gen
            ))));
        }
        self.cut_pending = false;
        let next = encoded.next_gen;
        let prev_end = self.chain_end();
        let install = (|| -> Result<()> {
            snapshot::write_encoded(
                self.vfs.as_ref(),
                &encoded.bytes,
                &delta_path(&self.dir, next),
            )?;
            let mut chain = self.deltas.clone();
            chain.push(next);
            write_manifest(self.vfs.as_ref(), &self.dir, self.base_generation, &chain)?;
            self.deltas = chain;
            Ok(())
        })();
        if let Err(e) = install {
            self.poisoned = true;
            // Nothing references these: the manifest was never flipped
            // (or its tmp never renamed). Removing them now keeps the
            // directory clean for however long this process lives.
            let dpath = delta_path(&self.dir, next);
            let _ = self.vfs.remove_file(&dpath.with_extension("tmp"));
            let _ = self.vfs.remove_file(&dpath);
            let _ = self.vfs.remove_file(&self.dir.join("MANIFEST.tmp"));
            return Err(e);
        }
        // A poison present here necessarily arose *after* the cut
        // (begin refuses poisoned stores): the gap lives in the
        // still-active post-cut segment, which this install does not
        // supersede — it must survive. Only a full compaction heals it.
        if !self.poisoned {
            self.journal_error = None;
        }
        // Superseded segments are unreachable now; removal is
        // best-effort (the orphan sweep catches leftovers).
        for g in prev_end..next {
            let _ = self.vfs.remove_file(&wal_path(&self.dir, g));
        }
        Ok(encoded.stats)
    }

    /// Folds everything into a fresh *full* snapshot of `system` (which
    /// must be the state that *includes* every journaled change):
    /// writes generation `g+1`, flips the manifest to a single-element
    /// chain, deletes the old chain and WAL segments, and resets the
    /// system's dirty tracking. Because the new snapshot captures the
    /// full in-memory state, this also recovers a poisoned store — the
    /// gapped old log becomes irrelevant.
    pub fn compact(&mut self, system: &mut SmartStoreSystem) -> Result<SnapshotStats> {
        if !self.poisoned {
            // A gapped WAL cannot be synced meaningfully; skip straight
            // to the snapshot that supersedes it.
            self.wal.sync()?;
        }
        let next = self.generation + 1;
        let prev_end = self.chain_end();
        let stats = snapshot::write_snapshot(
            self.vfs.as_ref(),
            &system.to_parts(),
            &snapshot_path(&self.dir, next),
        )?;
        let new_wal = WalWriter::create(
            self.vfs.as_ref(),
            &wal_path(&self.dir, next),
            self.opts.wal_sync_every,
            0,
        )?;
        write_manifest(self.vfs.as_ref(), &self.dir, next, &[])?;
        let old_base = self.base_generation;
        let old_deltas = std::mem::take(&mut self.deltas);
        self.wal = new_wal;
        self.base_generation = next;
        self.generation = next;
        self.poisoned = false;
        self.cut_pending = false;
        self.journal_error = None;
        system.clear_dirty();
        // Old generations are unreachable now; removal is best-effort.
        let _ = self.vfs.remove_file(&snapshot_path(&self.dir, old_base));
        for g in old_deltas {
            let _ = self.vfs.remove_file(&delta_path(&self.dir, g));
        }
        for g in prev_end..next {
            let _ = self.vfs.remove_file(&wal_path(&self.dir, g));
        }
        Ok(stats)
    }

    /// The chain-end generation: last delta, or the base.
    fn chain_end(&self) -> u64 {
        self.deltas.last().copied().unwrap_or(self.base_generation)
    }

    /// Active WAL generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Base (full-image) generation of the snapshot chain.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Delta generations currently folded on top of the base.
    pub fn delta_chain(&self) -> &[u64] {
        &self.deltas
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Frames appended to the current WAL.
    pub fn wal_frames(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem this store runs on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The first error (if any) swallowed by the infallible [`Journal`]
    /// hook since the last call.
    pub fn take_journal_error(&mut self) -> Option<PersistError> {
        self.journal_error.take()
    }
}

impl Journal for PersistentStore {
    fn record(&mut self, group: NodeId, change: &Change) {
        match self.append(group, change) {
            Ok(_) => {}
            // Keep only the first cause; the poison flag set by
            // `append` guarantees no later frame can paper over the gap.
            Err(e) if self.journal_error.is_none() => self.journal_error = Some(e),
            Err(_) => {}
        }
    }
}

/// Best-effort cleanup of artifacts a crashed compaction can leave
/// behind: `*.tmp` files, snapshot/delta files outside the manifest
/// chain, and WAL segments outside the live `chain end ..= active`
/// run. Never touches the manifest or `.quarantine` side files.
fn sweep_orphans(
    vfs: &dyn Vfs,
    dir: &Path,
    base: u64,
    deltas: &[u64],
    chain_end: u64,
    active: u64,
) {
    let Ok(names) = vfs.list_dir(dir) else {
        return;
    };
    let keep: std::collections::HashSet<PathBuf> = std::iter::once(snapshot_path(dir, base))
        .chain(deltas.iter().map(|&g| delta_path(dir, g)))
        .chain((chain_end..=active).map(|g| wal_path(dir, g)))
        .collect();
    for name in names {
        let p = dir.join(&name);
        let managed = (name.starts_with("snapshot-") && name.ends_with(".snap"))
            || (name.starts_with("delta-") && name.ends_with(".snap"))
            || (name.starts_with("wal-") && name.ends_with(".log"));
        if name.ends_with(".tmp") || (managed && !keep.contains(&p)) {
            let _ = vfs.remove_file(&p);
        }
    }
}
