//! Error type of the persistence subsystem.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Anything that can go wrong saving or restoring a system.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A file exists but its contents are not a valid artifact:
    /// bad magic, checksum mismatch, impossible lengths, or references
    /// that do not resolve. Carries the byte offset where decoding
    /// stopped and a human-readable reason.
    Corrupt {
        /// File that failed to decode.
        path: PathBuf,
        /// Byte offset of the failure.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The artifact was written by an incompatible (newer) format
    /// version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// The store directory has no manifest — nothing was ever saved
    /// there (or the manifest was deleted).
    NotFound(PathBuf),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Corrupt {
                path,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "corrupt artifact {} at byte {offset}: {reason}",
                    path.display()
                )
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact format v{found} is newer than supported v{supported}"
                )
            }
            PersistError::NotFound(p) => {
                write!(f, "no persisted store at {}", p.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Subsystem result alias.
pub type Result<T> = std::result::Result<T, PersistError>;
