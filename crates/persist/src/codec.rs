//! Hand-rolled, versioned binary codec for the SmartStore domain types.
//!
//! Everything is little-endian and length-prefixed; floats travel as
//! their IEEE-754 bit patterns so round-trips are exact. On top of the
//! primitive layer sit encoders/decoders for the full domain —
//! [`FileMetadata`], [`StorageUnit`], the semantic R-tree arena,
//! [`IndexMapping`], version chains and [`SmartStoreConfig`] — plus the
//! shared checksummed *record* framing used by both snapshot files and
//! the write-ahead log:
//!
//! ```text
//! [len: u32][crc32(payload): u32][payload: len bytes]
//! ```
//!
//! The CRC is over the payload only, so a torn or bit-flipped record is
//! detected by the reader; what the caller does about it differs by
//! artifact (snapshots refuse to load, the WAL truncates its tail).

use smartstore::config::{PersistConfig, SmartStoreConfig};
use smartstore::mapping::IndexMapping;
use smartstore::tree::{NodeId, SemanticNode, TreeParts};
use smartstore::unit::StorageUnit;
use smartstore::versioning::{Change, Version, VersionStore};
use smartstore_bloom::{BloomFilter, HashFamily};
use smartstore_rtree::{RTreeConfig, Rect};
use smartstore_trace::{AttributeKind, FileMetadata, ATTR_DIMS};
use std::collections::HashMap;

/// Highest artifact format version this build reads and the version it
/// writes. v2 added differential snapshots: the manifest carries the
/// base + delta generation chain and the config carries
/// `max_delta_chain`. v3 added the Bloom hash-family tag to every
/// persisted filter and to the config; v2 images decode their filters
/// as [`HashFamily::Md5`] (the only family that existed then) and are
/// migrated in memory on open.
pub const FORMAT_VERSION: u16 = 3;

/// Upper bound on a single record's payload (sanity check against
/// garbage length prefixes).
pub const MAX_RECORD_BYTES: usize = 1 << 30;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — the checksum of every record.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// Append-only byte encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn f64s(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }

    pub fn usizes(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.usize(x);
        }
    }
}

/// Decode failure: where and why.
#[derive(Clone, Debug)]
pub struct DecodeError {
    /// Byte offset in the decoded buffer.
    pub offset: usize,
    /// Reason.
    pub reason: String,
}

impl DecodeError {
    fn new(offset: usize, reason: impl Into<String>) -> Self {
        Self {
            offset,
            reason: reason.into(),
        }
    }

    /// Public constructor for codecs layered on top of this one (the
    /// `smartstore-service` wire protocol reuses the primitive layer
    /// and needs to report its own tag errors).
    pub fn new_at(offset: usize, reason: impl Into<String>) -> Self {
        Self::new(offset, reason)
    }
}

/// Decode result alias.
pub type DecResult<T> = std::result::Result<T, DecodeError>;

/// Cursor-based byte decoder over a borrowed buffer.
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `data` starting at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current cursor offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the buffer is fully consumed.
    pub fn finish(&self) -> DecResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::new(
                self.pos,
                format!("{} trailing bytes", self.remaining()),
            ))
        }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::new(
                self.pos,
                format!("need {n} bytes, {} remain", self.remaining()),
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> DecResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    pub fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> DecResult<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    pub fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub fn usize(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::new(self.pos, format!("usize overflow: {v}")))
    }

    pub fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::new(self.pos - 1, format!("bad bool byte {b}"))),
        }
    }

    pub fn bytes(&mut self) -> DecResult<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub fn str(&mut self) -> DecResult<String> {
        let at = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| DecodeError::new(at, format!("invalid utf-8: {e}")))
    }

    pub fn f64s(&mut self) -> DecResult<Vec<f64>> {
        let n = self.u32()? as usize;
        self.check_count(n, 8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    pub fn usizes(&mut self) -> DecResult<Vec<usize>> {
        let n = self.u32()? as usize;
        self.check_count(n, 8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    /// Guards count prefixes against garbage: `n` elements of at least
    /// `min_elem_bytes` each must fit in the remaining buffer.
    fn check_count(&self, n: usize, min_elem_bytes: usize) -> DecResult<()> {
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(DecodeError::new(
                self.pos,
                format!(
                    "implausible element count {n} for {} remaining bytes",
                    self.remaining()
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// Why a record could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Clean end of buffer: no bytes of a further record present.
    Eof,
    /// A partial or corrupt record: torn length/checksum header,
    /// truncated payload, or checksum mismatch.
    Torn {
        /// Offset of the bad record's first byte.
        offset: usize,
        /// Reason.
        reason: String,
    },
}

/// Appends one checksummed record to `out`.
pub fn put_record(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_RECORD_BYTES, "record too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the record at `pos`, returning `(payload, next_pos)`.
pub fn get_record(data: &[u8], pos: usize) -> std::result::Result<(&[u8], usize), FrameError> {
    if pos == data.len() {
        return Err(FrameError::Eof);
    }
    if data.len() - pos < 8 {
        return Err(FrameError::Torn {
            offset: pos,
            reason: "torn record header".into(),
        });
    }
    let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
    let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
    if len > MAX_RECORD_BYTES {
        return Err(FrameError::Torn {
            offset: pos,
            reason: format!("implausible record length {len}"),
        });
    }
    if data.len() - pos - 8 < len {
        return Err(FrameError::Torn {
            offset: pos,
            reason: "truncated record payload".into(),
        });
    }
    let payload = &data[pos + 8..pos + 8 + len];
    let actual = crc32(payload);
    if actual != crc {
        return Err(FrameError::Torn {
            offset: pos,
            reason: format!("checksum mismatch (stored {crc:08x}, computed {actual:08x})"),
        });
    }
    Ok((payload, pos + 8 + len))
}

// ---------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------

/// Encodes one file-metadata record.
pub fn put_file(e: &mut Enc, f: &FileMetadata) {
    e.u64(f.file_id);
    e.str(&f.name);
    e.str(&f.dir);
    e.u32(f.owner);
    e.u64(f.size);
    e.f64(f.ctime);
    e.f64(f.mtime);
    e.f64(f.atime);
    e.u64(f.read_bytes);
    e.u64(f.write_bytes);
    e.u32(f.access_count);
    e.u32(f.proc_id);
    match f.truth_cluster {
        Some(c) => {
            e.bool(true);
            e.u32(c);
        }
        None => e.bool(false),
    }
}

/// Decodes one file-metadata record.
pub fn get_file(d: &mut Dec) -> DecResult<FileMetadata> {
    Ok(FileMetadata {
        file_id: d.u64()?,
        name: d.str()?,
        dir: d.str()?,
        owner: d.u32()?,
        size: d.u64()?,
        ctime: d.f64()?,
        mtime: d.f64()?,
        atime: d.f64()?,
        read_bytes: d.u64()?,
        write_bytes: d.u64()?,
        access_count: d.u32()?,
        proc_id: d.u32()?,
        truth_cluster: if d.bool()? { Some(d.u32()?) } else { None },
    })
}

/// Bloom hash-family tags of the v3 filter/config encoding.
pub const FAMILY_MD5: u8 = 0;
pub const FAMILY_FAST: u8 = 1;

/// Encodes a Bloom hash-family tag. The only writer of the `FAMILY_*`
/// tag bytes; [`get_family`] is the only reader.
pub fn put_family(e: &mut Enc, f: HashFamily) {
    e.u8(match f {
        HashFamily::Md5 => FAMILY_MD5,
        HashFamily::Fast => FAMILY_FAST,
    });
}

/// Decodes a Bloom hash-family tag.
pub fn get_family(d: &mut Dec) -> DecResult<HashFamily> {
    let at = d.pos();
    match d.u8()? {
        FAMILY_MD5 => Ok(HashFamily::Md5),
        FAMILY_FAST => Ok(HashFamily::Fast),
        t => Err(DecodeError::new(at, format!("unknown hash family {t}"))),
    }
}

/// Encodes a Bloom filter (geometry + hash family + raw words + insert
/// count).
pub fn put_bloom(e: &mut Enc, b: &BloomFilter) {
    e.usize(b.n_bits());
    e.usize(b.n_hashes());
    e.usize(b.inserted());
    put_family(e, b.family());
    e.u32(b.words().len() as u32);
    for &w in b.words() {
        e.u64(w);
    }
}

/// Decodes a Bloom filter. `version` is the containing artifact's
/// format version: v2 images predate the family tag, and every filter
/// written back then used the paper's MD5 derivation.
pub fn get_bloom(d: &mut Dec, version: u16) -> DecResult<BloomFilter> {
    let at = d.pos();
    let n_bits = d.usize()?;
    let n_hashes = d.usize()?;
    let inserted = d.usize()?;
    let family = if version >= 3 {
        get_family(d)?
    } else {
        HashFamily::Md5
    };
    let n_words = d.u32()? as usize;
    if n_bits == 0 || n_hashes == 0 || n_words != n_bits.div_ceil(64) {
        return Err(DecodeError::new(
            at,
            format!("bad bloom geometry {n_bits}/{n_hashes}/{n_words}"),
        ));
    }
    let words: Vec<u64> = (0..n_words).map(|_| d.u64()).collect::<DecResult<_>>()?;
    Ok(BloomFilter::from_raw(
        n_bits, n_hashes, inserted, words, family,
    ))
}

/// Encodes an optional MBR.
pub fn put_opt_rect(e: &mut Enc, r: Option<&Rect>) {
    match r {
        Some(r) => {
            e.bool(true);
            e.f64s(r.lo());
            e.f64s(r.hi());
        }
        None => e.bool(false),
    }
}

/// Decodes an optional MBR.
pub fn get_opt_rect(d: &mut Dec) -> DecResult<Option<Rect>> {
    if !d.bool()? {
        return Ok(None);
    }
    let at = d.pos();
    let lo = d.f64s()?;
    let hi = d.f64s()?;
    if lo.len() != hi.len() || lo.is_empty() {
        return Err(DecodeError::new(
            at,
            format!("bad rect dims {}/{}", lo.len(), hi.len()),
        ));
    }
    Ok(Some(Rect::new(lo, hi)))
}

/// Encodes a storage unit: id, files, and the *saved* summaries
/// (Bloom/centroid/MBR may legitimately be stale relative to the files;
/// that staleness is part of the system's query-visible state).
pub fn put_unit(e: &mut Enc, u: &StorageUnit) {
    e.usize(u.id);
    e.u32(u.files().len() as u32);
    for f in u.files() {
        put_file(e, f);
    }
    put_bloom(e, u.bloom());
    e.f64s(u.centroid());
    put_opt_rect(e, u.mbr());
}

/// Decodes a storage unit from a `version`-format artifact.
pub fn get_unit(d: &mut Dec, version: u16) -> DecResult<StorageUnit> {
    let id = d.usize()?;
    let n = d.u32()? as usize;
    let mut files = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        files.push(get_file(d)?);
    }
    let bloom = get_bloom(d, version)?;
    let at = d.pos();
    let centroid = d.f64s()?;
    if centroid.len() != ATTR_DIMS {
        return Err(DecodeError::new(
            at,
            format!("centroid dims {}", centroid.len()),
        ));
    }
    let mbr = get_opt_rect(d)?;
    Ok(StorageUnit::from_parts(id, files, bloom, centroid, mbr))
}

fn put_opt_usize(e: &mut Enc, v: Option<usize>) {
    match v {
        Some(x) => {
            e.bool(true);
            e.usize(x);
        }
        None => e.bool(false),
    }
}

fn get_opt_usize(d: &mut Dec) -> DecResult<Option<usize>> {
    if d.bool()? {
        Ok(Some(d.usize()?))
    } else {
        Ok(None)
    }
}

/// Encodes one semantic R-tree node.
pub fn put_node(e: &mut Enc, n: &SemanticNode) {
    e.usize(n.id);
    e.u32(n.level);
    put_opt_rect(e, n.mbr.as_ref());
    e.f64s(&n.centroid);
    put_bloom(e, &n.bloom);
    e.usizes(&n.children);
    put_opt_usize(e, n.parent);
    put_opt_usize(e, n.unit);
    e.usize(n.leaf_count);
}

/// Decodes one semantic R-tree node from a `version`-format artifact.
pub fn get_node(d: &mut Dec, version: u16) -> DecResult<SemanticNode> {
    Ok(SemanticNode {
        id: d.usize()?,
        level: d.u32()?,
        mbr: get_opt_rect(d)?,
        centroid: d.f64s()?,
        bloom: get_bloom(d, version)?,
        children: d.usizes()?,
        parent: get_opt_usize(d)?,
        unit: get_opt_usize(d)?,
        leaf_count: d.usize()?,
    })
}

/// Encodes the whole tree arena.
pub fn put_tree(e: &mut Enc, t: &TreeParts) {
    e.u32(t.nodes.len() as u32);
    for n in &t.nodes {
        put_node(e, n);
    }
    e.usize(t.root);
    e.usizes(&t.free);
}

/// Decodes the whole tree arena, validating the root reference.
pub fn get_tree(d: &mut Dec, version: u16) -> DecResult<TreeParts> {
    let n = d.u32()? as usize;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        nodes.push(get_node(d, version)?);
    }
    let at = d.pos();
    let root = d.usize()?;
    let free = d.usizes()?;
    if root >= nodes.len() {
        return Err(DecodeError::new(
            at,
            format!("root {root} out of {} nodes", nodes.len()),
        ));
    }
    Ok(TreeParts { nodes, root, free })
}

/// Encodes the index-unit mapping (sorted for deterministic bytes).
pub fn put_mapping(e: &mut Enc, m: &IndexMapping) {
    // lint:allow(D002) -- collected then sorted below; map order never reaches the bytes
    let mut pairs: Vec<(NodeId, usize)> = m.assignment.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable();
    e.u32(pairs.len() as u32);
    for (node, unit) in pairs {
        e.usize(node);
        e.usize(unit);
    }
    e.usizes(&m.root_replicas);
}

/// Decodes the index-unit mapping.
pub fn get_mapping(d: &mut Dec) -> DecResult<IndexMapping> {
    let n = d.u32()? as usize;
    d.check_count(n, 16)?;
    let mut assignment = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = d.usize()?;
        let unit = d.usize()?;
        assignment.insert(node, unit);
    }
    let root_replicas = d.usizes()?;
    Ok(IndexMapping {
        assignment,
        root_replicas,
    })
}

/// Change tags of the WAL/version encoding.
const CHANGE_INSERT: u8 = 0;
const CHANGE_DELETE: u8 = 1;
const CHANGE_MODIFY: u8 = 2;

/// Encodes one metadata change.
pub fn put_change(e: &mut Enc, c: &Change) {
    match c {
        Change::Insert(f) => {
            e.u8(CHANGE_INSERT);
            put_file(e, f);
        }
        Change::Delete(id) => {
            e.u8(CHANGE_DELETE);
            e.u64(*id);
        }
        Change::Modify(f) => {
            e.u8(CHANGE_MODIFY);
            put_file(e, f);
        }
    }
}

/// Decodes one metadata change.
pub fn get_change(d: &mut Dec) -> DecResult<Change> {
    let at = d.pos();
    match d.u8()? {
        CHANGE_INSERT => Ok(Change::Insert(get_file(d)?)),
        CHANGE_DELETE => Ok(Change::Delete(d.u64()?)),
        CHANGE_MODIFY => Ok(Change::Modify(get_file(d)?)),
        t => Err(DecodeError::new(at, format!("unknown change tag {t}"))),
    }
}

fn put_version(e: &mut Enc, v: &Version) {
    e.u32(v.changes.len() as u32);
    for c in &v.changes {
        put_change(e, c);
    }
}

fn get_version(d: &mut Dec) -> DecResult<Version> {
    let n = d.u32()? as usize;
    d.check_count(n, 1)?;
    let mut changes = Vec::with_capacity(n);
    for _ in 0..n {
        changes.push(get_change(d)?);
    }
    Ok(Version { changes })
}

/// Encodes one group's version chain.
pub fn put_version_store(e: &mut Enc, vs: &VersionStore) {
    e.u32(vs.ratio());
    e.u32(vs.sealed_versions().len() as u32);
    for v in vs.sealed_versions() {
        put_version(e, v);
    }
    put_version(e, vs.open_version());
}

/// Decodes one group's version chain.
pub fn get_version_store(d: &mut Dec) -> DecResult<VersionStore> {
    let at = d.pos();
    let ratio = d.u32()?;
    if ratio == 0 {
        return Err(DecodeError::new(at, "zero version ratio"));
    }
    let n = d.u32()? as usize;
    d.check_count(n, 4)?;
    let mut sealed = Vec::with_capacity(n);
    for _ in 0..n {
        sealed.push(get_version(d)?);
    }
    let open = get_version(d)?;
    Ok(VersionStore::from_parts(ratio, sealed, open))
}

/// Encodes the full configuration.
pub fn put_config(e: &mut Enc, c: &SmartStoreConfig) {
    e.usize(c.lsi_rank);
    e.u32(c.grouping_dims.len() as u32);
    for &k in &c.grouping_dims {
        e.u8(k.index() as u8);
    }
    e.f64(c.admission_threshold);
    e.f64(c.threshold_decay);
    e.usize(c.rtree.max_entries);
    e.usize(c.rtree.min_entries);
    e.usize(c.bloom_bits);
    e.usize(c.bloom_hashes);
    put_family(e, c.bloom_family);
    e.f64(c.autoconfig_threshold);
    e.f64(c.lazy_update_threshold);
    e.u32(c.version_ratio);
    e.usize(c.persist.wal_sync_every);
    e.u64(c.persist.wal_compact_bytes);
    e.usize(c.persist.max_delta_chain);
}

/// Decodes the full configuration. `version` is the containing
/// artifact's format version: v1 images predate `max_delta_chain`, so
/// for them the field is not read and the default chain policy applies
/// — reopening a v1 store upgrades it to differential compaction (its
/// next manifest flip writes v2). Likewise, v2 images predate
/// `bloom_family`: the *desired* family decodes as the build default
/// (the fast family), while the v2 filters themselves decode as MD5 —
/// the mismatch is what triggers the in-memory migration on open.
pub fn get_config(d: &mut Dec, version: u16) -> DecResult<SmartStoreConfig> {
    let lsi_rank = d.usize()?;
    let n_dims = d.u32()? as usize;
    d.check_count(n_dims, 1)?;
    let mut grouping_dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        let at = d.pos();
        let i = d.u8()? as usize;
        let k = *AttributeKind::ALL
            .get(i)
            .ok_or_else(|| DecodeError::new(at, format!("bad attribute index {i}")))?;
        grouping_dims.push(k);
    }
    Ok(SmartStoreConfig {
        lsi_rank,
        grouping_dims,
        admission_threshold: d.f64()?,
        threshold_decay: d.f64()?,
        rtree: RTreeConfig {
            max_entries: d.usize()?,
            min_entries: d.usize()?,
        },
        bloom_bits: d.usize()?,
        bloom_hashes: d.usize()?,
        bloom_family: if version >= 3 {
            get_family(d)?
        } else {
            HashFamily::default()
        },
        autoconfig_threshold: d.f64()?,
        lazy_update_threshold: d.f64()?,
        version_ratio: d.u32()?,
        persist: PersistConfig {
            wal_sync_every: d.usize()?,
            wal_compact_bytes: d.u64()?,
            max_delta_chain: if version >= 2 {
                d.usize()?
            } else {
                PersistConfig::default().max_delta_chain
            },
        },
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn meta(id: u64) -> FileMetadata {
        FileMetadata {
            file_id: id,
            name: format!("file_{id}.dat"),
            dir: "/proj/x".into(),
            owner: 3,
            size: 1 << id.min(30),
            ctime: 10.5 * id as f64,
            mtime: 11.5 * id as f64,
            atime: 12.5 * id as f64,
            read_bytes: 400 + id,
            write_bytes: 7 * id,
            access_count: 2 + id as u32,
            proc_id: (id % 5) as u32,
            truth_cluster: if id.is_multiple_of(2) {
                Some(id as u32)
            } else {
                None
            },
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(65535);
        e.u32(123_456);
        e.u64(u64::MAX - 3);
        e.f64(-0.125);
        e.bool(true);
        e.str("héllo");
        e.f64s(&[1.0, f64::MAX, f64::MIN_POSITIVE]);
        e.usizes(&[0, 5, 1 << 40]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 65535);
        assert_eq!(d.u32().unwrap(), 123_456);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.f64s().unwrap(), vec![1.0, f64::MAX, f64::MIN_POSITIVE]);
        assert_eq!(d.usizes().unwrap(), vec![0, 5, 1 << 40]);
        d.finish().unwrap();
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut e = Enc::new();
        e.str("hello world");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..bytes.len() - 1]);
        assert!(d.str().is_err());
    }

    #[test]
    fn file_roundtrip() {
        for id in [0u64, 1, 17, 900] {
            let f = meta(id);
            let mut e = Enc::new();
            put_file(&mut e, &f);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(get_file(&mut d).unwrap(), f);
            d.finish().unwrap();
        }
    }

    #[test]
    fn bloom_roundtrip_preserves_bits() {
        for family in [HashFamily::Md5, HashFamily::Fast] {
            let mut b = BloomFilter::with_family(512, 5, family);
            for i in 0..40 {
                b.insert(format!("key{i}").as_bytes());
            }
            let mut e = Enc::new();
            put_bloom(&mut e, &b);
            let bytes = e.into_bytes();
            let back = get_bloom(&mut Dec::new(&bytes), FORMAT_VERSION).unwrap();
            assert_eq!(back, b);
            assert_eq!(back.family(), family);
            for i in 0..40 {
                assert!(back.contains(format!("key{i}").as_bytes()));
            }
        }
    }

    #[test]
    fn family_tag_roundtrip_and_rejects_unknown() {
        for f in [HashFamily::Md5, HashFamily::Fast] {
            let mut e = Enc::new();
            put_family(&mut e, f);
            let bytes = e.into_bytes();
            assert_eq!(get_family(&mut Dec::new(&bytes)).unwrap(), f);
        }
        assert!(get_family(&mut Dec::new(&[0x7f])).is_err());
    }

    #[test]
    fn v2_bloom_bytes_decode_as_md5() {
        // A v2 filter record has no family byte; re-encode one by hand
        // and check it decodes as the MD5 family.
        let mut b = BloomFilter::with_family(128, 3, HashFamily::Md5);
        b.insert(b"old_file");
        let mut e = Enc::new();
        e.usize(b.n_bits());
        e.usize(b.n_hashes());
        e.usize(b.inserted());
        e.u32(b.words().len() as u32);
        for &w in b.words() {
            e.u64(w);
        }
        let bytes = e.into_bytes();
        let back = get_bloom(&mut Dec::new(&bytes), 2).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.family(), HashFamily::Md5);
        assert!(back.contains(b"old_file"));
    }

    #[test]
    fn change_roundtrip() {
        for c in [
            Change::Insert(meta(4)),
            Change::Delete(99),
            Change::Modify(meta(5)),
        ] {
            let mut e = Enc::new();
            put_change(&mut e, &c);
            let bytes = e.into_bytes();
            assert_eq!(get_change(&mut Dec::new(&bytes)).unwrap(), c);
        }
    }

    #[test]
    fn version_store_roundtrip() {
        let mut vs = VersionStore::new(3);
        for i in 0..10 {
            vs.record(Change::Modify(meta(i)));
        }
        vs.record(Change::Delete(2));
        let mut e = Enc::new();
        put_version_store(&mut e, &vs);
        let bytes = e.into_bytes();
        let back = get_version_store(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.ratio(), vs.ratio());
        assert_eq!(back.version_count(), vs.version_count());
        assert_eq!(back.change_count(), vs.change_count());
        let (a, sa) = back.effective_changes();
        let (b, sb) = vs.effective_changes();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn config_roundtrip() {
        let c = SmartStoreConfig {
            lsi_rank: 4,
            grouping_dims: vec![AttributeKind::Size, AttributeKind::ProcessId],
            bloom_family: HashFamily::Md5,
            persist: PersistConfig {
                wal_sync_every: 7,
                ..PersistConfig::default()
            },
            ..SmartStoreConfig::default()
        };
        let mut e = Enc::new();
        put_config(&mut e, &c);
        let bytes = e.into_bytes();
        let back = get_config(&mut Dec::new(&bytes), FORMAT_VERSION).unwrap();
        assert_eq!(back.lsi_rank, 4);
        assert_eq!(back.grouping_dims, c.grouping_dims);
        assert_eq!(back.bloom_family, HashFamily::Md5);
        assert_eq!(back.persist, c.persist);
        assert_eq!(back.version_ratio, c.version_ratio);
    }

    #[test]
    fn records_frame_and_verify() {
        let mut buf = Vec::new();
        put_record(&mut buf, b"alpha");
        put_record(&mut buf, b"");
        put_record(&mut buf, b"beta-beta");
        let (p1, n1) = get_record(&buf, 0).unwrap();
        assert_eq!(p1, b"alpha");
        let (p2, n2) = get_record(&buf, n1).unwrap();
        assert_eq!(p2, b"");
        let (p3, n3) = get_record(&buf, n2).unwrap();
        assert_eq!(p3, b"beta-beta");
        assert_eq!(get_record(&buf, n3), Err(FrameError::Eof));
    }

    #[test]
    fn torn_and_corrupt_records_detected() {
        let mut buf = Vec::new();
        put_record(&mut buf, b"payload-payload");
        // Truncated payload.
        let torn = &buf[..buf.len() - 3];
        assert!(matches!(get_record(torn, 0), Err(FrameError::Torn { .. })));
        // Bit flip in payload.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            get_record(&flipped, 0),
            Err(FrameError::Torn { .. })
        ));
        // Garbage length.
        let mut bad_len = buf;
        bad_len[3] = 0xFF;
        assert!(matches!(
            get_record(&bad_len, 0),
            Err(FrameError::Torn { .. })
        ));
    }
}
