//! Point-in-time snapshots of a whole [`SmartStoreSystem`].
//!
//! A snapshot file is a header followed by checksummed records (see
//! [`crate::codec`]), one section per subsystem:
//!
//! ```text
//! magic "SSSNAP\x00" + u16 format version
//! record HEADER   — counts, flags, maintenance counters
//! record CONFIG   — SmartStoreConfig
//! record UNIT ×n  — one per storage unit (files + saved summaries)
//! record TREE     — semantic R-tree node arena
//! record MAPPING  — index-unit → storage-unit mapping
//! record VERSIONS — per-group version chains
//! record PENDING  — per-group lazy-update counters
//! record END      — explicit end marker
//! ```
//!
//! Unlike the WAL, a snapshot is all-or-nothing: any corruption —
//! including a missing END marker from a torn write — fails the load.
//! Writers therefore go through a temp file + `fsync` + atomic rename,
//! so a crash mid-write can never install a partial snapshot.

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use rayon::prelude::*;
use smartstore::system::SystemParts;
use smartstore::tree::NodeId;
use smartstore::versioning::VersionStore;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Magic prefix of snapshot files (7 bytes + 1 reserved).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SSSNAP\x00\x00";

const SEC_HEADER: u8 = 0x01;
const SEC_CONFIG: u8 = 0x02;
const SEC_UNIT: u8 = 0x03;
const SEC_TREE: u8 = 0x04;
const SEC_MAPPING: u8 = 0x05;
const SEC_VERSIONS: u8 = 0x06;
const SEC_PENDING: u8 = 0x07;
const SEC_END: u8 = 0xFF;

/// Size/shape statistics of a written snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotStats {
    /// Total file bytes.
    pub bytes: u64,
    /// Storage units captured.
    pub n_units: usize,
    /// File-metadata records captured.
    pub n_files: usize,
    /// Semantic R-tree arena nodes captured.
    pub n_nodes: usize,
}

/// Serializes `parts` into snapshot bytes.
pub fn encode_snapshot(parts: &SystemParts) -> (Vec<u8>, SnapshotStats) {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&codec::FORMAT_VERSION.to_le_bytes());

    let n_files: usize = parts.units.iter().map(|u| u.len()).sum();

    let mut header = Enc::new();
    header.u8(SEC_HEADER);
    header.usize(parts.units.len());
    header.usize(n_files);
    header.bool(parts.versioning_enabled);
    header.u64(parts.maintenance_messages);
    header.u64(parts.reseed);
    codec::put_record(&mut out, &header.into_bytes());

    let mut cfg = Enc::new();
    cfg.u8(SEC_CONFIG);
    codec::put_config(&mut cfg, &parts.cfg);
    codec::put_record(&mut out, &cfg.into_bytes());

    // Unit records dominate snapshot bytes; encode + CRC each one in
    // parallel and splice the framed records back in unit order —
    // record framing is self-contained, so the byte stream is
    // identical to the sequential encoding.
    let unit_records: Vec<Vec<u8>> = parts
        .units
        .par_iter()
        .map(|u| {
            let mut e = Enc::new();
            e.u8(SEC_UNIT);
            codec::put_unit(&mut e, u);
            let mut rec = Vec::new();
            codec::put_record(&mut rec, &e.into_bytes());
            rec
        })
        .collect();
    let unit_bytes: usize = unit_records.iter().map(|r| r.len()).sum();
    out.reserve(unit_bytes);
    for rec in &unit_records {
        out.extend_from_slice(rec);
    }

    let mut tree = Enc::new();
    tree.u8(SEC_TREE);
    codec::put_tree(&mut tree, &parts.tree);
    codec::put_record(&mut out, &tree.into_bytes());

    let mut mapping = Enc::new();
    mapping.u8(SEC_MAPPING);
    codec::put_mapping(&mut mapping, &parts.mapping);
    codec::put_record(&mut out, &mapping.into_bytes());

    let mut versions = Enc::new();
    versions.u8(SEC_VERSIONS);
    versions.u32(parts.versions.len() as u32);
    for (group, vs) in &parts.versions {
        versions.usize(*group);
        codec::put_version_store(&mut versions, vs);
    }
    codec::put_record(&mut out, &versions.into_bytes());

    let mut pending = Enc::new();
    pending.u8(SEC_PENDING);
    pending.u32(parts.pending.len() as u32);
    for (group, count) in &parts.pending {
        pending.usize(*group);
        pending.usize(*count);
    }
    codec::put_record(&mut out, &pending.into_bytes());

    codec::put_record(&mut out, &[SEC_END]);

    let stats = SnapshotStats {
        bytes: out.len() as u64,
        n_units: parts.units.len(),
        n_files,
        n_nodes: parts.tree.nodes.len(),
    };
    (out, stats)
}

/// Writes `parts` to `path` atomically: temp file in the same
/// directory, `fsync`, rename over the target, `fsync` the directory.
pub fn write_snapshot(parts: &SystemParts, path: &Path) -> Result<SnapshotStats> {
    let (bytes, stats) = encode_snapshot(parts);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Ok(d) = fs::File::open(dir) {
        // Directory fsync makes the rename durable; best-effort on
        // filesystems that reject directory syncs.
        let _ = d.sync_all();
    }
    Ok(stats)
}

fn corrupt(path: &Path, offset: usize, reason: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        offset: offset as u64,
        reason: reason.into(),
    }
}

/// Decodes a snapshot back into [`SystemParts`]. Fails on *any*
/// corruption — snapshots are written atomically, so a bad snapshot is
/// a real integrity problem, not an expected crash artifact.
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<SystemParts> {
    if bytes.len() < 10 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, 0, "bad snapshot magic"));
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version > codec::FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: codec::FORMAT_VERSION,
        });
    }
    let mut pos = 10usize;
    let next = |pos: &mut usize| -> Result<&[u8]> {
        match codec::get_record(bytes, *pos) {
            Ok((payload, np)) => {
                let at = *pos;
                *pos = np;
                if payload.is_empty() {
                    return Err(corrupt(path, at, "empty record"));
                }
                Ok(payload)
            }
            Err(FrameError::Eof) => Err(corrupt(path, *pos, "unexpected end of snapshot")),
            Err(FrameError::Torn { offset, reason }) => Err(corrupt(path, offset, reason)),
        }
    };
    let dec_err = |e: codec::DecodeError| corrupt(path, e.offset, e.reason);

    // HEADER
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_HEADER {
        return Err(corrupt(path, pos, "expected header section"));
    }
    let n_units = d.usize().map_err(dec_err)?;
    let _n_files = d.usize().map_err(dec_err)?;
    let versioning_enabled = d.bool().map_err(dec_err)?;
    let maintenance_messages = d.u64().map_err(dec_err)?;
    let reseed = d.u64().map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // CONFIG
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_CONFIG {
        return Err(corrupt(path, pos, "expected config section"));
    }
    let cfg = codec::get_config(&mut d).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // UNITS
    let mut units = Vec::with_capacity(n_units.min(1 << 20));
    for _ in 0..n_units {
        let payload = next(&mut pos)?;
        let mut d = Dec::new(payload);
        if d.u8().map_err(dec_err)? != SEC_UNIT {
            return Err(corrupt(path, pos, "expected unit section"));
        }
        units.push(codec::get_unit(&mut d).map_err(dec_err)?);
        d.finish().map_err(dec_err)?;
    }

    // TREE
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_TREE {
        return Err(corrupt(path, pos, "expected tree section"));
    }
    let tree = codec::get_tree(&mut d).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // MAPPING
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_MAPPING {
        return Err(corrupt(path, pos, "expected mapping section"));
    }
    let mapping = codec::get_mapping(&mut d).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // VERSIONS
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_VERSIONS {
        return Err(corrupt(path, pos, "expected versions section"));
    }
    let n_groups = d.u32().map_err(dec_err)? as usize;
    let mut versions: Vec<(NodeId, VersionStore)> = Vec::with_capacity(n_groups.min(1 << 20));
    for _ in 0..n_groups {
        let g = d.usize().map_err(dec_err)?;
        let vs = codec::get_version_store(&mut d).map_err(dec_err)?;
        versions.push((g, vs));
    }
    d.finish().map_err(dec_err)?;

    // PENDING
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_PENDING {
        return Err(corrupt(path, pos, "expected pending section"));
    }
    let n_pending = d.u32().map_err(dec_err)? as usize;
    let mut pending: Vec<(NodeId, usize)> = Vec::with_capacity(n_pending.min(1 << 20));
    for _ in 0..n_pending {
        let g = d.usize().map_err(dec_err)?;
        let c = d.usize().map_err(dec_err)?;
        pending.push((g, c));
    }
    d.finish().map_err(dec_err)?;

    // END
    let payload = next(&mut pos)?;
    if payload != [SEC_END] {
        return Err(corrupt(path, pos, "expected end marker"));
    }
    match codec::get_record(bytes, pos) {
        Err(FrameError::Eof) => {}
        _ => return Err(corrupt(path, pos, "trailing data after end marker")),
    }

    // Referential sanity: every leaf's unit id must exist.
    let unit_ids: std::collections::HashSet<usize> = units.iter().map(|u| u.id).collect();
    for n in &tree.nodes {
        if let Some(u) = n.unit {
            if n.level == 0 && !tree.free.contains(&n.id) && !unit_ids.contains(&u) {
                return Err(corrupt(
                    path,
                    0,
                    format!("tree leaf references missing unit {u}"),
                ));
            }
        }
    }

    Ok(SystemParts {
        cfg,
        units,
        tree,
        mapping,
        versions,
        pending,
        versioning_enabled,
        maintenance_messages,
        reseed,
    })
}

/// Loads a snapshot file.
pub fn load_snapshot(path: &Path) -> Result<SystemParts> {
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes, path)
}
