//! Point-in-time snapshots of a whole [`SmartStoreSystem`].
//!
//! A snapshot file is a header followed by checksummed records (see
//! [`crate::codec`]), one section per subsystem:
//!
//! ```text
//! magic "SSSNAP\x00" + u16 format version
//! record HEADER   — counts, flags, maintenance counters
//! record CONFIG   — SmartStoreConfig
//! record UNIT ×n  — one per storage unit (files + saved summaries)
//! record TREE     — semantic R-tree node arena
//! record MAPPING  — index-unit → storage-unit mapping
//! record VERSIONS — per-group version chains
//! record PENDING  — per-group lazy-update counters
//! record END      — explicit end marker
//! ```
//!
//! Unlike the WAL, a snapshot is all-or-nothing: any corruption —
//! including a missing END marker from a torn write — fails the load.
//! Writers therefore go through a temp file + `fsync` + atomic rename,
//! so a crash mid-write can never install a partial snapshot.
//!
//! # Differential snapshots
//!
//! A *delta* file (`DELTA_MAGIC`) is the same record stream with one
//! twist: its UNIT section holds only the units **dirtied** since the
//! previous generation (per-unit dirty tracking in
//! [`smartstore::system::DirtyUnits`]), while the small index-side
//! sections (tree, mapping, versions, pending) are present in full —
//! they shift with every change but are dwarfed by unit records.
//! [`fold_delta`] overlays a decoded delta onto base [`SystemParts`]
//! deterministically: dirty units replace (or append) by unit id, the
//! index sections are taken wholesale from the delta. Folding
//! base + deltas in chain order reproduces the full image
//! bit-for-bit.

use crate::codec::{self, Dec, Enc, FrameError};
use crate::error::{PersistError, Result};
use crate::vfs::Vfs;
use rayon::prelude::*;
use smartstore::system::{DeltaParts, SystemParts};
use smartstore::tree::NodeId;
use smartstore::unit::StorageUnit;
use smartstore::versioning::VersionStore;
use std::path::Path;

/// Magic prefix of snapshot files (7 bytes + 1 reserved).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SSSNAP\x00\x00";

/// Magic prefix of differential-snapshot (delta) files.
pub const DELTA_MAGIC: &[u8; 8] = b"SSDELT\x00\x00";

const SEC_HEADER: u8 = 0x01;
const SEC_CONFIG: u8 = 0x02;
const SEC_UNIT: u8 = 0x03;
const SEC_TREE: u8 = 0x04;
const SEC_MAPPING: u8 = 0x05;
const SEC_VERSIONS: u8 = 0x06;
const SEC_PENDING: u8 = 0x07;
const SEC_DHEADER: u8 = 0x08;
const SEC_END: u8 = 0xFF;

/// Size/shape statistics of a written snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotStats {
    /// Total file bytes.
    pub bytes: u64,
    /// Storage units captured.
    pub n_units: usize,
    /// File-metadata records captured.
    pub n_files: usize,
    /// Semantic R-tree arena nodes captured.
    pub n_nodes: usize,
}

/// Size/shape statistics of a written delta generation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaStats {
    /// Total file bytes.
    pub bytes: u64,
    /// Dirty storage units re-encoded.
    pub n_dirty_units: usize,
    /// Total units in the system at the cut.
    pub n_units_total: usize,
    /// File-metadata records inside the re-encoded units.
    pub n_files: usize,
}

/// Encodes + CRC-frames one SEC_UNIT record per unit, in parallel; the
/// framed records splice back in slice order, so the byte stream is
/// identical to a sequential encoding.
fn encode_unit_records(units: &[StorageUnit]) -> Vec<Vec<u8>> {
    units
        .par_iter()
        .map(|u| {
            let mut e = Enc::new();
            e.u8(SEC_UNIT);
            codec::put_unit(&mut e, u);
            let mut rec = Vec::new();
            codec::put_record(&mut rec, &e.into_bytes());
            rec
        })
        .collect()
}

/// Appends the index-side sections (tree, mapping, versions, pending)
/// and the end marker — identical between full and delta images.
fn put_index_sections(
    out: &mut Vec<u8>,
    tree: &smartstore::tree::TreeParts,
    mapping: &smartstore::mapping::IndexMapping,
    versions: &[(NodeId, VersionStore)],
    pending: &[(NodeId, usize)],
) {
    let mut t = Enc::new();
    t.u8(SEC_TREE);
    codec::put_tree(&mut t, tree);
    codec::put_record(out, &t.into_bytes());

    let mut m = Enc::new();
    m.u8(SEC_MAPPING);
    codec::put_mapping(&mut m, mapping);
    codec::put_record(out, &m.into_bytes());

    let mut v = Enc::new();
    v.u8(SEC_VERSIONS);
    v.u32(versions.len() as u32);
    for (group, vs) in versions {
        v.usize(*group);
        codec::put_version_store(&mut v, vs);
    }
    codec::put_record(out, &v.into_bytes());

    let mut p = Enc::new();
    p.u8(SEC_PENDING);
    p.u32(pending.len() as u32);
    for (group, count) in pending {
        p.usize(*group);
        p.usize(*count);
    }
    codec::put_record(out, &p.into_bytes());

    codec::put_record(out, &[SEC_END]);
}

/// Serializes `parts` into snapshot bytes.
pub fn encode_snapshot(parts: &SystemParts) -> (Vec<u8>, SnapshotStats) {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&codec::FORMAT_VERSION.to_le_bytes());

    let n_files: usize = parts.units.iter().map(|u| u.len()).sum();

    let mut header = Enc::new();
    header.u8(SEC_HEADER);
    header.usize(parts.units.len());
    header.usize(n_files);
    header.bool(parts.versioning_enabled);
    header.u64(parts.maintenance_messages);
    header.u64(parts.reseed);
    codec::put_record(&mut out, &header.into_bytes());

    let mut cfg = Enc::new();
    cfg.u8(SEC_CONFIG);
    codec::put_config(&mut cfg, &parts.cfg);
    codec::put_record(&mut out, &cfg.into_bytes());

    // Unit records dominate snapshot bytes; encode + CRC them in
    // parallel on the shared pool.
    let unit_records = encode_unit_records(&parts.units);
    let unit_bytes: usize = unit_records.iter().map(|r| r.len()).sum();
    out.reserve(unit_bytes);
    for rec in &unit_records {
        out.extend_from_slice(rec);
    }

    put_index_sections(
        &mut out,
        &parts.tree,
        &parts.mapping,
        &parts.versions,
        &parts.pending,
    );

    let stats = SnapshotStats {
        bytes: out.len() as u64,
        n_units: parts.units.len(),
        n_files,
        n_nodes: parts.tree.nodes.len(),
    };
    (out, stats)
}

/// Serializes a differential cut into delta-file bytes: only the dirty
/// units are re-encoded; the index-side sections ride along in full.
pub fn encode_delta(delta: &DeltaParts) -> (Vec<u8>, DeltaStats) {
    let mut out = Vec::new();
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&codec::FORMAT_VERSION.to_le_bytes());

    let n_files: usize = delta.units.iter().map(|u| u.len()).sum();

    let mut header = Enc::new();
    header.u8(SEC_DHEADER);
    header.usize(delta.n_units_total);
    header.usize(delta.units.len());
    header.usize(n_files);
    header.bool(delta.versioning_enabled);
    header.u64(delta.maintenance_messages);
    header.u64(delta.reseed);
    codec::put_record(&mut out, &header.into_bytes());

    let mut cfg = Enc::new();
    cfg.u8(SEC_CONFIG);
    codec::put_config(&mut cfg, &delta.cfg);
    codec::put_record(&mut out, &cfg.into_bytes());

    let unit_records = encode_unit_records(&delta.units);
    let unit_bytes: usize = unit_records.iter().map(|r| r.len()).sum();
    out.reserve(unit_bytes);
    for rec in &unit_records {
        out.extend_from_slice(rec);
    }

    put_index_sections(
        &mut out,
        &delta.tree,
        &delta.mapping,
        &delta.versions,
        &delta.pending,
    );

    let stats = DeltaStats {
        bytes: out.len() as u64,
        n_dirty_units: delta.units.len(),
        n_units_total: delta.n_units_total,
        n_files,
    };
    (out, stats)
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, `fsync`, rename over the target, `fsync` the directory.
fn write_atomic(vfs: &dyn Vfs, bytes: &[u8], path: &Path) -> Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all_at(0, bytes)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    // Directory fsync makes the rename durable; best-effort on
    // filesystems that reject directory syncs.
    vfs.sync_dir(dir)?;
    Ok(())
}

/// Writes `parts` to `path` atomically.
pub fn write_snapshot(vfs: &dyn Vfs, parts: &SystemParts, path: &Path) -> Result<SnapshotStats> {
    let (bytes, stats) = encode_snapshot(parts);
    write_atomic(vfs, &bytes, path)?;
    Ok(stats)
}

/// Writes pre-encoded artifact bytes (from [`encode_delta`] or
/// [`encode_snapshot`]) to `path` atomically — the install half of a
/// two-phase compaction whose encode half ran off the write path.
pub fn write_encoded(vfs: &dyn Vfs, bytes: &[u8], path: &Path) -> Result<()> {
    write_atomic(vfs, bytes, path)
}

/// Writes a differential cut to `path` atomically.
pub fn write_delta(vfs: &dyn Vfs, delta: &DeltaParts, path: &Path) -> Result<DeltaStats> {
    let (bytes, stats) = encode_delta(delta);
    write_atomic(vfs, &bytes, path)?;
    Ok(stats)
}

fn corrupt(path: &Path, offset: usize, reason: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        offset: offset as u64,
        reason: reason.into(),
    }
}

/// Decodes a snapshot back into [`SystemParts`]. Fails on *any*
/// corruption — snapshots are written atomically, so a bad snapshot is
/// a real integrity problem, not an expected crash artifact.
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<SystemParts> {
    if bytes.len() < 10 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, 0, "bad snapshot magic"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version > codec::FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: codec::FORMAT_VERSION,
        });
    }
    let mut pos = 10usize;
    let next = |pos: &mut usize| -> Result<&[u8]> {
        match codec::get_record(bytes, *pos) {
            Ok((payload, np)) => {
                let at = *pos;
                *pos = np;
                if payload.is_empty() {
                    return Err(corrupt(path, at, "empty record"));
                }
                Ok(payload)
            }
            Err(FrameError::Eof) => Err(corrupt(path, *pos, "unexpected end of snapshot")),
            Err(FrameError::Torn { offset, reason }) => Err(corrupt(path, offset, reason)),
        }
    };
    let dec_err = |e: codec::DecodeError| corrupt(path, e.offset, e.reason);

    // HEADER
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_HEADER {
        return Err(corrupt(path, pos, "expected header section"));
    }
    let n_units = d.usize().map_err(dec_err)?;
    let _n_files = d.usize().map_err(dec_err)?;
    let versioning_enabled = d.bool().map_err(dec_err)?;
    let maintenance_messages = d.u64().map_err(dec_err)?;
    let reseed = d.u64().map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // CONFIG
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_CONFIG {
        return Err(corrupt(path, pos, "expected config section"));
    }
    let cfg = codec::get_config(&mut d, version).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // UNITS
    let mut units = Vec::with_capacity(n_units.min(1 << 20));
    for _ in 0..n_units {
        let payload = next(&mut pos)?;
        let mut d = Dec::new(payload);
        if d.u8().map_err(dec_err)? != SEC_UNIT {
            return Err(corrupt(path, pos, "expected unit section"));
        }
        units.push(codec::get_unit(&mut d, version).map_err(dec_err)?);
        d.finish().map_err(dec_err)?;
    }

    let ix = get_index_sections(bytes, &mut pos, path, version)?;

    check_unit_refs(&units, &ix.tree, path)?;

    Ok(SystemParts {
        cfg,
        units,
        tree: ix.tree,
        mapping: ix.mapping,
        versions: ix.versions,
        pending: ix.pending,
        versioning_enabled,
        maintenance_messages,
        reseed,
    })
}

/// The decoded index-side sections shared by full and delta images.
struct IndexSections {
    tree: smartstore::tree::TreeParts,
    mapping: smartstore::mapping::IndexMapping,
    versions: Vec<(NodeId, VersionStore)>,
    pending: Vec<(NodeId, usize)>,
}

/// Decodes the TREE/MAPPING/VERSIONS/PENDING sections plus the END
/// marker and trailing-data check — the read-side mirror of
/// [`put_index_sections`], shared by [`decode_snapshot`] and
/// [`decode_delta`].
fn get_index_sections(
    bytes: &[u8],
    pos: &mut usize,
    path: &Path,
    version: u16,
) -> Result<IndexSections> {
    let next = |pos: &mut usize| -> Result<&[u8]> {
        match codec::get_record(bytes, *pos) {
            Ok((payload, np)) => {
                let at = *pos;
                *pos = np;
                if payload.is_empty() {
                    return Err(corrupt(path, at, "empty record"));
                }
                Ok(payload)
            }
            Err(FrameError::Eof) => Err(corrupt(path, *pos, "unexpected end of artifact")),
            Err(FrameError::Torn { offset, reason }) => Err(corrupt(path, offset, reason)),
        }
    };
    let dec_err = |e: codec::DecodeError| corrupt(path, e.offset, e.reason);

    // TREE
    let payload = next(pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_TREE {
        return Err(corrupt(path, *pos, "expected tree section"));
    }
    let tree = codec::get_tree(&mut d, version).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // MAPPING
    let payload = next(pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_MAPPING {
        return Err(corrupt(path, *pos, "expected mapping section"));
    }
    let mapping = codec::get_mapping(&mut d).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // VERSIONS
    let payload = next(pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_VERSIONS {
        return Err(corrupt(path, *pos, "expected versions section"));
    }
    let n_groups = d.u32().map_err(dec_err)? as usize;
    let mut versions: Vec<(NodeId, VersionStore)> = Vec::with_capacity(n_groups.min(1 << 20));
    for _ in 0..n_groups {
        let g = d.usize().map_err(dec_err)?;
        let vs = codec::get_version_store(&mut d).map_err(dec_err)?;
        versions.push((g, vs));
    }
    d.finish().map_err(dec_err)?;

    // PENDING
    let payload = next(pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_PENDING {
        return Err(corrupt(path, *pos, "expected pending section"));
    }
    let n_pending = d.u32().map_err(dec_err)? as usize;
    let mut pending: Vec<(NodeId, usize)> = Vec::with_capacity(n_pending.min(1 << 20));
    for _ in 0..n_pending {
        let g = d.usize().map_err(dec_err)?;
        let c = d.usize().map_err(dec_err)?;
        pending.push((g, c));
    }
    d.finish().map_err(dec_err)?;

    // END
    let payload = next(pos)?;
    if payload != [SEC_END] {
        return Err(corrupt(path, *pos, "expected end marker"));
    }
    match codec::get_record(bytes, *pos) {
        Err(FrameError::Eof) => {}
        _ => return Err(corrupt(path, *pos, "trailing data after end marker")),
    }

    Ok(IndexSections {
        tree,
        mapping,
        versions,
        pending,
    })
}

/// Loads a snapshot file.
pub fn load_snapshot(vfs: &dyn Vfs, path: &Path) -> Result<SystemParts> {
    let bytes = vfs.read(path)?;
    decode_snapshot(&bytes, path)
}

/// Referential sanity shared by full-image decode and chain folding:
/// every live leaf's unit id must resolve to a storage unit.
pub(crate) fn check_unit_refs(
    units: &[StorageUnit],
    tree: &smartstore::tree::TreeParts,
    path: &Path,
) -> Result<()> {
    let unit_ids: std::collections::HashSet<usize> = units.iter().map(|u| u.id).collect();
    for n in &tree.nodes {
        if let Some(u) = n.unit {
            if n.level == 0 && !tree.free.contains(&n.id) && !unit_ids.contains(&u) {
                return Err(corrupt(
                    path,
                    0,
                    format!("tree leaf references missing unit {u}"),
                ));
            }
        }
    }
    Ok(())
}

/// Decodes a delta file back into [`DeltaParts`]. Like full snapshots,
/// deltas are written atomically, so *any* corruption fails the load.
pub fn decode_delta(bytes: &[u8], path: &Path) -> Result<DeltaParts> {
    if bytes.len() < 10 || &bytes[..8] != DELTA_MAGIC {
        return Err(corrupt(path, 0, "bad delta magic"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version > codec::FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: codec::FORMAT_VERSION,
        });
    }
    let mut pos = 10usize;
    let next = |pos: &mut usize| -> Result<&[u8]> {
        match codec::get_record(bytes, *pos) {
            Ok((payload, np)) => {
                let at = *pos;
                *pos = np;
                if payload.is_empty() {
                    return Err(corrupt(path, at, "empty record"));
                }
                Ok(payload)
            }
            Err(FrameError::Eof) => Err(corrupt(path, *pos, "unexpected end of delta")),
            Err(FrameError::Torn { offset, reason }) => Err(corrupt(path, offset, reason)),
        }
    };
    let dec_err = |e: codec::DecodeError| corrupt(path, e.offset, e.reason);

    // DHEADER
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_DHEADER {
        return Err(corrupt(path, pos, "expected delta header section"));
    }
    let n_units_total = d.usize().map_err(dec_err)?;
    let n_dirty = d.usize().map_err(dec_err)?;
    let _n_files = d.usize().map_err(dec_err)?;
    let versioning_enabled = d.bool().map_err(dec_err)?;
    let maintenance_messages = d.u64().map_err(dec_err)?;
    let reseed = d.u64().map_err(dec_err)?;
    d.finish().map_err(dec_err)?;
    if n_dirty > n_units_total {
        return Err(corrupt(
            path,
            pos,
            format!("delta claims {n_dirty} dirty of {n_units_total} total units"),
        ));
    }

    // CONFIG
    let payload = next(&mut pos)?;
    let mut d = Dec::new(payload);
    if d.u8().map_err(dec_err)? != SEC_CONFIG {
        return Err(corrupt(path, pos, "expected config section"));
    }
    let cfg = codec::get_config(&mut d, version).map_err(dec_err)?;
    d.finish().map_err(dec_err)?;

    // Dirty UNITs
    let mut units = Vec::with_capacity(n_dirty.min(1 << 20));
    for _ in 0..n_dirty {
        let payload = next(&mut pos)?;
        let mut d = Dec::new(payload);
        if d.u8().map_err(dec_err)? != SEC_UNIT {
            return Err(corrupt(path, pos, "expected unit section"));
        }
        units.push(codec::get_unit(&mut d, version).map_err(dec_err)?);
        d.finish().map_err(dec_err)?;
    }
    if !units.windows(2).all(|w| w[0].id < w[1].id) {
        return Err(corrupt(path, pos, "delta units not ascending by id"));
    }

    let ix = get_index_sections(bytes, &mut pos, path, version)?;

    Ok(DeltaParts {
        cfg,
        units,
        n_units_total,
        tree: ix.tree,
        mapping: ix.mapping,
        versions: ix.versions,
        pending: ix.pending,
        versioning_enabled,
        maintenance_messages,
        reseed,
    })
}

/// Loads a delta file.
pub fn load_delta(vfs: &dyn Vfs, path: &Path) -> Result<DeltaParts> {
    let bytes = vfs.read(path)?;
    decode_delta(&bytes, path)
}

/// Overlays one delta generation onto accumulated base parts, in
/// place. Deterministic: dirty units replace their base counterpart by
/// id (or append, for units created after the base — unit ids are
/// always the dense `0..n` of the units vector), and the index-side
/// sections are taken wholesale from the delta, which captured them in
/// full at its cut.
pub fn fold_delta(base: &mut SystemParts, delta: DeltaParts, path: &Path) -> Result<()> {
    for u in delta.units {
        let id = u.id;
        match id.cmp(&base.units.len()) {
            std::cmp::Ordering::Less => base.units[id] = u,
            std::cmp::Ordering::Equal => base.units.push(u),
            std::cmp::Ordering::Greater => {
                return Err(corrupt(
                    path,
                    0,
                    format!(
                        "delta unit {id} skips past base unit count {}",
                        base.units.len()
                    ),
                ));
            }
        }
    }
    if base.units.len() != delta.n_units_total {
        return Err(corrupt(
            path,
            0,
            format!(
                "folded unit count {} != delta total {}",
                base.units.len(),
                delta.n_units_total
            ),
        ));
    }
    base.cfg = delta.cfg;
    base.tree = delta.tree;
    base.mapping = delta.mapping;
    base.versions = delta.versions;
    base.pending = delta.pending;
    base.versioning_enabled = delta.versioning_enabled;
    base.maintenance_messages = delta.maintenance_messages;
    base.reseed = delta.reseed;
    check_unit_refs(&base.units, &base.tree, path)
}
