//! The virtual filesystem every byte of persistence I/O goes through.
//!
//! SmartStore's decentralized design (§3 of the paper) assumes storage
//! units fail *independently* and the system keeps serving from the
//! survivors. That contract is only as strong as the persistence
//! layer's behavior under real failure: mid-write crashes, short
//! writes, `fsync`s that lie, read-side bit rot, and full disks. To
//! make those behaviors *testable*, nothing in this crate calls
//! `std::fs` directly — [`snapshot`](crate::snapshot),
//! [`wal`](crate::wal) and [`store`](crate::store) all speak [`Vfs`]:
//!
//! * [`RealVfs`] — the passthrough to the operating system, used by
//!   every production entry point;
//! * [`FaultVfs`] — a deterministic in-memory filesystem that tracks
//!   *durable* vs. *live* bytes per file, injects a scripted fault at
//!   the Nth I/O call ([`FaultPlan`]), and simulates a crash
//!   ([`FaultVfs::crash`]) by discarding everything that was never
//!   `fsync`ed (optionally keeping a torn prefix of the unsynced tail,
//!   the way a half-flushed page does).
//!
//! The torture harness (`tests/torture.rs`) enumerates every I/O call
//! a change stream makes, injects each fault kind at each call, crashes
//! and reopens — asserting the recovery invariant: `open` never panics
//! and yields either a state bit-identical to a prefix of the
//! acknowledged change stream or a typed [`crate::PersistError`].

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A writable file handle dispensed by a [`Vfs`].
///
/// The interface is deliberately minimal — positioned writes, length
/// truncation, `fsync` — because that is the entire write surface the
/// persistence layer needs, and every method is a fault-injection
/// point.
pub trait VfsFile: Send + Sync + fmt::Debug {
    /// Writes `buf` at absolute `offset`, extending the file if needed.
    /// All-or-nothing from the caller's view: an error may leave a
    /// *prefix* of `buf` on disk (a torn write), never other bytes.
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;

    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Forces written data to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem surface of the persistence layer. `Arc<dyn Vfs>`
/// handles are cheap to clone and shared between a store and its WAL.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing without truncation.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Makes directory-level operations (create/rename/remove) durable.
    /// Best-effort on filesystems that reject directory syncs.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> io::Result<bool>;
    /// The file names (not full paths) inside a directory.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl RealVfs {
    /// A shared handle to the real filesystem.
    pub fn handle() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

#[derive(Debug)]
struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.0.seek(io::SeekFrom::Start(offset))?;
        self.0.write_all(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(
            std::fs::OpenOptions::new().write(true).open(path)?,
        )))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if let Ok(d) = std::fs::File::open(path) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> io::Result<bool> {
        Ok(path.exists())
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------

/// What kind of failure [`FaultVfs`] injects when its trigger fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The next I/O call (of any kind) returns a plain I/O error.
    IoError,
    /// The next *write* writes only half its bytes, then errors — a
    /// torn write.
    ShortWrite,
    /// The next *write* fails with `StorageFull` (ENOSPC) without
    /// writing anything.
    Enospc,
    /// The next *fsync* reports success but makes nothing durable — the
    /// lying-fsync failure mode; a later crash drops the "synced" data.
    LyingFsync,
    /// The next *read* returns the file's bytes with one bit flipped
    /// (transient, read-side corruption — the durable bytes are intact).
    BitFlipRead,
}

impl FaultKind {
    /// Every kind, for enumeration harnesses.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::IoError,
        FaultKind::ShortWrite,
        FaultKind::Enospc,
        FaultKind::LyingFsync,
        FaultKind::BitFlipRead,
    ];

    /// Whether an operation of class `op` can host this fault.
    fn applies_to(self, op: OpClass) -> bool {
        match self {
            FaultKind::IoError => true,
            FaultKind::ShortWrite | FaultKind::Enospc => op == OpClass::Write,
            FaultKind::LyingFsync => op == OpClass::Sync,
            FaultKind::BitFlipRead => op == OpClass::Read,
        }
    }
}

/// A scripted fault: arm at I/O call number `at` (0-based, counting
/// every [`Vfs`]/[`VfsFile`] method call), fire at the first *eligible*
/// call from then on. `sticky` faults keep firing on every later
/// eligible call — a dead disk rather than a transient glitch.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Arm at this I/O call index.
    pub at: u64,
    /// The failure to inject.
    pub kind: FaultKind,
    /// Keep failing every eligible call after the first.
    pub sticky: bool,
}

/// How a simulated crash treats bytes written but never `fsync`ed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTail {
    /// Unsynced bytes vanish entirely (the conservative disk).
    DropUnsynced,
    /// Half of each file's unsynced tail survives — a torn page flush,
    /// the case WAL-tail recovery exists for.
    KeepHalf,
    /// All unsynced bytes survive (the lucky crash).
    KeepAll,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
    Sync,
    Meta,
}

/// One in-memory file: the bytes the process sees (`live`) and the
/// bytes a crash preserves (`durable`).
#[derive(Clone, Debug, Default)]
struct MemFile {
    live: Vec<u8>,
    durable: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemFs {
    files: HashMap<PathBuf, MemFile>,
    /// I/O calls observed so far.
    ops: u64,
    plan: Option<FaultPlan>,
    /// Whether the armed plan has fired at least once.
    fired: bool,
    /// Total faults injected.
    faults: u64,
}

impl MemFs {
    /// Counts one call of class `op`; returns the fault to inject, if
    /// the plan fires here.
    fn tick(&mut self, op: OpClass) -> Option<FaultKind> {
        let n = self.ops;
        self.ops += 1;
        let plan = self.plan?;
        if n < plan.at || !plan.kind.applies_to(op) {
            return None;
        }
        if self.fired && !plan.sticky {
            return None;
        }
        self.fired = true;
        self.faults += 1;
        Some(plan.kind)
    }
}

/// The deterministic fault-injecting in-memory [`Vfs`].
///
/// Shared-state semantics: cloning the `Arc` handle shares the
/// filesystem; [`FaultVfs::fork`] deep-copies it (for enumerating many
/// faults against one baseline image).
#[derive(Clone, Debug)]
pub struct FaultVfs {
    inner: Arc<Mutex<MemFs>>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultVfs {
    /// An empty in-memory filesystem with no fault armed.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(MemFs::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemFs> {
        // A poisoned lock means a *test* thread panicked mid-operation;
        // the in-memory image is still the most useful artifact.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Arms (or clears) the fault plan.
    pub fn set_plan(&self, plan: Option<FaultPlan>) {
        let mut fs = self.lock();
        fs.plan = plan;
        fs.fired = false;
    }

    /// I/O calls observed so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Faults injected so far.
    pub fn faults_fired(&self) -> u64 {
        self.lock().faults
    }

    /// Resets the I/O call counter (so a fresh enumeration pass can
    /// target call indices relative to *its* start).
    pub fn reset_ops(&self) {
        let mut fs = self.lock();
        fs.ops = 0;
        fs.fired = false;
    }

    /// Simulates a machine crash: every file's live bytes revert to the
    /// durable bytes, plus whatever `tail` says survives of the
    /// unsynced suffix. Clears the fault plan — the next boot sees a
    /// healthy (if diminished) disk.
    pub fn crash(&self, tail: CrashTail) {
        let mut fs = self.lock();
        fs.plan = None;
        fs.fired = false;
        // lint:allow(D002) -- each file is truncated independently; order-insensitive
        for f in fs.files.values_mut() {
            let durable = f.durable.len().min(f.live.len());
            let keep = match tail {
                CrashTail::DropUnsynced => durable,
                CrashTail::KeepHalf => durable + (f.live.len() - durable) / 2,
                CrashTail::KeepAll => f.live.len(),
            };
            f.live.truncate(keep);
            // What the crash preserved is what the next boot reads *and*
            // what the next crash would preserve again.
            f.durable = f.live.clone();
        }
    }

    /// Deep copy of the current filesystem image (counters reset, no
    /// plan armed).
    pub fn fork(&self) -> FaultVfs {
        let fs = self.lock();
        FaultVfs {
            inner: Arc::new(Mutex::new(MemFs {
                files: fs.files.clone(),
                ops: 0,
                plan: None,
                fired: false,
                faults: 0,
            })),
        }
    }

    /// Flips one bit of the *durable* bytes of `path` — persistent
    /// media corruption, unlike the transient [`FaultKind::BitFlipRead`].
    pub fn corrupt_durable(&self, path: &Path, byte: usize, mask: u8) -> bool {
        let mut fs = self.lock();
        match fs.files.get_mut(path) {
            Some(f) if byte < f.durable.len() => {
                f.durable[byte] ^= mask;
                f.live.clone_from(&f.durable);
                true
            }
            _ => false,
        }
    }

    /// The live length of `path`, if it exists (test introspection).
    pub fn live_len(&self, path: &Path) -> Option<usize> {
        self.lock().files.get(path).map(|f| f.live.len())
    }

    /// A `dyn`-typed handle to this filesystem.
    pub fn handle(&self) -> Arc<dyn Vfs> {
        Arc::new(self.clone())
    }

    fn injected(kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            ),
            k => io::Error::other(format!("injected fault: {k:?}")),
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    vfs: FaultVfs,
    path: PathBuf,
}

impl FaultFile {
    fn with_file<T>(
        &self,
        op: OpClass,
        f: impl FnOnce(&mut MemFile, Option<FaultKind>) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut fs = self.vfs.lock();
        let fault = fs.tick(op);
        let file = fs.files.get_mut(&self.path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("file removed while open: {}", self.path.display()),
            )
        })?;
        f(file, fault)
    }
}

impl VfsFile for FaultFile {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.with_file(OpClass::Write, |file, fault| {
            let offset = offset as usize;
            let write = |file: &mut MemFile, data: &[u8]| {
                if file.live.len() < offset {
                    file.live.resize(offset, 0);
                }
                let end = offset + data.len();
                if file.live.len() < end {
                    file.live.resize(end, 0);
                }
                file.live[offset..end].copy_from_slice(data);
            };
            match fault {
                None => {
                    write(file, buf);
                    Ok(())
                }
                Some(FaultKind::ShortWrite) => {
                    // Half the bytes land, then the device gives up.
                    write(file, &buf[..buf.len() / 2]);
                    Err(FaultVfs::injected(FaultKind::ShortWrite))
                }
                Some(k) => Err(FaultVfs::injected(k)),
            }
        })
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.with_file(OpClass::Write, |file, fault| {
            if let Some(k) = fault {
                return Err(FaultVfs::injected(k));
            }
            file.live.resize(len as usize, 0);
            Ok(())
        })
    }

    fn sync(&mut self) -> io::Result<()> {
        self.with_file(OpClass::Sync, |file, fault| {
            match fault {
                // The lie: report success, persist nothing.
                Some(FaultKind::LyingFsync) => Ok(()),
                Some(k) => Err(FaultVfs::injected(k)),
                None => {
                    file.durable.clone_from(&file.live);
                    Ok(())
                }
            }
        })
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut fs = self.lock();
        let fault = fs.tick(OpClass::Read);
        let file = fs
            .files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.display().to_string()))?;
        let mut bytes = file.live.clone();
        match fault {
            Some(FaultKind::BitFlipRead) => {
                if !bytes.is_empty() {
                    let at = bytes.len() / 2;
                    bytes[at] ^= 0x04;
                }
                Ok(bytes)
            }
            Some(k) => Err(FaultVfs::injected(k)),
            None => Ok(bytes),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Write) {
            return Err(FaultVfs::injected(k));
        }
        let entry = fs.files.entry(path.to_path_buf()).or_default();
        entry.live.clear();
        // Creation (like truncation) is a metadata operation the crash
        // model treats as immediately durable; the *content* is not.
        entry.durable.clear();
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Meta) {
            return Err(FaultVfs::injected(k));
        }
        if !fs.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                path.display().to_string(),
            ));
        }
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Write) {
            return Err(FaultVfs::injected(k));
        }
        match fs.files.remove(from) {
            Some(f) => {
                fs.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                from.display().to_string(),
            )),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Write) {
            return Err(FaultVfs::injected(k));
        }
        match fs.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                path.display().to_string(),
            )),
        }
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Meta) {
            return Err(FaultVfs::injected(k));
        }
        Ok(())
    }

    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        match fs.tick(OpClass::Sync) {
            Some(FaultKind::LyingFsync) | None => Ok(()),
            Some(k) => Err(FaultVfs::injected(k)),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Meta) {
            return Err(FaultVfs::injected(k));
        }
        fs.files
            .get(path)
            .map(|f| f.live.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.display().to_string()))
    }

    fn exists(&self, path: &Path) -> io::Result<bool> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Meta) {
            return Err(FaultVfs::injected(k));
        }
        // Directories are implicit in the virtual namespace: one exists
        // whenever a file lives at or below it (a path can never be
        // both a file and a directory, so the prefix test is safe).
        Ok(fs.files.contains_key(path)
                // lint:allow(D002) -- existence test; any order gives the same bool
                || fs.files.keys().any(|k| k.starts_with(path) && k != path))
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut fs = self.lock();
        if let Some(k) = fs.tick(OpClass::Read) {
            return Err(FaultVfs::injected(k));
        }
        let mut names: Vec<String> = fs
            .files // lint:allow(D002) -- collected then sorted below
            .keys()
            .filter(|p| p.parent() == Some(path))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_bytes_vanish_on_crash() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, b"durable").unwrap();
        f.sync().unwrap();
        f.write_all_at(7, b" lost").unwrap();
        drop(f);
        vfs.crash(CrashTail::DropUnsynced);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"durable");
    }

    #[test]
    fn keep_half_tears_the_unsynced_tail() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, b"ok").unwrap();
        f.sync().unwrap();
        f.write_all_at(2, b"12345678").unwrap();
        drop(f);
        vfs.crash(CrashTail::KeepHalf);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"ok1234");
    }

    #[test]
    fn lying_fsync_drops_data_at_crash() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        vfs.set_plan(Some(FaultPlan {
            at: 0,
            kind: FaultKind::LyingFsync,
            sticky: false,
        }));
        f.sync().unwrap(); // reports success...
        drop(f);
        vfs.crash(CrashTail::DropUnsynced);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"", "...but lied");
    }

    #[test]
    fn short_write_leaves_half_the_bytes() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        vfs.set_plan(Some(FaultPlan {
            at: 0,
            kind: FaultKind::ShortWrite,
            sticky: false,
        }));
        assert!(f.write_all_at(0, b"abcdefgh").is_err());
        drop(f);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"abcd");
    }

    #[test]
    fn enospc_only_fires_on_writes() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, b"x").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.set_plan(Some(FaultPlan {
            at: 0,
            kind: FaultKind::Enospc,
            sticky: false,
        }));
        // Reads sail through an armed ENOSPC...
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"x");
        // ...the next write eats it.
        let mut f = vfs.open_rw(&p("/d/a")).unwrap();
        let err = f.write_all_at(1, b"y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.write_all_at(1, b"y").unwrap(); // one-shot: cleared after firing
    }

    #[test]
    fn bit_flip_read_is_transient() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, &[0u8; 8]).unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.set_plan(Some(FaultPlan {
            at: 0,
            kind: FaultKind::BitFlipRead,
            sticky: false,
        }));
        let corrupted = vfs.read(&p("/d/a")).unwrap();
        assert_ne!(corrupted, vec![0u8; 8]);
        // The durable bytes were never touched.
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn sticky_fault_keeps_failing() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        vfs.set_plan(Some(FaultPlan {
            at: 0,
            kind: FaultKind::IoError,
            sticky: true,
        }));
        assert!(f.write_all_at(0, b"a").is_err());
        assert!(f.write_all_at(0, b"a").is_err());
        assert!(vfs.read(&p("/d/a")).is_err());
    }

    #[test]
    fn fork_isolates_the_image() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all_at(0, b"base").unwrap();
        f.sync().unwrap();
        drop(f);
        let fork = vfs.fork();
        let mut g = fork.open_rw(&p("/d/a")).unwrap();
        g.write_all_at(0, b"FORK").unwrap();
        drop(g);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"base");
        assert_eq!(fork.read(&p("/d/a")).unwrap(), b"FORK");
    }

    #[test]
    fn rename_moves_durable_content() {
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&p("/d/a.tmp")).unwrap();
        f.write_all_at(0, b"img").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&p("/d/a.tmp"), &p("/d/a")).unwrap();
        assert!(!vfs.exists(&p("/d/a.tmp")).unwrap());
        vfs.crash(CrashTail::DropUnsynced);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"img");
    }
}
