//! `smartstore-persist`: durable snapshots + write-ahead log for the
//! SmartStore reproduction.
//!
//! The SC '09 paper's consistency story (§4.4) aggregates metadata
//! changes into versions; this crate extends that design to *crash
//! durability* so a deployment can restart without regrouping millions
//! of files through the LSI pipeline:
//!
//! * [`codec`] — hand-rolled, versioned binary codec with
//!   length-prefixed, CRC-32-checksummed records for every domain type
//!   ([`smartstore_trace::FileMetadata`], storage units, the semantic
//!   R-tree arena, index mappings, version chains, configuration);
//! * [`snapshot`] — all-or-nothing point-in-time images of a whole
//!   [`SmartStoreSystem`], written atomically (temp file + `fsync` +
//!   rename);
//! * [`wal`] — the append-only change log with group-tagged frames, a
//!   self-describing header (format version + predecessor frame count,
//!   the cross-segment gap detector), batched `fsync` (group commit),
//!   and torn-tail-tolerant replay (scan to the first bad checksum,
//!   salvage the verified prefix, quarantine the rest to a side file);
//! * [`vfs`] — the filesystem abstraction everything above runs on:
//!   [`vfs::RealVfs`] in production, the deterministic fault-injecting
//!   [`vfs::FaultVfs`] under the crash-recovery torture harness;
//! * [`store`] — [`PersistentStore`]: manifest + snapshot chain +
//!   active WAL; **crash recovery** is `open` = load the base snapshot,
//!   fold the delta chain, replay surviving WAL frames through the
//!   system's own deterministic [`SmartStoreSystem::apply_change`]
//!   (returning a [`RecoveryReport`] of generations folded, frames
//!   replayed, and bytes quarantined), and **compaction** is
//!   incremental: per-unit dirty tracking lets it write cheap
//!   *differential* generations (only the churn footprint re-encodes)
//!   with the expensive encode off the write path, falling back to a
//!   full rewrite when the chain outgrows `persist.max_delta_chain`.
//!
//! The recovery invariant the torture harness
//! (`crates/persist/tests/torture.rs`) enforces at every injectable
//! fault point: `open` never panics, and yields either a system
//! bit-identical to some prefix of the acknowledged change stream or a
//! typed [`PersistError`].
//!
//! The [`SystemPersist`] extension trait stitches it onto
//! [`SmartStoreSystem`]:
//!
//! ```no_run
//! use smartstore::versioning::Change;
//! use smartstore_persist::SystemPersist as _;
//! # fn demo(mut sys: smartstore::SmartStoreSystem, change: Change) -> smartstore_persist::Result<()> {
//! let dir = std::path::Path::new("/var/lib/smartstore");
//! let (mut store, _stats) = sys.save_snapshot(dir)?;       // initial image
//! sys.apply_journaled(&mut store, change)?;                 // WAL-then-apply
//! drop((sys, store));                                       // ...crash...
//! let (sys2, _store2, report) = smartstore::SmartStoreSystem::open_from_dir(dir)?;
//! assert_eq!(report.generation, 1);
//! # Ok(()) }
//! ```

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use error::{PersistError, Result};
pub use snapshot::{
    load_delta, load_snapshot, write_delta, write_snapshot, DeltaStats, SnapshotStats,
};
pub use store::{
    CompactionOutcome, DeltaCompaction, EncodedDelta, PersistentStore, RecoveryReport, StoreOptions,
};
pub use vfs::{CrashTail, FaultKind, FaultPlan, FaultVfs, RealVfs, Vfs, VfsFile};
pub use wal::{WalFrame, WalProbe, WalReplay, WalWriter};

use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::SmartStoreSystem;
use std::path::Path;
use std::sync::Arc;

/// Durable-persistence methods grafted onto [`SmartStoreSystem`].
///
/// (The trait lives here rather than in the core crate so the in-memory
/// system stays storage-agnostic; import it to get the methods.)
pub trait SystemPersist: Sized {
    /// Snapshots the full system state into `dir` and returns the store
    /// handle whose WAL will journal subsequent changes. Resets the
    /// system's per-unit dirty tracking: the written image covers
    /// everything.
    fn save_snapshot(&mut self, dir: &Path) -> Result<(PersistentStore, SnapshotStats)>;

    /// [`Self::save_snapshot`] over an explicit [`Vfs`] — the
    /// injectable entry point the torture harness drives.
    fn save_snapshot_with(
        &mut self,
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<(PersistentStore, SnapshotStats)>;

    /// Crash recovery: reassembles the system from `dir`'s snapshot
    /// chain (base + differential generations) plus its write-ahead
    /// log (a torn or corrupt tail is salvaged prefix-first, with the
    /// unverifiable bytes quarantined to a side file).
    fn open_from_dir(dir: &Path) -> Result<(Self, PersistentStore, RecoveryReport)>;

    /// [`Self::open_from_dir`] over an explicit [`Vfs`].
    fn open_from_dir_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<(Self, PersistentStore, RecoveryReport)>;

    /// Applies one change with write-ahead durability: the frame is
    /// appended (and group-tagged) *before* the in-memory mutation, and
    /// the WAL is compacted into the next snapshot generation — a cheap
    /// differential one while the churn footprint allows — once it
    /// outgrows `cfg.persist.wal_compact_bytes`. Returns the group the
    /// change landed in.
    fn apply_journaled(
        &mut self,
        store: &mut PersistentStore,
        change: Change,
    ) -> Result<Option<NodeId>>;
}

impl SystemPersist for SmartStoreSystem {
    fn save_snapshot(&mut self, dir: &Path) -> Result<(PersistentStore, SnapshotStats)> {
        PersistentStore::create(dir, self)
    }

    fn save_snapshot_with(
        &mut self,
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<(PersistentStore, SnapshotStats)> {
        PersistentStore::create_with(vfs, dir, self)
    }

    fn open_from_dir(dir: &Path) -> Result<(Self, PersistentStore, RecoveryReport)> {
        PersistentStore::open(dir)
    }

    fn open_from_dir_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<(Self, PersistentStore, RecoveryReport)> {
        PersistentStore::open_with(vfs, dir)
    }

    fn apply_journaled(
        &mut self,
        store: &mut PersistentStore,
        change: Change,
    ) -> Result<Option<NodeId>> {
        // Placement is computed once (inside the system) and shared by
        // the frame tag and the application; an append failure leaves
        // the in-memory state untouched.
        let landed = self
            .try_apply_change_journaled(change, |group, ch| store.append(group, ch).map(|_| ()))?;
        if store.should_compact() {
            store.compact_incremental(self)?;
        }
        Ok(landed)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use smartstore::SmartStoreConfig;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("smartstore_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_system(n_files: usize, n_units: usize, seed: u64) -> SmartStoreSystem {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files,
            n_clusters: n_units.max(2),
            seed,
            ..GeneratorConfig::default()
        });
        SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), seed)
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let sys = small_system(400, 8, 11);
        let parts = sys.to_parts();
        let (bytes, stats) = snapshot::encode_snapshot(&parts);
        assert_eq!(stats.n_units, 8);
        assert_eq!(stats.n_files, 400);
        let back = snapshot::decode_snapshot(&bytes, Path::new("mem")).unwrap();
        assert_eq!(back.units.len(), parts.units.len());
        for (a, b) in back.units.iter().zip(&parts.units) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.files(), b.files());
            assert_eq!(a.bloom(), b.bloom());
            assert_eq!(a.centroid(), b.centroid());
            assert_eq!(a.mbr(), b.mbr());
        }
        assert_eq!(back.tree.nodes.len(), parts.tree.nodes.len());
        assert_eq!(back.tree.root, parts.tree.root);
        assert_eq!(back.mapping.assignment, parts.mapping.assignment);
        assert_eq!(back.mapping.root_replicas, parts.mapping.root_replicas);
        assert_eq!(back.versions.len(), parts.versions.len());
        assert_eq!(back.pending, parts.pending);
    }

    #[test]
    fn snapshot_rejects_any_corruption() {
        let sys = small_system(120, 4, 3);
        let (bytes, _) = snapshot::encode_snapshot(&sys.to_parts());
        // Truncation.
        assert!(snapshot::decode_snapshot(&bytes[..bytes.len() - 1], Path::new("m")).is_err());
        // Bit flips across the file.
        for frac in [3, 5, 7] {
            let mut bad = bytes.clone();
            let at = bad.len() / frac;
            bad[at] ^= 0x01;
            assert!(
                snapshot::decode_snapshot(&bad, Path::new("m")).is_err(),
                "flip at {at} undetected"
            );
        }
        // Future format version.
        let mut newer = bytes.clone();
        newer[8] = 0xFF;
        assert!(matches!(
            snapshot::decode_snapshot(&newer, Path::new("m")),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn store_create_open_equivalence() {
        let dir = tmpdir("create_open");
        let mut sys = small_system(300, 6, 21);
        let (mut store, stats) = sys.save_snapshot(&dir).unwrap();
        assert!(stats.bytes > 0);
        // Journal some churn.
        let files = sys.current_files();
        for i in 0..40u64 {
            let mut f = files[i as usize % files.len()].clone();
            f.file_id = 1_000_000 + i;
            f.name = format!("journaled_{i}");
            sys.apply_journaled(&mut store, Change::Insert(f)).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let (sys2, store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 40);
        assert_eq!(report.dropped_tail_bytes, 0);
        assert_eq!(store2.wal_frames(), 40);
        let mut a = sys.current_files();
        let mut b = sys2.current_files();
        a.sort_by_key(|f| f.file_id);
        b.sort_by_key(|f| f.file_id);
        assert_eq!(a, b);
        assert_eq!(sys.stats().version_bytes, sys2.stats().version_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rolls_generation_and_drops_old_files() {
        let dir = tmpdir("compaction");
        let mut sys = small_system(200, 4, 5);
        // Tiny threshold: compact after every few frames.
        sys.cfg.persist.wal_compact_bytes = 256;
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        assert_eq!(store.generation(), 1);
        let files = sys.current_files();
        for i in 0..30u64 {
            let mut f = files[i as usize % files.len()].clone();
            f.file_id = 2_000_000 + i;
            f.name = format!("compacted_{i}");
            sys.apply_journaled(&mut store, Change::Insert(f)).unwrap();
        }
        assert!(store.generation() > 1, "compaction must have fired");
        // Exactly the manifest chain plus one active WAL remains.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let fulls = names
            .iter()
            .filter(|n| n.starts_with("snapshot-") && n.ends_with(".snap"))
            .count();
        let deltas = names
            .iter()
            .filter(|n| n.starts_with("delta-") && n.ends_with(".snap"))
            .count();
        let wals = names.iter().filter(|n| n.ends_with(".log")).count();
        assert_eq!(
            (fulls, deltas, wals),
            (1, store.delta_chain().len(), 1),
            "stale generations left behind: {names:?}"
        );
        // Reopen and verify equivalence.
        drop(store);
        let (sys2, store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.deltas_folded, store2.delta_chain().len());
        let mut a = sys.current_files();
        let mut b = sys2.current_files();
        a.sort_by_key(|f| f.file_id);
        b.sort_by_key(|f| f.file_id);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_compaction_encodes_only_the_churn_footprint() {
        let dir = tmpdir("delta_footprint");
        let mut sys = small_system(400, 8, 29);
        let (mut store, full) = sys.save_snapshot(&dir).unwrap();
        // Concentrate churn on the files of a single unit.
        let hot: Vec<_> = sys.units()[0].files().to_vec();
        for (i, f) in hot.iter().take(6).cloned().enumerate() {
            let mut m = f;
            m.size += 1 + i as u64;
            sys.apply_journaled(&mut store, Change::Modify(m)).unwrap();
        }
        let dirty = sys.dirty_count();
        assert!((1..8).contains(&dirty), "churn stayed narrow: {dirty}");
        let outcome = store.compact_incremental(&mut sys).unwrap();
        assert!(outcome.is_delta());
        assert!(
            outcome.bytes_written() < full.bytes / 2,
            "delta ({} B) should be far smaller than the full image ({} B)",
            outcome.bytes_written(),
            full.bytes
        );
        assert_eq!(sys.dirty_count(), 0, "cut resets dirty tracking");
        assert_eq!(store.delta_chain().len(), 1);
        // Recovery folds base + delta back to the live state.
        drop(store);
        let (sys2, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.deltas_folded, 1);
        assert_eq!(report.replayed_frames, 0);
        assert_eq!(
            snapshot::encode_snapshot(&sys.to_parts()).0,
            snapshot::encode_snapshot(&sys2.to_parts()).0,
            "folded chain must be bit-identical to the live image"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_chain_overflow_falls_back_to_full_rewrite() {
        let dir = tmpdir("chain_overflow");
        let mut sys = small_system(300, 6, 31);
        sys.cfg.persist.max_delta_chain = 2;
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let files = sys.current_files();
        for round in 0..3u64 {
            let mut f = files[round as usize].clone();
            f.size += round + 1;
            sys.apply_journaled(&mut store, Change::Modify(f)).unwrap();
            let outcome = store.compact_incremental(&mut sys).unwrap();
            if round < 2 {
                assert!(outcome.is_delta(), "round {round} should be a delta");
            } else {
                assert!(!outcome.is_delta(), "chain overflow must rewrite in full");
                assert!(store.delta_chain().is_empty(), "full rewrite resets chain");
            }
        }
        drop(store);
        let (sys2, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.deltas_folded, 0);
        assert_eq!(
            snapshot::encode_snapshot(&sys.to_parts()).0,
            snapshot::encode_snapshot(&sys2.to_parts()).0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_keeps_journaling_while_delta_encodes() {
        // The off-write-path shape: cut, encode on a worker thread
        // while the writer appends to the fresh segment, install, then
        // recover and verify the full history survived.
        let dir = tmpdir("concurrent_encode");
        let mut sys = small_system(300, 6, 37);
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let files = sys.current_files();
        for i in 0..10u64 {
            let mut f = files[i as usize].clone();
            f.size += i;
            sys.apply_journaled(&mut store, Change::Modify(f)).unwrap();
        }
        let cut = store.begin_delta_compaction(&mut sys).unwrap();
        assert!(cut.n_dirty() >= 1);
        let encoded = std::thread::scope(|s| {
            let worker = s.spawn(move || cut.encode());
            // Writer stays live during the encode: journal more churn
            // into the post-cut segment.
            for i in 10..20u64 {
                let mut f = files[i as usize].clone();
                f.size += i;
                sys.apply_journaled(&mut store, Change::Modify(f)).unwrap();
            }
            worker.join().expect("encode thread")
        });
        store.install_delta(encoded).unwrap();
        store.sync().unwrap();
        drop(store);
        let (sys2, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.deltas_folded, 1);
        assert_eq!(report.replayed_frames, 10, "post-cut frames replayed");
        assert_eq!(
            snapshot::encode_snapshot(&sys.to_parts()).0,
            snapshot::encode_snapshot(&sys2.to_parts()).0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_missing_dir_is_not_found() {
        let dir = tmpdir("missing");
        assert!(matches!(
            SmartStoreSystem::open_from_dir(&dir),
            Err(PersistError::NotFound(_))
        ));
    }

    #[test]
    fn journal_trait_routes_through_store() {
        let dir = tmpdir("journal_trait");
        let mut sys = small_system(150, 3, 9);
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let f = sys.current_files()[0].clone();
        sys.apply_change_journaled(Change::Delete(f.file_id), &mut store);
        assert_eq!(store.wal_frames(), 1);
        assert!(store.take_journal_error().is_none());
        assert!(!store.is_poisoned());
        store.sync().unwrap();
        drop(store);
        let (sys2, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 1);
        assert!(sys2.current_files().iter().all(|x| x.file_id != f.file_id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_recovers_to_snapshot_state() {
        // A crash between compaction's manifest flip and the new WAL's
        // directory entry reaching disk leaves a manifest pointing at a
        // generation with no log. The snapshot alone is consistent —
        // open must recreate the log empty, not fail.
        let dir = tmpdir("missing_wal");
        let mut sys = small_system(200, 4, 13);
        let (store, _) = sys.save_snapshot(&dir).unwrap();
        drop(store);
        let wal = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .unwrap();
        std::fs::remove_file(&wal).unwrap();
        let (mut sys2, mut store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 0);
        assert_eq!(sys2.current_files().len(), sys.current_files().len());
        // And the recreated log journals normally.
        let id = sys2.current_files()[0].file_id;
        sys2.apply_journaled(&mut store2, Change::Delete(id))
            .unwrap();
        assert_eq!(store2.wal_frames(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_compaction_artifacts() {
        let dir = tmpdir("sweep");
        let mut sys = small_system(150, 3, 17);
        let (store, _) = sys.save_snapshot(&dir).unwrap();
        drop(store);
        // A crashed compaction can leave temp files and an unreferenced
        // next generation behind. The garbage *WAL* successor is the
        // one artifact that is preserved rather than deleted: it is not
        // a truncated creation, so it may hold acknowledged frames, and
        // recovery moves it to quarantine instead of destroying it.
        std::fs::write(dir.join("snapshot-00000099.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("MANIFEST.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("snapshot-00000002.snap"), b"junk").unwrap();
        std::fs::write(dir.join("wal-00000002.log"), b"junk").unwrap();
        let (_sys2, _store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.generation, 1, "manifest still points at gen 1");
        assert_eq!(report.quarantined_bytes, 4, "the junk WAL moved aside");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !names.iter().any(|n| {
                n.ends_with(".tmp") || n.contains("snapshot-00000002") || n == "wal-00000002.log"
            }),
            "orphans not swept: {names:?}"
        );
        assert!(
            names.iter().any(|n| n == "wal-00000002.log.quarantine"),
            "garbage segment should be quarantined, not deleted: {names:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
