//! `smartstore-persist`: durable snapshots + write-ahead log for the
//! SmartStore reproduction.
//!
//! The SC '09 paper's consistency story (§4.4) aggregates metadata
//! changes into versions; this crate extends that design to *crash
//! durability* so a deployment can restart without regrouping millions
//! of files through the LSI pipeline:
//!
//! * [`codec`] — hand-rolled, versioned binary codec with
//!   length-prefixed, CRC-32-checksummed records for every domain type
//!   ([`smartstore_trace::FileMetadata`], storage units, the semantic
//!   R-tree arena, index mappings, version chains, configuration);
//! * [`snapshot`] — all-or-nothing point-in-time images of a whole
//!   [`SmartStoreSystem`], written atomically (temp file + `fsync` +
//!   rename);
//! * [`wal`] — the append-only change log with group-tagged frames,
//!   batched `fsync` (group commit), and torn-tail-tolerant replay
//!   (scan to the first bad checksum, truncate the rest);
//! * [`store`] — [`PersistentStore`]: manifest + snapshot generations +
//!   active WAL; **crash recovery** is `open` = load latest snapshot,
//!   replay surviving WAL frames through the system's own deterministic
//!   [`SmartStoreSystem::apply_change`], and **compaction** folds a
//!   grown log into the next snapshot generation.
//!
//! The [`SystemPersist`] extension trait stitches it onto
//! [`SmartStoreSystem`]:
//!
//! ```no_run
//! use smartstore::versioning::Change;
//! use smartstore_persist::SystemPersist as _;
//! # fn demo(mut sys: smartstore::SmartStoreSystem, change: Change) -> smartstore_persist::Result<()> {
//! let dir = std::path::Path::new("/var/lib/smartstore");
//! let (mut store, _stats) = sys.save_snapshot(dir)?;       // initial image
//! sys.apply_journaled(&mut store, change)?;                 // WAL-then-apply
//! drop((sys, store));                                       // ...crash...
//! let (sys2, _store2, report) = smartstore::SmartStoreSystem::open_from_dir(dir)?;
//! assert_eq!(report.generation, 1);
//! # Ok(()) }
//! ```

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{PersistError, Result};
pub use snapshot::{load_snapshot, write_snapshot, SnapshotStats};
pub use store::{PersistentStore, RecoveryReport, StoreOptions};
pub use wal::{WalFrame, WalReplay, WalWriter};

use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::SmartStoreSystem;
use std::path::Path;

/// Durable-persistence methods grafted onto [`SmartStoreSystem`].
///
/// (The trait lives here rather than in the core crate so the in-memory
/// system stays storage-agnostic; import it to get the methods.)
pub trait SystemPersist: Sized {
    /// Snapshots the full system state into `dir` and returns the store
    /// handle whose WAL will journal subsequent changes.
    fn save_snapshot(&self, dir: &Path) -> Result<(PersistentStore, SnapshotStats)>;

    /// Crash recovery: reassembles the system from `dir`'s latest
    /// snapshot plus its write-ahead log (a torn tail is truncated).
    fn open_from_dir(dir: &Path) -> Result<(Self, PersistentStore, RecoveryReport)>;

    /// Applies one change with write-ahead durability: the frame is
    /// appended (and group-tagged) *before* the in-memory mutation, and
    /// the WAL is compacted into a fresh snapshot once it outgrows
    /// `cfg.persist.wal_compact_bytes`. Returns the group the change
    /// landed in.
    fn apply_journaled(
        &mut self,
        store: &mut PersistentStore,
        change: Change,
    ) -> Result<Option<NodeId>>;
}

impl SystemPersist for SmartStoreSystem {
    fn save_snapshot(&self, dir: &Path) -> Result<(PersistentStore, SnapshotStats)> {
        PersistentStore::create(dir, self)
    }

    fn open_from_dir(dir: &Path) -> Result<(Self, PersistentStore, RecoveryReport)> {
        PersistentStore::open(dir)
    }

    fn apply_journaled(
        &mut self,
        store: &mut PersistentStore,
        change: Change,
    ) -> Result<Option<NodeId>> {
        // Placement is computed once (inside the system) and shared by
        // the frame tag and the application; an append failure leaves
        // the in-memory state untouched.
        let landed = self
            .try_apply_change_journaled(change, |group, ch| store.append(group, ch).map(|_| ()))?;
        if store.should_compact() {
            store.compact(self)?;
        }
        Ok(landed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartstore::SmartStoreConfig;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("smartstore_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_system(n_files: usize, n_units: usize, seed: u64) -> SmartStoreSystem {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files,
            n_clusters: n_units.max(2),
            seed,
            ..GeneratorConfig::default()
        });
        SmartStoreSystem::build(pop.files, n_units, SmartStoreConfig::default(), seed)
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let sys = small_system(400, 8, 11);
        let parts = sys.to_parts();
        let (bytes, stats) = snapshot::encode_snapshot(&parts);
        assert_eq!(stats.n_units, 8);
        assert_eq!(stats.n_files, 400);
        let back = snapshot::decode_snapshot(&bytes, Path::new("mem")).unwrap();
        assert_eq!(back.units.len(), parts.units.len());
        for (a, b) in back.units.iter().zip(&parts.units) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.files(), b.files());
            assert_eq!(a.bloom(), b.bloom());
            assert_eq!(a.centroid(), b.centroid());
            assert_eq!(a.mbr(), b.mbr());
        }
        assert_eq!(back.tree.nodes.len(), parts.tree.nodes.len());
        assert_eq!(back.tree.root, parts.tree.root);
        assert_eq!(back.mapping.assignment, parts.mapping.assignment);
        assert_eq!(back.mapping.root_replicas, parts.mapping.root_replicas);
        assert_eq!(back.versions.len(), parts.versions.len());
        assert_eq!(back.pending, parts.pending);
    }

    #[test]
    fn snapshot_rejects_any_corruption() {
        let sys = small_system(120, 4, 3);
        let (bytes, _) = snapshot::encode_snapshot(&sys.to_parts());
        // Truncation.
        assert!(snapshot::decode_snapshot(&bytes[..bytes.len() - 1], Path::new("m")).is_err());
        // Bit flips across the file.
        for frac in [3, 5, 7] {
            let mut bad = bytes.clone();
            let at = bad.len() / frac;
            bad[at] ^= 0x01;
            assert!(
                snapshot::decode_snapshot(&bad, Path::new("m")).is_err(),
                "flip at {at} undetected"
            );
        }
        // Future format version.
        let mut newer = bytes.clone();
        newer[8] = 0xFF;
        assert!(matches!(
            snapshot::decode_snapshot(&newer, Path::new("m")),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn store_create_open_equivalence() {
        let dir = tmpdir("create_open");
        let mut sys = small_system(300, 6, 21);
        let (mut store, stats) = sys.save_snapshot(&dir).unwrap();
        assert!(stats.bytes > 0);
        // Journal some churn.
        let files = sys.current_files();
        for i in 0..40u64 {
            let mut f = files[i as usize % files.len()].clone();
            f.file_id = 1_000_000 + i;
            f.name = format!("journaled_{i}");
            sys.apply_journaled(&mut store, Change::Insert(f)).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let (sys2, store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 40);
        assert_eq!(report.dropped_tail_bytes, 0);
        assert_eq!(store2.wal_frames(), 40);
        let mut a = sys.current_files();
        let mut b = sys2.current_files();
        a.sort_by_key(|f| f.file_id);
        b.sort_by_key(|f| f.file_id);
        assert_eq!(a, b);
        assert_eq!(sys.stats().version_bytes, sys2.stats().version_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rolls_generation_and_drops_old_files() {
        let dir = tmpdir("compaction");
        let mut sys = small_system(200, 4, 5);
        // Tiny threshold: compact after every few frames.
        sys.cfg.persist.wal_compact_bytes = 256;
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        assert_eq!(store.generation(), 1);
        let files = sys.current_files();
        for i in 0..30u64 {
            let mut f = files[i as usize % files.len()].clone();
            f.file_id = 2_000_000 + i;
            f.name = format!("compacted_{i}");
            sys.apply_journaled(&mut store, Change::Insert(f)).unwrap();
        }
        assert!(store.generation() > 1, "compaction must have fired");
        // Only the current generation's files remain.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let snaps = names.iter().filter(|n| n.ends_with(".snap")).count();
        let wals = names.iter().filter(|n| n.ends_with(".log")).count();
        assert_eq!(
            (snaps, wals),
            (1, 1),
            "stale generations left behind: {names:?}"
        );
        // Reopen and verify equivalence.
        drop(store);
        let (sys2, _, _) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        let mut a = sys.current_files();
        let mut b = sys2.current_files();
        a.sort_by_key(|f| f.file_id);
        b.sort_by_key(|f| f.file_id);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_missing_dir_is_not_found() {
        let dir = tmpdir("missing");
        assert!(matches!(
            SmartStoreSystem::open_from_dir(&dir),
            Err(PersistError::NotFound(_))
        ));
    }

    #[test]
    fn journal_trait_routes_through_store() {
        let dir = tmpdir("journal_trait");
        let mut sys = small_system(150, 3, 9);
        let (mut store, _) = sys.save_snapshot(&dir).unwrap();
        let f = sys.current_files()[0].clone();
        sys.apply_change_journaled(Change::Delete(f.file_id), &mut store);
        assert_eq!(store.wal_frames(), 1);
        assert!(store.take_journal_error().is_none());
        assert!(!store.is_poisoned());
        store.sync().unwrap();
        drop(store);
        let (sys2, _, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 1);
        assert!(sys2.current_files().iter().all(|x| x.file_id != f.file_id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_recovers_to_snapshot_state() {
        // A crash between compaction's manifest flip and the new WAL's
        // directory entry reaching disk leaves a manifest pointing at a
        // generation with no log. The snapshot alone is consistent —
        // open must recreate the log empty, not fail.
        let dir = tmpdir("missing_wal");
        let sys = small_system(200, 4, 13);
        let (store, _) = sys.save_snapshot(&dir).unwrap();
        drop(store);
        let wal = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .unwrap();
        std::fs::remove_file(&wal).unwrap();
        let (mut sys2, mut store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.replayed_frames, 0);
        assert_eq!(sys2.current_files().len(), sys.current_files().len());
        // And the recreated log journals normally.
        let id = sys2.current_files()[0].file_id;
        sys2.apply_journaled(&mut store2, Change::Delete(id))
            .unwrap();
        assert_eq!(store2.wal_frames(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_compaction_artifacts() {
        let dir = tmpdir("sweep");
        let sys = small_system(150, 3, 17);
        let (store, _) = sys.save_snapshot(&dir).unwrap();
        drop(store);
        // A crashed compaction can leave temp files and an unreferenced
        // next generation behind.
        std::fs::write(dir.join("snapshot-00000099.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("MANIFEST.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("snapshot-00000002.snap"), b"junk").unwrap();
        std::fs::write(dir.join("wal-00000002.log"), b"junk").unwrap();
        let (_sys2, _store2, report) = SmartStoreSystem::open_from_dir(&dir).unwrap();
        assert_eq!(report.generation, 1, "manifest still points at gen 1");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !names
                .iter()
                .any(|n| n.ends_with(".tmp") || n.contains("00000002")),
            "orphans not swept: {names:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
